# Convenience entry points for the reproduction.

PYTHON ?= python

.PHONY: test lint coverage chaos bench-smoke bench-engine shuffle-study bench

# Tier-1 verification: the full unit test suite.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Chaos smoke (CI `chaos` step): the deterministic byte-level fault drills —
# FaultPlan/ChaosProxy unit tests plus the seeded fleet+gateway drill matrix
# (bit flips, truncation, stalls, resets, duplicated bytes on sweep and
# heartbeat connections; byte-identity or a typed error, and recovery to
# all-LIVE, asserted under every schedule).
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/serve/test_faults.py tests/serve/test_chaos.py -q

# Static checks (CI `lint` job): ruff check over the whole tree (pyflakes +
# pycodestyle subsets, config in pyproject.toml) plus ruff's formatter in
# check mode over the trees whose formatting has been normalised.
lint:
	$(PYTHON) -m ruff check .
	$(PYTHON) -m ruff format --check src/repro/serve tools

# Coverage with asserted floors for the serving subsystem, the nn engine
# and the distillation tier (CI `coverage` job): writes coverage.xml
# (Cobertura) and fails if src/repro/serve, src/repro/nn or
# src/repro/distill drops below its floor enforced by
# tools/check_coverage.py.
coverage:
	PYTHONPATH=src $(PYTHON) -m pytest -q --cov=repro --cov-report=xml --cov-report=term
	$(PYTHON) tools/check_coverage.py coverage.xml --floor repro/serve=80 --floor repro/nn=70 --floor repro/distill=70

# Fast perf-regression check for the message-passing engine and the serving
# stack; fails when an engine path stops beating the retained seed reference
# paths, the batched multi-region sweep stops beating serial sweeps, or the
# compiled autograd-free inference program stops beating the Module forward.
# Includes the serve_gateway churn drill (open-loop traffic through the
# asyncio gateway with mid-load kill/pause/restart and a dead-fleet
# fallback phase; byte-identity with the serial path is a hard failure) and
# the serve_chaos axis (sweep latency through a fixed byte-level fault
# schedule; byte-identity, detected corruption and all-LIVE recovery are
# hard failures).
# Writes per-axis medians to benchmarks/results/BENCH_<n>.json and the
# stable benchmarks/results/BENCH_latest.json copy CI uploads as the
# `perf-trajectory` artifact.
bench-smoke:
	$(PYTHON) -m benchmarks.bench_engine --smoke

# Full engine microbenchmarks with the headline before/after numbers.
bench-engine:
	$(PYTHON) -m benchmarks.bench_engine

# shuffle="batches" accuracy study on the 68-region suite (records the
# batches-vs-samples accuracy delta backing the profile knob).
shuffle-study:
	$(PYTHON) -m benchmarks.shuffle_study

# The paper-figure benchmark suite (pytest-benchmark harness).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q
