# Convenience entry points for the reproduction.

PYTHON ?= python

.PHONY: test bench-smoke bench-engine bench

# Tier-1 verification: the full unit test suite.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Fast (<30 s) perf-regression check for the message-passing engine; fails
# when an engine path stops beating the retained seed reference paths.
bench-smoke:
	$(PYTHON) -m benchmarks.bench_engine --smoke

# Full engine microbenchmarks with the headline before/after numbers.
bench-engine:
	$(PYTHON) -m benchmarks.bench_engine

# The paper-figure benchmark suite (pytest-benchmark harness).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q
