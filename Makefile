# Convenience entry points for the reproduction.

PYTHON ?= python

.PHONY: test bench-smoke bench-engine bench

# Tier-1 verification: the full unit test suite.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Fast perf-regression check for the message-passing engine and the serving
# stack; fails when an engine path stops beating the retained seed reference
# paths, the batched multi-region sweep stops beating serial sweeps, or the
# compiled autograd-free inference program stops beating the Module forward.
# Writes per-axis medians to benchmarks/results/BENCH_4.json (CI artifact).
bench-smoke:
	$(PYTHON) -m benchmarks.bench_engine --smoke

# Full engine microbenchmarks with the headline before/after numbers.
bench-engine:
	$(PYTHON) -m benchmarks.bench_engine

# shuffle="batches" accuracy study on the 68-region suite (records the
# batches-vs-samples accuracy delta backing the profile knob).
shuffle-study:
	$(PYTHON) -m benchmarks.shuffle_study

# The paper-figure benchmark suite (pytest-benchmark harness).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q
