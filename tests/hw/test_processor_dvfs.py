"""Tests for processor specs and the DVFS/power model."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.dvfs import DvfsModel
from repro.hw.processor import HASWELL, SKYLAKE, available_processors, get_processor


class TestProcessorSpecs:
    def test_registry(self):
        assert set(available_processors()) == {"haswell", "skylake"}
        assert get_processor("Skylake") is SKYLAKE
        with pytest.raises(KeyError):
            get_processor("epyc")

    def test_paper_topologies(self):
        assert SKYLAKE.cores == 32 and SKYLAKE.hardware_threads == 64
        assert HASWELL.cores == 16 and HASWELL.hardware_threads == 32
        assert SKYLAKE.tdp_watts == 150.0 and SKYLAKE.min_power_watts == 75.0
        assert HASWELL.tdp_watts == 85.0 and HASWELL.min_power_watts == 40.0

    def test_full_load_power_close_to_tdp(self):
        for spec in (SKYLAKE, HASWELL):
            power = spec.max_power(spec.cores, spec.max_freq_ghz, 1.0)
            assert 0.85 * spec.tdp_watts <= power <= 1.25 * spec.tdp_watts

    def test_bandwidth_saturates_with_cores(self):
        bw_1 = HASWELL.bandwidth_gbs(1, HASWELL.base_freq_ghz)
        bw_8 = HASWELL.bandwidth_gbs(8, HASWELL.base_freq_ghz)
        bw_16 = HASWELL.bandwidth_gbs(16, HASWELL.base_freq_ghz)
        assert bw_1 < bw_8 < bw_16
        # Diminishing returns: the second 8 cores add less than the first 8.
        assert (bw_16 - bw_8) < (bw_8 - bw_1)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(HASWELL, min_freq_ghz=5.0)
        with pytest.raises(ValueError):
            dataclasses.replace(HASWELL, min_power_watts=100.0)
        with pytest.raises(ValueError):
            dataclasses.replace(HASWELL, cores=0)


class TestDvfsModel:
    def test_uncapped_runs_at_max_frequency_few_cores(self):
        model = DvfsModel(HASWELL)
        solution = model.solve(HASWELL.tdp_watts, active_cores=2, utilisation=1.0)
        assert solution.frequency_ghz == pytest.approx(HASWELL.max_freq_ghz)
        assert solution.throttle_factor == 1.0

    def test_lower_cap_lower_frequency(self):
        model = DvfsModel(HASWELL)
        frequencies = [
            model.solve(cap, active_cores=16, utilisation=1.0).frequency_ghz
            for cap in (40.0, 60.0, 70.0, 85.0)
        ]
        assert frequencies == sorted(frequencies)
        assert frequencies[0] < frequencies[-1]

    def test_more_cores_lower_frequency_under_same_cap(self):
        model = DvfsModel(SKYLAKE)
        f_few = model.solve(75.0, active_cores=4).frequency_ghz
        f_many = model.solve(75.0, active_cores=32).frequency_ghz
        assert f_many < f_few

    def test_memory_bound_clocks_higher(self):
        model = DvfsModel(HASWELL)
        busy = model.solve(40.0, active_cores=16, utilisation=1.0).frequency_ghz
        stalled = model.solve(40.0, active_cores=16, utilisation=0.3).frequency_ghz
        assert stalled >= busy

    def test_power_never_exceeds_cap(self):
        model = DvfsModel(SKYLAKE)
        for cap in (75.0, 100.0, 120.0, 150.0):
            for cores in (1, 8, 16, 32):
                solution = model.solve(cap, cores)
                assert solution.package_power_watts <= cap + 1e-9

    def test_duty_cycling_below_minimum_frequency(self):
        tiny_cap_spec = DvfsModel(HASWELL)
        # A cap below idle+static power forces duty cycling.
        solution = tiny_cap_spec.solve(20.0, active_cores=16)
        assert solution.frequency_ghz == HASWELL.min_freq_ghz
        assert solution.throttle_factor < 1.0
        assert solution.effective_frequency_ghz < HASWELL.min_freq_ghz

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            DvfsModel(HASWELL).solve(0.0, 1)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=30.0, max_value=85.0),
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_solution_always_within_dvfs_range(self, cap, cores, utilisation):
        solution = DvfsModel(HASWELL).solve(cap, cores, utilisation)
        assert HASWELL.min_freq_ghz <= solution.frequency_ghz <= HASWELL.max_freq_ghz
        assert 0.0 < solution.throttle_factor <= 1.0
        assert solution.package_power_watts <= min(cap, HASWELL.tdp_watts) + 1e-9
