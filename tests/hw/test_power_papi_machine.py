"""Tests for the RAPL emulation, Variorum facade, PAPI estimator and Machine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchsuite.registry import get_region
from repro.hw.machine import Machine
from repro.hw.papi import COUNTER_NAMES, PapiInterface
from repro.hw.power import ENERGY_UNIT_JOULES, RaplInterface
from repro.hw.processor import HASWELL
from repro.hw.variorum import Variorum


class TestRapl:
    def test_default_limit_is_tdp(self):
        rapl = RaplInterface(HASWELL)
        assert rapl.get_power_limit() == HASWELL.tdp_watts

    def test_limit_clamped_to_supported_range(self):
        rapl = RaplInterface(HASWELL)
        rapl.set_power_limit(10.0)
        assert rapl.get_power_limit() == HASWELL.min_power_watts
        rapl.set_power_limit(500.0)
        assert rapl.get_power_limit() == HASWELL.tdp_watts
        with pytest.raises(ValueError):
            rapl.set_power_limit(-5.0)

    def test_energy_accounting_and_reset(self):
        rapl = RaplInterface(HASWELL)
        rapl.account_energy(12.0, 0.5)
        assert rapl.read_energy_joules() == pytest.approx(12.0, rel=1e-4)
        assert rapl.elapsed_time_s == pytest.approx(0.5)
        assert len(rapl.power_samples()) == 1
        assert rapl.power_samples()[0].power_watts == pytest.approx(24.0, rel=1e-4)
        rapl.reset_power_limit()
        assert rapl.get_power_limit() == HASWELL.tdp_watts

    def test_counter_wraps_like_hardware(self):
        before = (1 << 32) - 100
        after = 50
        delta = RaplInterface.energy_delta_joules(before, after)
        assert delta == pytest.approx(150 * ENERGY_UNIT_JOULES)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=2**20))
    def test_delta_non_negative_across_wrap(self, start, increment):
        end = (start + increment) % (1 << 32)
        delta_units = RaplInterface.energy_delta_joules(start, end) / ENERGY_UNIT_JOULES
        assert round(delta_units) == increment


class TestVariorum:
    def test_cap_and_uncap(self):
        rapl = RaplInterface(HASWELL)
        variorum = Variorum(rapl)
        assert variorum.cap_best_effort_node_power_limit(60.0) == 60.0
        assert variorum.get_node_power_limit() == 60.0
        assert variorum.cap_best_effort_node_power_limit(10.0) == HASWELL.min_power_watts
        assert variorum.uncap_node_power_limit() == HASWELL.tdp_watts

    def test_print_power_reports_state(self):
        rapl = RaplInterface(HASWELL)
        rapl.account_energy(5.0, 0.1)
        report = Variorum(rapl).print_power()
        assert report["package_limit_watts"] == HASWELL.tdp_watts
        assert report["package_energy_joules"] == pytest.approx(5.0, rel=1e-3)


class TestPapi:
    def test_counter_ordering_and_positivity(self):
        papi = PapiInterface(HASWELL, noise_fraction=0.0, seed=0)
        region = get_region("gemm/kernel_gemm")
        counters = papi.profile(region)
        vector = counters.as_array()
        assert vector.shape == (len(COUNTER_NAMES),)
        assert np.all(vector >= 0)
        assert counters.instructions > counters.l1_misses >= counters.l2_misses >= counters.l3_misses

    def test_deterministic_given_seed(self):
        papi = PapiInterface(HASWELL, noise_fraction=0.02, seed=7)
        region = get_region("atax/kernel_atax")
        a = papi.profile(region).as_array()
        b = PapiInterface(HASWELL, noise_fraction=0.02, seed=7).profile(region).as_array()
        np.testing.assert_array_equal(a, b)

    def test_streaming_kernel_misses_more_than_blocked(self):
        papi = PapiInterface(HASWELL, noise_fraction=0.0)
        streaming = get_region("atax/kernel_atax")      # reuse ~0.1
        blocked = get_region("gemm/kernel_gemm")        # reuse ~0.85
        s = papi.profile(streaming)
        b = papi.profile(blocked)
        assert s.l3_misses / s.instructions > b.l3_misses / b.instructions

    def test_normalized_features_are_scale_free(self):
        papi = PapiInterface(HASWELL, noise_fraction=0.0)
        region = get_region("gemm/kernel_gemm")
        normalized = papi.profile(region).normalized()
        assert normalized.shape == (5,)
        assert np.all(normalized[1:] <= 1.5)


class TestMachine:
    def test_named_factory_and_defaults(self):
        machine = Machine.named("skylake", seed=3)
        assert machine.name == "skylake"
        assert machine.default_threads == 64
        assert machine.power_cap_watts == machine.tdp_watts

    def test_set_power_cap_round_trip(self):
        machine = Machine.named("haswell")
        assert machine.set_power_cap(60.0) == 60.0
        assert machine.power_cap_watts == 60.0
        assert machine.set_power_cap(None) == machine.tdp_watts

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            Machine.named("powerpc")
