"""Chaos drills: seeded byte-level fault schedules through fleet + gateway.

Two standing invariants, checked under every schedule:

1. **Byte-identity or a typed error** — every sweep/predict answered while
   faults fly is byte-identical to serial ``predict_sweep`` on the parent
   tuner (float64 AND float32); corruption is always *detected* (the
   counters move), never silently served.
2. **Recovery** — once the schedule drains (plans bind faults to early
   connection indices), the fleet returns to all-LIVE on its own.

The targeted drills pin one fault kind to one frame of one connection —
sweep sockets and heartbeat connections alike — so each failure mode's
exact path (detect → teardown → rebalance → re-admit) is exercised
deterministically.  The seeded matrix then sweeps whole random schedules
through the asyncio :class:`~repro.serve.gateway.Gateway` and asserts the
invariants wholesale, with detections reconciled against the proxy's
applied-event log.
"""

import asyncio

import pytest

from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.serve import (
    FaultEvent,
    FaultPlan,
    Gateway,
    LocalFleet,
    NodeState,
    rpc,
)

CAPS = [40.0, 55.0, 70.0, 85.0]


@pytest.fixture(scope="module")
def fitted_tuner(small_database, small_builder):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


@pytest.fixture(scope="module")
def baselines(fitted_tuner, small_builder):
    """Serial per-region sweeps at both serving precisions."""
    regions = small_builder.regions()
    return {
        dtype: [
            fitted_tuner.predict_sweep(region, CAPS, dtype=dtype)
            for region in regions
        ]
        for dtype in (None, "float32")
    }


def _chaos_fleet(tuner, plan, **overrides):
    """A 2-node fleet with ``plan`` interposed on node 0, probe-driven."""
    settings = dict(
        num_nodes=2,
        dtypes=("float32",),
        heartbeat_interval=None,
        request_timeout=30.0,
    )
    settings.update(overrides)
    return LocalFleet(tuner, chaos={0: plan}, **settings)


def _wait_all_live(fleet, timeout=30.0):
    for index in sorted(fleet.client.node_states()):
        assert fleet.client.wait_for_state(index, NodeState.LIVE, timeout=timeout), (
            f"node {index} did not return to LIVE: {fleet.client.node_states()}"
        )


def _detections(fleet):
    """Corruption detections on both ends of every wire, totalled."""
    client_side = fleet.client.transport_stats()["corruption"]
    node_side = sum(
        reply.get("corrupt_frames", 0) for reply in fleet.client.stats().values()
    )
    return client_side + node_side


# Connection 0 at the proxy is the fleet client's request socket; its frame
# 0 (both directions) is the registration round trip, so sweep traffic
# starts at frame 1.  Heartbeat probes open fresh connections: 1, 2, ...


class TestTargetedDrills:
    """One fault kind per drill, pinned mid-frame on a known connection."""

    def test_reply_bitflip_detected_rebalanced_recovered(
        self, fitted_tuner, small_builder, baselines
    ):
        plan = FaultPlan(
            [FaultEvent("bitflip", connection=0, frame=1, direction="reply", offset=40)]
        )
        with _chaos_fleet(fitted_tuner, plan) as fleet:
            regions = small_builder.regions()
            for dtype in (None, "float32"):
                assert fleet.sweep(regions, CAPS, dtype=dtype) == baselines[dtype]
            transport = fleet.client.transport_stats()
            assert transport["nodes"][0]["corruption"] == 1
            assert transport["nodes"][0]["teardowns"] >= 1
            _wait_all_live(fleet)
            assert fleet.client.transport_stats()["nodes"][0]["readmissions"] >= 1

    def test_request_bitflip_counted_by_the_node(
        self, fitted_tuner, small_builder, baselines
    ):
        plan = FaultPlan(
            [
                FaultEvent(
                    "bitflip", connection=0, frame=1, direction="request", offset=64
                )
            ]
        )
        with _chaos_fleet(fitted_tuner, plan) as fleet:
            regions = small_builder.regions()
            assert fleet.sweep(regions, CAPS) == baselines[None]
            _wait_all_live(fleet)
            stats = fleet.client.stats()
            assert stats[0]["corrupt_frames"] == 1
            assert stats[0]["client_teardowns"] >= 1

    def test_duplicate_bytes_detected_and_survived(
        self, fitted_tuner, small_builder, baselines
    ):
        plan = FaultPlan(
            [
                FaultEvent(
                    "duplicate",
                    connection=0,
                    frame=1,
                    direction="reply",
                    offset=10,
                    span=16,
                )
            ]
        )
        with _chaos_fleet(fitted_tuner, plan) as fleet:
            regions = small_builder.regions()
            assert fleet.sweep(regions, CAPS, dtype="float32") == baselines["float32"]
            assert fleet.client.transport_stats()["corruption"] == 1
            _wait_all_live(fleet)

    def test_truncate_mid_frame_rebalances(
        self, fitted_tuner, small_builder, baselines
    ):
        plan = FaultPlan(
            [
                FaultEvent(
                    "truncate", connection=0, frame=1, direction="reply", offset=25
                )
            ]
        )
        with _chaos_fleet(fitted_tuner, plan) as fleet:
            regions = small_builder.regions()
            assert fleet.sweep(regions, CAPS) == baselines[None]
            assert fleet.client.transport_stats()["nodes"][0]["teardowns"] >= 1
            _wait_all_live(fleet)

    def test_reset_mid_stream_rebalances(
        self, fitted_tuner, small_builder, baselines
    ):
        plan = FaultPlan(
            [FaultEvent("reset", connection=0, frame=1, direction="reply")]
        )
        with _chaos_fleet(fitted_tuner, plan) as fleet:
            regions = small_builder.regions()
            assert fleet.sweep(regions, CAPS) == baselines[None]
            assert fleet.client.transport_stats()["nodes"][0]["teardowns"] >= 1
            _wait_all_live(fleet)

    def test_stall_trips_request_timeout_and_rebalances(
        self, fitted_tuner, small_builder, baselines
    ):
        plan = FaultPlan(
            [
                FaultEvent(
                    "stall",
                    connection=0,
                    frame=1,
                    direction="reply",
                    offset=25,
                    seconds=20.0,
                )
            ]
        )
        with _chaos_fleet(fitted_tuner, plan, request_timeout=1.5) as fleet:
            regions = small_builder.regions()
            assert fleet.sweep(regions, CAPS) == baselines[None]
            # The stalled node was torn down (poisoned socket), not just slow.
            assert fleet.client.transport_stats()["nodes"][0]["teardowns"] >= 1
            _wait_all_live(fleet)

    def test_heartbeat_connection_fault_degrades_then_heals(
        self, fitted_tuner, small_builder, baselines
    ):
        # Connection 1 is the first heartbeat probe; corrupt its ping reply.
        plan = FaultPlan(
            [FaultEvent("bitflip", connection=1, frame=0, direction="reply", offset=6)]
        )
        with _chaos_fleet(fitted_tuner, plan) as fleet:
            states = fleet.probe_now(force=True)
            assert states[0] is NodeState.SUSPECT
            assert fleet.client.transport_stats()["nodes"][0]["corruption"] == 1
            # The degraded node still serves (SUSPECT routes), bytes intact.
            regions = small_builder.regions()
            assert fleet.sweep(regions, CAPS) == baselines[None]
            # The next probe rides a clean connection: back to LIVE.
            _wait_all_live(fleet)


class TestSeededGatewayMatrix:
    """Whole random schedules through the gateway; invariants wholesale."""

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_schedule_preserves_bytes_and_recovers(
        self, seed, fitted_tuner, small_builder, baselines
    ):
        regions = small_builder.regions()
        plan = FaultPlan.random(
            seed, events=8, connections=4, frames=5, max_seconds=0.05
        )
        # Keep the registration round trip (connection 0, frame 0) clean —
        # a fleet that cannot register is a setup failure, not a drill.
        from dataclasses import replace

        plan = FaultPlan(
            events=[
                replace(event, frame=event.frame + 1)
                if event.connection == 0
                else event
                for event in plan.events
            ],
            seed=plan.seed,
        )

        async def scenario(fleet):
            async with Gateway(
                fleet.client,
                window_s=0.01,
                default_timeout=120.0,
                breaker_cooldown=0.2,
            ) as gateway:
                for dtype in (None, "float32"):
                    served = await asyncio.gather(
                        *(
                            gateway.predict_sweep(region, CAPS, dtype=dtype)
                            for region in regions
                        )
                    )
                    assert served == baselines[dtype]
                stats = gateway.stats()
                # The gateway's dashboard view carries the wire-level totals.
                for key in ("corruption", "teardowns", "readmissions"):
                    assert key in stats

        with _chaos_fleet(fitted_tuner, plan, request_timeout=15.0) as fleet:
            asyncio.run(scenario(fleet))

            # Reconcile detections against what the proxy actually injected:
            # every corrupting event that fired on a frame no teardown-kind
            # event also hit must have been caught by a digest/magic check
            # (client side or node side) — nothing unpickled silently.
            applied = fleet.proxies[0].stats()["applied"]
            corrupted = {
                (conn, frame, direction)
                for (kind, conn, frame, direction, *_rest) in applied
                if kind in ("bitflip", "duplicate")
            }
            masked = {
                (conn, frame, direction)
                for (kind, conn, frame, direction, *_rest) in applied
                if kind in ("truncate", "reset")
            }
            pure = corrupted - masked
            if pure:
                assert _detections(fleet) >= len(pure)

            # Recovery: the schedule binds faults to connections 0-3, so
            # probing re-admits everything once those have burned through.
            _wait_all_live(fleet)
            states = fleet.client.node_states()
            assert all(state is NodeState.LIVE for state in states.values())
