"""Unit tests for the deterministic fault-injection layer.

:class:`~repro.serve.faults.FaultPlan` must replay the identical event
schedule from a seed alone — in-process and across fresh interpreters
(mirroring the ``HashRing`` determinism guarantee) — and
:class:`~repro.serve.faults.ChaosProxy` must map each fault kind onto the
documented failure at the victim: ``bitflip``/``duplicate`` →
:class:`~repro.serve.rpc.RpcCorruption`, ``truncate``/``reset`` →
:class:`~repro.serve.rpc.ConnectionClosed`, ``stall`` →
:class:`~repro.serve.rpc.RpcTimeout`, ``delay`` → nothing but latency.

The proxy drills here run against a bare unregistered
:class:`~repro.serve.node.NodeServer` (``ping`` needs no tuner), so they
stay fast; the full fleet/gateway drills live in ``test_chaos.py``.
"""

import subprocess
import sys
import threading
import time

import pytest

from repro.serve import ChaosProxy, FaultEvent, FaultPlan, NodeServer, rpc
from repro.serve.faults import _payload_offset


class TestFaultPlan:
    def test_events_addressable_by_connection_frame_direction(self):
        hit = FaultEvent("bitflip", connection=1, frame=2, direction="reply")
        miss = FaultEvent("bitflip", connection=1, frame=3, direction="reply")
        plan = FaultPlan([hit, miss])
        assert plan.events_for(1, 2, "reply") == [hit]
        assert plan.events_for(1, 2, "request") == []
        assert plan.events_for(0, 2, "reply") == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("melt", connection=0, frame=0)

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="unknown direction"):
            FaultEvent("delay", connection=0, frame=0, direction="sideways")

    def test_random_same_seed_same_schedule(self):
        assert FaultPlan.random(42).describe() == FaultPlan.random(42).describe()

    def test_random_different_seeds_differ(self):
        assert FaultPlan.random(42).describe() != FaultPlan.random(43).describe()

    def test_random_respects_bounds(self):
        plan = FaultPlan.random(7, events=20, connections=2, frames=3)
        assert len(plan.events) == 20
        assert all(event.connection < 2 for event in plan.events)
        assert all(event.frame < 3 for event in plan.events)
        assert all(event.kind in ("delay", "stall", "truncate", "bitflip",
                                  "duplicate", "reset") for event in plan.events)

    def test_scoped_shifts_connection_indices(self):
        plan = FaultPlan([FaultEvent("reset", connection=0, frame=1)])
        shifted = plan.scoped(5)
        assert shifted.events[0].connection == 5
        assert shifted.events[0].frame == 1

    def test_identical_across_interpreters(self):
        """The same seed replays the identical schedule in a fresh process."""
        script = (
            "from repro.serve import FaultPlan\n"
            "print(FaultPlan.random(12345, events=12).describe())\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == str(FaultPlan.random(12345, events=12).describe())

    def test_payload_offsets_land_past_the_header(self):
        # Corrupting offsets map into the payload so the fault exercises
        # the digest check rather than hanging the victim on a mangled
        # length field.
        for offset in (0, 1, 31, 32, 100, 5000):
            position = _payload_offset(offset, frame_length=200)
            assert rpc.HEADER_BYTES <= position < 200
        # Header-only frames fall back to the (instantly-detected) magic.
        assert _payload_offset(7, frame_length=rpc.HEADER_BYTES) < 4


@pytest.fixture()
def node():
    server = NodeServer()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=5.0)


def _ping_through(proxy, timeout=None):
    sock = rpc.connect(proxy.address, timeout=10.0)
    try:
        return rpc.request(sock, ("ping",), timeout=timeout)
    finally:
        sock.close()


class TestChaosProxy:
    def test_clean_plan_forwards_transparently(self, node):
        with ChaosProxy(node.address) as proxy:
            info = _ping_through(proxy)
            assert info["registered"] is False
            assert info["protocol"] == rpc.PROTOCOL_VERSION
            stats = proxy.stats()
            assert stats["connections"] == 1
            assert stats["faults_total"] == 0
            assert stats["frames"]["request"] >= 1
            assert stats["frames"]["reply"] >= 1

    def test_reply_bitflip_raises_corruption_at_client(self, node):
        plan = FaultPlan([FaultEvent("bitflip", connection=0, frame=0,
                                     direction="reply", offset=5)])
        with ChaosProxy(node.address, plan) as proxy:
            with pytest.raises(rpc.RpcCorruption, match="digest"):
                _ping_through(proxy)
            assert proxy.stats()["faults"]["bitflip"] == 1
            # Later connections are clean: the proxy recovers by itself.
            assert _ping_through(proxy)["protocol"] == rpc.PROTOCOL_VERSION

    def test_request_bitflip_counted_by_the_node(self, node):
        plan = FaultPlan([FaultEvent("bitflip", connection=0, frame=0,
                                     direction="request", offset=9)])
        with ChaosProxy(node.address, plan) as proxy:
            # The node rejects the corrupt request and tears the connection
            # down; the client observes the loss, never a reply.
            with pytest.raises(rpc.ConnectionClosed):
                _ping_through(proxy, timeout=10.0)
            deadline = time.monotonic() + 5.0
            while node._corrupt_frames == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert node._corrupt_frames == 1

    def test_duplicate_raises_corruption(self, node):
        plan = FaultPlan([FaultEvent("duplicate", connection=0, frame=0,
                                     direction="reply", offset=3, span=6)])
        with ChaosProxy(node.address, plan) as proxy:
            with pytest.raises(rpc.RpcCorruption):
                _ping_through(proxy)

    def test_truncate_raises_connection_closed(self, node):
        plan = FaultPlan([FaultEvent("truncate", connection=0, frame=0,
                                     direction="reply", offset=10)])
        with ChaosProxy(node.address, plan) as proxy:
            with pytest.raises(rpc.ConnectionClosed):
                _ping_through(proxy, timeout=10.0)

    def test_reset_raises_connection_closed(self, node):
        plan = FaultPlan([FaultEvent("reset", connection=0, frame=0,
                                     direction="reply")])
        with ChaosProxy(node.address, plan) as proxy:
            with pytest.raises(rpc.ConnectionClosed):
                _ping_through(proxy, timeout=10.0)

    def test_stall_trips_the_per_call_deadline(self, node):
        plan = FaultPlan([FaultEvent("stall", connection=0, frame=0,
                                     direction="reply", offset=10, seconds=5.0)])
        with ChaosProxy(node.address, plan) as proxy:
            start = time.monotonic()
            with pytest.raises(rpc.RpcTimeout):
                _ping_through(proxy, timeout=0.3)
            assert time.monotonic() - start < 3.0

    def test_delay_is_latency_not_failure(self, node):
        plan = FaultPlan([FaultEvent("delay", connection=0, frame=0,
                                     direction="reply", seconds=0.1)])
        with ChaosProxy(node.address, plan) as proxy:
            start = time.monotonic()
            info = _ping_through(proxy)
            assert info["protocol"] == rpc.PROTOCOL_VERSION
            assert time.monotonic() - start >= 0.1
            assert proxy.stats()["faults"]["delay"] == 1

    def test_faults_bind_to_their_connection_only(self, node):
        plan = FaultPlan([FaultEvent("bitflip", connection=1, frame=0,
                                     direction="reply", offset=4)])
        with ChaosProxy(node.address, plan) as proxy:
            assert _ping_through(proxy)["protocol"] == rpc.PROTOCOL_VERSION
            with pytest.raises(rpc.RpcCorruption):
                _ping_through(proxy)
            assert _ping_through(proxy)["protocol"] == rpc.PROTOCOL_VERSION

    def test_retarget_repoints_future_connections(self, node):
        replacement = NodeServer()
        thread = threading.Thread(target=replacement.serve_forever, daemon=True)
        thread.start()
        try:
            with ChaosProxy(node.address) as proxy:
                assert _ping_through(proxy)["protocol"] == rpc.PROTOCOL_VERSION
                proxy.retarget(replacement.address)
                # The original upstream is gone; answers can only come from
                # the replacement now.
                node.shutdown()
                assert _ping_through(proxy)["protocol"] == rpc.PROTOCOL_VERSION
                assert proxy.upstream == tuple(replacement.address)
                assert proxy.stats()["connections"] == 2
        finally:
            replacement.shutdown()
            thread.join(timeout=5.0)

    def test_seeded_plan_replays_identically(self, node):
        """Same seed, same traffic → the same byte-level fault history."""
        outcomes = []
        for _ in range(2):
            plan = FaultPlan.random(99, events=4, connections=2, frames=2)
            with ChaosProxy(node.address, plan) as proxy:
                run = []
                for _ in range(3):
                    try:
                        rpc_reply = _ping_through(proxy, timeout=2.0)
                        run.append(("ok", rpc_reply["protocol"]))
                    except rpc.RpcCorruption:
                        run.append(("corrupt", None))
                    except rpc.RpcTimeout:
                        run.append(("timeout", None))
                    except rpc.ConnectionClosed:
                        run.append(("closed", None))
                run.append(("faults", tuple(sorted(proxy.stats()["faults"].items()))))
                outcomes.append(run)
        assert outcomes[0] == outcomes[1]
