"""The distilled micro tier through the serving stack, end to end.

Registering a tuner *with* a distilled blob upgrades every replica — worker
pool, TCP node, fleet fallback — to a
:class:`~repro.serve.predictor.TieredPredictor`: in-family regions are
served by the dense micro tier (tier counters prove it), out-of-family
regions fall back to the GNN path byte-identically, and rolling weight
updates can keep, replace or drop the micro tier fleet-wide.
"""

import pytest

from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.distill.generate import perturb_out_of_family
from repro.distill.student import StudentConfig, distill
from repro.serve import LocalFleet, SweepServer, TieredPredictor

CAPS = [40.0, 85.0]


@pytest.fixture(scope="module")
def fitted_tuner(small_database, small_builder):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


@pytest.fixture(scope="module")
def distilled_blob(fitted_tuner, small_regions_by_app):
    model = distill(
        fitted_tuner,
        regions_by_app=small_regions_by_app,
        config=StudentConfig(per_region=2, epochs=60, seed=0),
    )
    return model.to_blob()


@pytest.fixture(scope="module")
def tiered_reference(fitted_tuner, distilled_blob):
    """The in-process tiered predictor every remote answer must match."""
    from repro.distill.student import DistilledModel
    from repro.serve.predictor import tiered_predictor

    return tiered_predictor(fitted_tuner, DistilledModel.from_blob(distilled_blob))


class TestSweepServerMicroTier:
    def test_workers_serve_the_tiered_path(
        self, fitted_tuner, distilled_blob, tiered_reference, small_builder
    ):
        regions = small_builder.regions()
        with SweepServer.from_tuner(
            fitted_tuner, num_workers=2, distilled=distilled_blob
        ) as pool:
            served = pool.sweep(regions, CAPS)
            stats = pool.cache_stats()
        expected = tiered_reference.predict_sweep_many(regions, CAPS)
        assert served == expected
        tiers = [shard["tier"] for shard in stats]
        assert all(tier["micro_families"] == 4 for tier in tiers)
        assert sum(tier["micro_hits"] for tier in tiers) == len(regions)

    def test_workers_without_blob_report_zero_tier(
        self, fitted_tuner, small_builder
    ):
        with SweepServer.from_tuner(fitted_tuner, num_workers=1) as pool:
            pool.sweep(small_builder.regions()[:1], CAPS)
            stats = pool.cache_stats()
        for shard in stats:
            assert shard["tier"] == {
                "micro_hits": 0,
                "fallbacks": 0,
                "micro_families": 0,
            }

    def test_out_of_family_falls_back_byte_identically(
        self, fitted_tuner, distilled_blob, small_builder
    ):
        outside = [perturb_out_of_family(r) for r in small_builder.regions()[:2]]
        with SweepServer.from_tuner(
            fitted_tuner, num_workers=2, distilled=distilled_blob
        ) as pool:
            served = pool.sweep(outside, CAPS)
            stats = pool.cache_stats()
        fitted_tuner._embedding_cache.clear()
        assert served == [fitted_tuner.predict_sweep(r, CAPS) for r in outside]
        assert sum(s["tier"]["fallbacks"] for s in stats) == len(outside)
        assert sum(s["tier"]["micro_hits"] for s in stats) == 0


class TestFleetMicroTier:
    @pytest.fixture(scope="class")
    def fleet(self, fitted_tuner, distilled_blob):
        with LocalFleet(fitted_tuner, num_nodes=2, distilled=distilled_blob) as local:
            yield local

    def test_nodes_serve_the_tiered_path(
        self, fleet, tiered_reference, small_builder
    ):
        regions = small_builder.regions()
        assert fleet.sweep(regions, CAPS) == tiered_reference.predict_sweep_many(
            regions, CAPS
        )

    def test_tier_counters_surface_in_node_stats(self, fleet, small_builder):
        regions = small_builder.regions()
        fleet.sweep(regions, CAPS)
        stats = fleet.stats()
        assert all("tier" in node for node in stats.values())
        assert all(
            node["tier"]["micro_families"] == 4 for node in stats.values()
        )
        assert sum(node["tier"]["micro_hits"] for node in stats.values()) >= len(
            regions
        )

    def test_out_of_family_matches_the_tuner(
        self, fleet, fitted_tuner, small_builder
    ):
        outside = perturb_out_of_family(small_builder.regions()[0])
        served = fleet.sweep([outside], CAPS)[0]
        fitted_tuner._embedding_cache.clear()
        assert served == fitted_tuner.predict_sweep(outside, CAPS)

    def test_clear_sheds_both_tiers_and_serving_resumes(
        self, fleet, small_builder
    ):
        regions = small_builder.regions()
        before = fleet.sweep(regions, CAPS)
        fleet.clear_caches()
        assert fleet.sweep(regions, CAPS) == before

    def test_local_fallback_predictor_is_tiered(self, fleet, small_builder):
        predictor = fleet.client.local_fallback_predictor()
        assert isinstance(predictor, TieredPredictor)
        region = small_builder.regions()[0]
        assert predictor.predict_sweep(region, CAPS) == (
            fleet.sweep([region], CAPS)[0]
        )


class TestRollingUpdates:
    def test_update_keeps_replaces_and_drops_the_micro_tier(
        self, fitted_tuner, distilled_blob, small_builder
    ):
        region = small_builder.regions()[0]
        with LocalFleet(
            fitted_tuner, num_nodes=1, distilled=distilled_blob
        ) as fleet:
            fleet.sweep([region], CAPS)
            # Default roll keeps the registered blob.
            fleet.client.update_weights(fitted_tuner)
            stats = fleet.stats()
            assert all(
                node["tier"]["micro_families"] == 4 for node in stats.values()
            )
            # An explicit None drops the micro tier fleet-wide.
            fleet.client.update_weights(fitted_tuner, distilled=None)
            stats = fleet.stats()
            assert all(
                node["tier"]["micro_families"] == 0 for node in stats.values()
            )
            # And a GNN-only fleet still answers correctly.
            served = fleet.sweep([region], CAPS)[0]
        fitted_tuner._embedding_cache.clear()
        assert served == fitted_tuner.predict_sweep(region, CAPS)

    def test_gnn_only_fleet_reports_zero_tier(self, fitted_tuner, small_builder):
        with LocalFleet(fitted_tuner, num_nodes=1) as fleet:
            fleet.sweep(small_builder.regions()[:1], CAPS)
            stats = fleet.stats()
        for node in stats.values():
            assert node["tier"] == {
                "micro_hits": 0,
                "fallbacks": 0,
                "micro_families": 0,
            }
