"""Process-sharded sweep serving equivalence and lifecycle tests.

The server's contract: sharded, worker-pool serving is byte-identical to
serial per-region ``predict_sweep`` on the parent tuner — the shard
assignment is deterministic, each worker rebuilds the tuner from the
one-time ``.npz`` weight round-trip, and per-worker embedding caches warm
up across calls.
"""

import threading

import pytest

from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.serve import SweepServer, parallel_map, shard_assignments

CAPS = [40.0, 55.0, 70.0, 85.0]


@pytest.fixture(scope="module")
def fitted_tuner(small_database, small_builder):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


@pytest.fixture(scope="module")
def server(fitted_tuner):
    with SweepServer.from_tuner(fitted_tuner, num_workers=2) as pool:
        yield pool


class TestShardAssignment:
    def test_deterministic_and_stable(self):
        ids = [f"app/kernel.{i}" for i in range(32)]
        first = shard_assignments(ids, 4)
        assert shard_assignments(ids, 4) == first
        assert all(0 <= shard < 4 for shard in first)
        # The content hash spreads a realistic id population over shards.
        assert len(set(first)) > 1

    def test_single_shard(self):
        assert shard_assignments(["a", "b"], 1) == [0, 0]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            shard_assignments(["a"], 0)


class TestShardedEquivalence:
    def test_byte_identical_to_serial_sweep(self, server, fitted_tuner, small_builder):
        regions = small_builder.regions()
        sharded = server.sweep(regions, CAPS)
        fitted_tuner._embedding_cache.clear()
        serial = [fitted_tuner.predict_sweep(region, CAPS) for region in regions]
        assert sharded == serial

    def test_float32_byte_identical_to_serial(self, server, fitted_tuner, small_builder):
        regions = small_builder.regions()
        sharded = server.sweep(regions, CAPS, dtype="float32")
        fitted_tuner._embedding_cache.clear()
        serial = [
            fitted_tuner.predict_sweep(region, CAPS, dtype="float32")
            for region in regions
        ]
        assert sharded == serial

    def test_input_order_preserved(self, server, small_builder):
        regions = small_builder.regions()
        reversed_results = server.sweep(list(reversed(regions)), CAPS)
        forward_results = server.sweep(regions, CAPS)
        assert reversed_results == list(reversed(forward_results))

    def test_caches_warm_across_calls(self, server, small_builder):
        regions = small_builder.regions()
        server.clear_caches()
        server.sweep(regions, CAPS)
        stats_cold = server.cache_stats()
        server.sweep(regions, CAPS)
        stats_warm = server.cache_stats()
        assert sum(s["size"] for s in stats_cold) == len(regions)
        # The second pass must be all hits: no new misses on any worker.
        assert sum(s["misses"] for s in stats_warm) == sum(
            s["misses"] for s in stats_cold
        )
        assert sum(s["hits"] for s in stats_warm) > sum(s["hits"] for s in stats_cold)

    def test_empty_regions(self, server):
        assert server.sweep([], CAPS) == []


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, fitted_tuner):
        pool = SweepServer.from_tuner(fitted_tuner, num_workers=1)
        weights_path = pool._spec.weights_path
        import os

        assert os.path.exists(weights_path)
        pool.close()
        pool.close()
        assert not os.path.exists(weights_path)
        with pytest.raises(RuntimeError):
            pool.sweep([], CAPS)

    def test_worker_error_is_reported(self, server, small_builder):
        region = small_builder.regions()[0]
        with pytest.raises(RuntimeError, match="sweep worker"):
            # power_caps entries must be numbers; a string blows up inside
            # the worker, which must report (not hang) and keep serving.
            server.sweep([region], ["not-a-cap"])
        assert server.sweep([region], CAPS)[0]

    def test_stats_and_clear_after_close_fail_cleanly(self, fitted_tuner):
        pool = SweepServer.from_tuner(fitted_tuner, num_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.cache_stats()
        with pytest.raises(RuntimeError, match="closed"):
            pool.clear_caches()

    def test_requires_fitted_tuner(self, small_database, small_builder):
        tuner = PnPTuner(
            system="haswell",
            objective="time",
            training_config=TrainingConfig(epochs=1, seed=0),
            database=small_database,
            seed=0,
        )
        with pytest.raises(RuntimeError):
            SweepServer.from_tuner(tuner, num_workers=1)


class TestWorkerDeath:
    """A worker dying mid-request must raise clearly, never hang the pipe."""

    def test_death_before_request_raises(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        with SweepServer.from_tuner(fitted_tuner, num_workers=1) as pool:
            pool._processes[0].kill()
            pool._processes[0].join(timeout=5.0)
            with pytest.raises(RuntimeError, match="died mid-request"):
                pool.sweep(regions, CAPS)

    def test_death_mid_request_raises(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        with SweepServer.from_tuner(fitted_tuner, num_workers=2) as pool:
            # The request is dispatched to both shards; one worker is shot
            # while (possibly) serving it.  The parent must surface the
            # death instead of blocking forever on the dead worker's pipe.
            victim = pool._processes[0]
            killer = threading.Timer(0.05, victim.kill)
            killer.start()
            try:
                with pytest.raises(RuntimeError, match="sweep worker"):
                    for _ in range(50):  # long enough for the timer to fire
                        pool.sweep(regions, CAPS)
            finally:
                killer.cancel()

    def test_stats_after_worker_death_raise(self, fitted_tuner):
        with SweepServer.from_tuner(fitted_tuner, num_workers=1) as pool:
            pool._processes[0].kill()
            pool._processes[0].join(timeout=5.0)
            with pytest.raises(RuntimeError, match="died mid-request"):
                pool.cache_stats()

    def test_close_after_worker_death_is_clean(self, fitted_tuner):
        pool = SweepServer.from_tuner(fitted_tuner, num_workers=1)
        pool._processes[0].kill()
        pool._processes[0].join(timeout=5.0)
        pool.close()  # must not raise or hang
        assert pool._closed


def _square(value: int) -> int:
    return value * value


class TestParallelMap:
    def test_matches_serial_map(self):
        items = list(range(10))
        assert parallel_map(_square, items, num_workers=3) == [i * i for i in items]

    def test_serial_fallback(self):
        assert parallel_map(_square, [4], num_workers=8) == [16]
        assert parallel_map(_square, list(range(4)), num_workers=1) == [0, 1, 4, 9]
