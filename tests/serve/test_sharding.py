"""The deterministic content-hash sharding shared by every serving layer."""

import pytest

from repro.serve import shard_assignments, shard_for_region, shard_positions


class TestShardForRegion:
    def test_matches_assignments(self):
        ids = [f"app/kernel.{i}" for i in range(16)]
        assert shard_assignments(ids, 3) == [shard_for_region(rid, 3) for rid in ids]

    def test_stable_across_calls(self):
        assert shard_for_region("gemm/kernel.0", 4) == shard_for_region("gemm/kernel.0", 4)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            shard_for_region("a", 0)


class TestShardPositions:
    def test_partitions_all_positions_in_order(self):
        ids = [f"app/kernel.{i}" for i in range(20)]
        groups = shard_positions(ids, 4)
        flattened = sorted(p for members in groups.values() for p in members)
        assert flattened == list(range(len(ids)))
        for members in groups.values():
            assert members == sorted(members)

    def test_groups_follow_the_assignment(self):
        ids = [f"app/kernel.{i}" for i in range(12)]
        assignments = shard_assignments(ids, 3)
        groups = shard_positions(ids, 3)
        for shard, members in groups.items():
            assert all(assignments[p] == shard for p in members)

    def test_single_shard_gets_everything(self):
        assert shard_positions(["a", "b", "c"], 1) == {0: [0, 1, 2]}

    def test_empty_input(self):
        assert shard_positions([], 4) == {}
