"""The deterministic content-hash sharding shared by every serving layer."""

import subprocess
import sys

import pytest

from repro.serve import HashRing, shard_assignments, shard_for_region, shard_positions


def _benchsuite_region_ids():
    from repro.benchsuite.registry import regions_by_application

    return [
        region.region_id
        for regions in regions_by_application().values()
        for region in regions
    ]


class TestShardForRegion:
    def test_matches_assignments(self):
        ids = [f"app/kernel.{i}" for i in range(16)]
        assert shard_assignments(ids, 3) == [shard_for_region(rid, 3) for rid in ids]

    def test_stable_across_calls(self):
        assert shard_for_region("gemm/kernel.0", 4) == shard_for_region("gemm/kernel.0", 4)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            shard_for_region("a", 0)


class TestShardPositions:
    def test_partitions_all_positions_in_order(self):
        ids = [f"app/kernel.{i}" for i in range(20)]
        groups = shard_positions(ids, 4)
        flattened = sorted(p for members in groups.values() for p in members)
        assert flattened == list(range(len(ids)))
        for members in groups.values():
            assert members == sorted(members)

    def test_groups_follow_the_assignment(self):
        ids = [f"app/kernel.{i}" for i in range(12)]
        assignments = shard_assignments(ids, 3)
        groups = shard_positions(ids, 3)
        for shard, members in groups.items():
            assert all(assignments[p] == shard for p in members)

    def test_single_shard_gets_everything(self):
        assert shard_positions(["a", "b", "c"], 1) == {0: [0, 1, 2]}

    def test_empty_input(self):
        assert shard_positions([], 4) == {}


class TestHashRingMembership:
    def test_nodes_sorted_len_contains(self):
        ring = HashRing([2, 0, 1])
        assert ring.nodes == [0, 1, 2]
        assert len(ring) == 3
        assert 1 in ring and 7 not in ring

    def test_add_duplicate_rejected(self):
        ring = HashRing([0])
        with pytest.raises(ValueError, match="already"):
            ring.add(0)

    def test_remove_absent_rejected(self):
        with pytest.raises(KeyError):
            HashRing([0]).remove(3)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_empty_ring_lookup_fails(self):
        with pytest.raises(LookupError):
            HashRing().node_for("gemm/kernel.0")

    def test_single_node_owns_everything(self):
        ring = HashRing([5])
        ids = _benchsuite_region_ids()
        assert ring.assignments(ids) == [5] * len(ids)


class TestHashRingDeterminism:
    def test_insertion_order_is_irrelevant(self):
        ids = _benchsuite_region_ids()
        forward = HashRing([0, 1, 2, 3])
        backward = HashRing([3, 2, 1, 0])
        assert forward.assignments(ids) == backward.assignments(ids)

    def test_rebuilt_ring_matches(self):
        ids = _benchsuite_region_ids()
        assert HashRing(range(3)).assignments(ids) == HashRing(range(3)).assignments(ids)

    def test_identical_across_processes(self):
        """The assignment must survive a fresh interpreter (no salted hash)."""
        ids = _benchsuite_region_ids()
        script = (
            "from repro.serve import HashRing\n"
            "from repro.benchsuite.registry import regions_by_application\n"
            "ids = [r.region_id for rs in regions_by_application().values() for r in rs]\n"
            "print(HashRing(range(3)).assignments(ids))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == str(HashRing(range(3)).assignments(ids))


class TestHashRingRemap:
    """Membership churn moves only ~1/N of the benchsuite's 68 regions."""

    EPSILON = 0.15  # 68 keys x 64 virtual nodes leaves real sampling variance

    @pytest.mark.parametrize("num_nodes", [2, 3, 4])
    def test_join_steals_about_one_fraction(self, num_nodes):
        ids = _benchsuite_region_ids()
        before = HashRing(range(num_nodes)).assignments(ids)
        grown = HashRing(range(num_nodes))
        grown.add(num_nodes)
        after = grown.assignments(ids)
        moved = sum(a != b for a, b in zip(before, after))
        assert moved / len(ids) <= 1 / (num_nodes + 1) + self.EPSILON
        # Everything that moved went to the new node — survivors never trade.
        assert all(b == num_nodes for a, b in zip(before, after) if a != b)

    @pytest.mark.parametrize("num_nodes", [2, 3, 4])
    def test_leave_moves_only_the_lost_nodes_keys(self, num_nodes):
        ids = _benchsuite_region_ids()
        full = HashRing(range(num_nodes))
        before = full.assignments(ids)
        shrunk = HashRing(range(num_nodes))
        shrunk.remove(0)
        after = shrunk.assignments(ids)
        for previous, now in zip(before, after):
            if previous != 0:
                assert now == previous  # survivors keep every key (warm caches)
        moved = sum(a != b for a, b in zip(before, after))
        assert moved == before.count(0)
        assert moved / len(ids) <= 1 / num_nodes + self.EPSILON

    def test_rejoin_restores_the_original_assignment(self):
        ids = _benchsuite_region_ids()
        ring = HashRing(range(3))
        before = ring.assignments(ids)
        ring.remove(1)
        ring.add(1)
        assert ring.assignments(ids) == before


class TestHashRingPositions:
    def test_partitions_all_positions_in_order(self):
        ids = _benchsuite_region_ids()
        groups = HashRing(range(4)).positions(ids)
        flattened = sorted(p for members in groups.values() for p in members)
        assert flattened == list(range(len(ids)))
        for members in groups.values():
            assert members == sorted(members)

    def test_groups_follow_the_assignment(self):
        ids = _benchsuite_region_ids()
        ring = HashRing(range(3))
        assignments = ring.assignments(ids)
        for node, members in ring.positions(ids).items():
            assert all(assignments[p] == node for p in members)

    def test_every_node_gets_work_on_the_benchsuite(self):
        """replicas=64 keeps the 68-region suite spread over small fleets."""
        ids = _benchsuite_region_ids()
        for num_nodes in (2, 3, 4):
            groups = HashRing(range(num_nodes)).positions(ids)
            assert len(groups) == num_nodes
