"""Wire-format tests for the fleet's length-prefixed TCP framing."""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.serve import rpc


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip_python_objects(self, pair):
        left, right = pair
        payload = ("sweep", ["region.a", "region.b"], [40.0, 85.0], None)
        rpc.send_message(left, payload)
        assert rpc.recv_message(right) == payload

    def test_roundtrip_large_binary_payload(self, pair):
        left, right = pair
        blob = np.arange(1_000_000, dtype=np.float64).tobytes()

        # One side must drain while the other sends: a multi-megabyte
        # message does not fit in the socket buffers.
        received = {}
        reader = threading.Thread(
            target=lambda: received.setdefault("value", rpc.recv_message(right))
        )
        reader.start()
        rpc.send_message(left, ("register", blob))
        reader.join(timeout=30)
        assert not reader.is_alive()
        command, returned = received["value"]
        assert command == "register"
        assert returned == blob

    def test_multiple_messages_stay_aligned(self, pair):
        left, right = pair
        for index in range(5):
            rpc.send_message(left, {"index": index})
        for index in range(5):
            assert rpc.recv_message(right) == {"index": index}


class TestFailureModes:
    def test_recv_on_closed_peer_raises_connection_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(rpc.ConnectionClosed):
            rpc.recv_message(right)

    def test_recv_of_truncated_message_raises_connection_closed(self, pair):
        left, right = pair
        left.sendall(struct.pack(">Q", 100) + b"only-a-few-bytes")
        left.close()
        with pytest.raises(rpc.ConnectionClosed, match="outstanding"):
            rpc.recv_message(right)

    def test_absurd_length_prefix_fails_fast(self, pair):
        left, right = pair
        left.sendall(struct.pack(">Q", rpc.MAX_MESSAGE_BYTES + 1))
        with pytest.raises(rpc.ConnectionClosed, match="corrupt"):
            rpc.recv_message(right)

    def test_send_on_closed_socket_raises_connection_closed(self, pair):
        left, _right = pair
        left.close()
        with pytest.raises(rpc.ConnectionClosed):
            rpc.send_message(left, "anything")


class TestRequest:
    def _serve_one(self, sock, reply):
        def run():
            rpc.recv_message(sock)
            rpc.send_message(sock, reply)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def test_ok_reply_is_unwrapped(self, pair):
        left, right = pair
        self._serve_one(right, ("ok", {"answer": 42}))
        assert rpc.request(left, ("stats",)) == {"answer": 42}

    def test_error_reply_raises_remote_error_with_traceback(self, pair):
        left, right = pair
        self._serve_one(right, ("error", "Traceback: boom"))
        with pytest.raises(rpc.RemoteError, match="boom"):
            rpc.request(left, ("sweep",))

    def test_malformed_reply_raises_remote_error(self, pair):
        left, right = pair
        self._serve_one(right, "not-a-tuple")
        with pytest.raises(rpc.RemoteError, match="malformed"):
            rpc.request(left, ("ping",))

    def test_dead_peer_raises_connection_closed(self, pair):
        left, right = pair
        right.close()
        with pytest.raises(rpc.ConnectionClosed):
            rpc.request(left, ("ping",))


class TestErrorFrames:
    def _raise_and_frame(self):
        try:
            raise ValueError("boom at depth")
        except ValueError as error:
            return rpc.error_frame(error)

    def test_frame_carries_summary_and_traceback(self):
        frame = self._raise_and_frame()
        assert frame["exception"] == "ValueError: boom at depth"
        assert "Traceback (most recent call last)" in frame["traceback"]
        assert "raise ValueError" in frame["traceback"]

    def test_structured_frame_surfaces_node_traceback(self, pair):
        left, right = pair
        frame = self._raise_and_frame()

        def run():
            rpc.recv_message(right)
            rpc.send_message(right, ("error", frame))

        threading.Thread(target=run, daemon=True).start()
        with pytest.raises(rpc.RemoteError) as excinfo:
            rpc.request(left, ("sweep",))
        error = excinfo.value
        assert error.remote_exception == "ValueError: boom at depth"
        assert "raise ValueError" in error.remote_traceback
        # The client-side message itself reads like the node's stack trace.
        assert "node-side traceback" in str(error)
        assert "raise ValueError" in str(error)

    def test_legacy_bare_string_frame_still_raises(self, pair):
        left, right = pair

        def run():
            rpc.recv_message(right)
            rpc.send_message(right, ("error", "Traceback: legacy boom"))

        threading.Thread(target=run, daemon=True).start()
        with pytest.raises(rpc.RemoteError, match="legacy boom") as excinfo:
            rpc.request(left, ("sweep",))
        assert excinfo.value.remote_traceback == "Traceback: legacy boom"


class TestConnectRetry:
    def test_connects_first_try_to_a_listener(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        try:
            sock = rpc.connect(listener.getsockname(), timeout=5.0)
            sock.close()
        finally:
            listener.close()

    def test_retries_until_listener_appears(self):
        """A node that is still booting must not read as a config error."""
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()  # port currently refuses connections

        listener = socket.socket()

        def bind_late():
            time.sleep(0.3)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(address)
            listener.listen()

        opener = threading.Thread(target=bind_late, daemon=True)
        opener.start()
        try:
            sock = rpc.connect(
                address, timeout=5.0, attempts=20, base_delay=0.05, max_delay=0.2
            )
            sock.close()
        finally:
            opener.join()
            listener.close()

    def test_exhausted_attempts_raise_the_refusal(self):
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()
        start = time.monotonic()
        with pytest.raises(ConnectionRefusedError):
            rpc.connect(address, attempts=3, base_delay=0.01, max_delay=0.02)
        assert time.monotonic() - start < 5.0

    def test_single_attempt_raises_immediately(self):
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()
        with pytest.raises(ConnectionRefusedError):
            rpc.connect(address, attempts=1)


class TestPerCallDeadline:
    """`request(timeout=)`: a real socket deadline over send + receive."""

    def test_silent_peer_raises_rpc_timeout_fast(self, pair):
        left, _right = pair
        start = time.monotonic()
        with pytest.raises(rpc.RpcTimeout):
            rpc.request(left, ("ping",), timeout=0.2)
        assert time.monotonic() - start < 2.0

    def test_rpc_timeout_is_distinct_from_connection_closed(self):
        assert issubclass(rpc.RpcTimeout, TimeoutError)
        assert not issubclass(rpc.RpcTimeout, rpc.ConnectionClosed)

    def test_answer_within_deadline_is_served(self, pair):
        left, right = pair

        def serve():
            rpc.recv_message(right)
            time.sleep(0.05)
            rpc.send_message(right, ("ok", "pong"))

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        assert rpc.request(left, ("ping",), timeout=5.0) == "pong"
        server.join(timeout=5.0)

    def test_trickling_peer_cannot_stretch_the_deadline(self, pair):
        # The deadline is absolute: a peer dripping one byte per re-armed
        # socket timeout must still fail at the original deadline.
        left, right = pair

        def trickle():
            rpc.recv_message(right)
            right.sendall(struct.pack(">Q", 100))
            for _ in range(10):
                time.sleep(0.1)
                try:
                    right.sendall(b"x")
                except OSError:
                    return

        dripper = threading.Thread(target=trickle, daemon=True)
        dripper.start()
        start = time.monotonic()
        with pytest.raises(rpc.RpcTimeout, match="outstanding"):
            rpc.request(left, ("ping",), timeout=0.3)
        assert time.monotonic() - start < 1.5

    def test_socket_timeout_is_restored_after_the_call(self, pair):
        left, _right = pair
        left.settimeout(None)
        with pytest.raises(rpc.RpcTimeout):
            rpc.request(left, ("ping",), timeout=0.1)
        assert left.gettimeout() is None

    def test_no_timeout_preserves_blocking_behaviour(self, pair):
        left, right = pair

        def serve():
            rpc.recv_message(right)
            rpc.send_message(right, ("ok", 7))

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        assert rpc.request(left, ("stats",)) == 7
        server.join(timeout=5.0)
