"""Wire-format tests for the fleet's self-verifying TCP framing."""

import pickle
import random
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.serve import rpc


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def _v2_frame(payload) -> bytes:
    """Hand-craft a hardened frame the way send_message does."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        rpc._PREAMBLE.pack(rpc._MAGIC, rpc.PROTOCOL_VERSION, 0, 0)
        + rpc._EXTENT.pack(len(data), rpc._digest(data))
        + data
    )


class TestFraming:
    def test_roundtrip_python_objects(self, pair):
        left, right = pair
        payload = ("sweep", ["region.a", "region.b"], [40.0, 85.0], None)
        rpc.send_message(left, payload)
        assert rpc.recv_message(right) == payload

    def test_recv_frame_reports_protocol_version(self, pair):
        left, right = pair
        rpc.send_message(left, "hello")
        payload, version = rpc.recv_frame(right)
        assert payload == "hello"
        assert version == rpc.PROTOCOL_VERSION == 2

    def test_header_layout_is_32_bytes(self):
        assert rpc.HEADER_BYTES == 32
        assert rpc._PREAMBLE.size == 8  # same width as the legacy prefix
        assert rpc._EXTENT.size == 24

    def test_roundtrip_large_binary_payload(self, pair):
        left, right = pair
        blob = np.arange(1_000_000, dtype=np.float64).tobytes()

        # One side must drain while the other sends: a multi-megabyte
        # message does not fit in the socket buffers.
        received = {}
        reader = threading.Thread(
            target=lambda: received.setdefault("value", rpc.recv_message(right))
        )
        reader.start()
        rpc.send_message(left, ("register", blob))
        reader.join(timeout=30)
        assert not reader.is_alive()
        command, returned = received["value"]
        assert command == "register"
        assert returned == blob

    def test_multiple_messages_stay_aligned(self, pair):
        left, right = pair
        for index in range(5):
            rpc.send_message(left, {"index": index})
        for index in range(5):
            assert rpc.recv_message(right) == {"index": index}


class TestFailureModes:
    def test_recv_on_closed_peer_raises_connection_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(rpc.ConnectionClosed):
            rpc.recv_message(right)

    def test_recv_of_truncated_frame_raises_connection_closed(self, pair):
        left, right = pair
        frame = _v2_frame("truncate-me")
        left.sendall(frame[: rpc.HEADER_BYTES + 4])
        left.close()
        with pytest.raises(rpc.ConnectionClosed, match="outstanding"):
            rpc.recv_message(right)

    def test_absurd_length_fails_fast_before_allocation(self, pair):
        left, right = pair
        left.sendall(
            rpc._PREAMBLE.pack(rpc._MAGIC, rpc.PROTOCOL_VERSION, 0, 0)
            + rpc._EXTENT.pack(rpc.MAX_MESSAGE_BYTES + 1, b"\x00" * rpc.DIGEST_BYTES)
        )
        with pytest.raises(rpc.RpcCorruption, match="corrupt"):
            rpc.recv_message(right)

    def test_send_on_closed_socket_raises_connection_closed(self, pair):
        left, _right = pair
        left.close()
        with pytest.raises(rpc.ConnectionClosed):
            rpc.send_message(left, "anything")


class TestHardenedFrames:
    """Header and digest verification happen *before* any unpickling."""

    def test_corruption_is_a_connection_closed_subclass(self):
        # The fleet's transport-failure handling (mark DEAD, rebalance,
        # re-admit on a fresh socket) applies unchanged to corrupt streams.
        assert issubclass(rpc.RpcCorruption, rpc.ConnectionClosed)

    def test_bad_magic_raises_corruption(self, pair):
        left, right = pair
        left.sendall(b"XXXXYYYY" + b"\x00" * 24)
        with pytest.raises(rpc.RpcCorruption, match="magic"):
            rpc.recv_message(right)

    def test_unsupported_version_raises_corruption(self, pair):
        left, right = pair
        left.sendall(rpc._PREAMBLE.pack(rpc._MAGIC, 99, 0, 0))
        with pytest.raises(rpc.RpcCorruption, match="version"):
            rpc.recv_message(right)

    def test_nonzero_reserved_bits_raise_corruption(self, pair):
        left, right = pair
        left.sendall(rpc._PREAMBLE.pack(rpc._MAGIC, rpc.PROTOCOL_VERSION, 0x40, 0))
        with pytest.raises(rpc.RpcCorruption, match="reserved"):
            rpc.recv_message(right)

    def test_payload_digest_mismatch_raises_corruption(self, pair):
        left, right = pair
        frame = bytearray(_v2_frame({"verb": "sweep", "regions": ["a", "b"]}))
        frame[rpc.HEADER_BYTES + 3] ^= 0x10  # flip one payload bit
        left.sendall(frame)
        with pytest.raises(rpc.RpcCorruption, match="digest"):
            rpc.recv_message(right)

    def test_corrupt_payload_is_never_unpickled(self, pair, monkeypatch):
        left, right = pair
        frame = bytearray(_v2_frame(["payload"]))
        frame[-1] ^= 0x01
        left.sendall(frame)

        def forbidden(*_args, **_kwargs):  # pragma: no cover - must not run
            raise AssertionError("pickle.loads reached with a corrupt payload")

        monkeypatch.setattr(rpc.pickle, "loads", forbidden)
        with pytest.raises(rpc.RpcCorruption):
            rpc.recv_message(right)

    def test_legacy_prefix_without_compat_flag_is_corruption(self, pair):
        # A v1 peer's bare length prefix must not be silently accepted:
        # compat is opt-in, otherwise mis-framed streams could masquerade
        # as legacy traffic.
        left, right = pair
        data = pickle.dumps("legacy", protocol=pickle.HIGHEST_PROTOCOL)
        left.sendall(struct.pack(">Q", len(data)) + data)
        with pytest.raises(rpc.RpcCorruption, match="magic"):
            rpc.recv_message(right)


class TestLegacyCompat:
    def test_legacy_roundtrip_behind_flag(self, pair):
        left, right = pair
        rpc.send_message(left, {"verb": "ping"}, legacy=True)
        payload, version = rpc.recv_frame(right, allow_legacy=True)
        assert payload == {"verb": "ping"}
        assert version == rpc.LEGACY_PROTOCOL_VERSION == 1

    def test_hardened_frames_still_pass_with_compat_enabled(self, pair):
        left, right = pair
        rpc.send_message(left, "modern")
        payload, version = rpc.recv_frame(right, allow_legacy=True)
        assert payload == "modern"
        assert version == rpc.PROTOCOL_VERSION

    def test_legacy_absurd_length_still_fails_fast(self, pair):
        left, right = pair
        left.sendall(struct.pack(">Q", rpc.MAX_MESSAGE_BYTES + 1))
        with pytest.raises(rpc.RpcCorruption, match="corrupt"):
            rpc.recv_message(right, allow_legacy=True)

    def test_request_speaks_legacy_end_to_end(self, pair):
        left, right = pair

        def serve():
            payload, version = rpc.recv_frame(right, allow_legacy=True)
            assert version == rpc.LEGACY_PROTOCOL_VERSION
            rpc.send_message(right, ("ok", {"echo": payload}), legacy=True)

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert rpc.request(left, ("ping",), legacy=True) == {"echo": ("ping",)}
        thread.join(timeout=5.0)


class TestReceiveFuzz:
    """Seeded garbage never unpickles, never hangs — it raises, typed.

    The property the hardened framing guarantees: whatever bytes arrive,
    ``recv_message`` either returns a frame that verified end-to-end or
    raises ``ConnectionClosed``/``RpcCorruption``/``RpcTimeout``.  Payload
    bytes only reach ``pickle.loads`` after the digest matched.
    """

    def _recv_must_raise(self, stream: bytes, monkeypatch) -> None:
        left, right = socket.socketpair()
        try:
            unpickled = []
            real_loads = pickle.loads
            monkeypatch.setattr(
                rpc.pickle,
                "loads",
                lambda data: (unpickled.append(data), real_loads(data))[1],
            )
            left.sendall(stream)
            left.close()
            deadline = time.monotonic() + 10.0  # never hang: bounded receive
            with pytest.raises((rpc.ConnectionClosed, rpc.RpcTimeout)):
                rpc.recv_message(right, deadline=deadline)
            assert not unpickled, "corrupt stream reached pickle.loads"
        finally:
            left.close()
            right.close()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams_always_raise(self, seed, monkeypatch):
        rng = random.Random(1000 + seed)
        stream = rng.randbytes(rng.randint(1, 4096))
        # Random bytes matching the 4-byte magic are a ~2**-32 accident per
        # stream; with fixed seeds this is fully deterministic anyway.
        self._recv_must_raise(stream, monkeypatch)

    @pytest.mark.parametrize("seed", range(8))
    def test_truncations_of_a_valid_frame_always_raise(self, seed, monkeypatch):
        frame = _v2_frame({"verb": "sweep", "regions": list(range(64))})
        rng = random.Random(2000 + seed)
        cut = rng.randint(1, len(frame) - 1)
        self._recv_must_raise(frame[:cut], monkeypatch)

    @pytest.mark.parametrize("seed", range(16))
    def test_single_bit_flips_always_raise(self, seed, monkeypatch):
        # A flip anywhere — magic, version, flags, length, digest, payload —
        # must surface as corruption (or as a short read when the length
        # field shrank/grew), never as silently different data.
        frame = bytearray(_v2_frame({"verb": "sweep", "caps": [40.0, 85.0]}))
        rng = random.Random(3000 + seed)
        position = rng.randrange(len(frame))
        frame[position] ^= 1 << rng.randrange(8)
        self._recv_must_raise(bytes(frame), monkeypatch)

    def test_duplicated_frame_bytes_desynchronise_loudly(self, monkeypatch):
        frame = _v2_frame("once")
        middle = len(frame) // 2
        doubled = frame[:middle] + frame[:middle] + frame[middle:]
        left, right = socket.socketpair()
        try:
            left.sendall(doubled)
            left.close()
            deadline = time.monotonic() + 10.0
            with pytest.raises((rpc.ConnectionClosed, rpc.RpcTimeout)):
                # First frame may still parse if the duplication landed
                # after its end; the stream must fail loudly within the
                # first two receives either way.
                rpc.recv_message(right, deadline=deadline)
                rpc.recv_message(right, deadline=deadline)
        finally:
            left.close()
            right.close()


class TestRequest:
    def _serve_one(self, sock, reply):
        def run():
            rpc.recv_message(sock)
            rpc.send_message(sock, reply)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def test_ok_reply_is_unwrapped(self, pair):
        left, right = pair
        self._serve_one(right, ("ok", {"answer": 42}))
        assert rpc.request(left, ("stats",)) == {"answer": 42}

    def test_error_reply_raises_remote_error_with_traceback(self, pair):
        left, right = pair
        self._serve_one(right, ("error", "Traceback: boom"))
        with pytest.raises(rpc.RemoteError, match="boom"):
            rpc.request(left, ("sweep",))

    def test_malformed_reply_raises_remote_error(self, pair):
        left, right = pair
        self._serve_one(right, "not-a-tuple")
        with pytest.raises(rpc.RemoteError, match="malformed"):
            rpc.request(left, ("ping",))

    def test_wrong_arity_reply_raises_remote_error(self, pair):
        left, right = pair
        self._serve_one(right, ("ok", "extra", "elements"))
        with pytest.raises(rpc.RemoteError, match="malformed"):
            rpc.request(left, ("ping",))

    def test_single_element_reply_raises_remote_error(self, pair):
        left, right = pair
        self._serve_one(right, ("ok",))
        with pytest.raises(rpc.RemoteError, match="malformed"):
            rpc.request(left, ("ping",))

    def test_empty_request_payload_is_rejected_client_side(self, pair):
        left, _right = pair
        with pytest.raises(ValueError, match="non-empty tuple"):
            rpc.request(left, ())

    def test_non_tuple_request_payload_is_rejected_client_side(self, pair):
        left, _right = pair
        with pytest.raises(ValueError, match="non-empty tuple"):
            rpc.request(left, "ping")

    def test_dead_peer_raises_connection_closed(self, pair):
        left, right = pair
        right.close()
        with pytest.raises(rpc.ConnectionClosed):
            rpc.request(left, ("ping",))


class TestErrorFrames:
    def _raise_and_frame(self):
        try:
            raise ValueError("boom at depth")
        except ValueError as error:
            return rpc.error_frame(error)

    def test_frame_carries_summary_and_traceback(self):
        frame = self._raise_and_frame()
        assert frame["exception"] == "ValueError: boom at depth"
        assert "Traceback (most recent call last)" in frame["traceback"]
        assert "raise ValueError" in frame["traceback"]

    def test_structured_frame_surfaces_node_traceback(self, pair):
        left, right = pair
        frame = self._raise_and_frame()

        def run():
            rpc.recv_message(right)
            rpc.send_message(right, ("error", frame))

        threading.Thread(target=run, daemon=True).start()
        with pytest.raises(rpc.RemoteError) as excinfo:
            rpc.request(left, ("sweep",))
        error = excinfo.value
        assert error.remote_exception == "ValueError: boom at depth"
        assert "raise ValueError" in error.remote_traceback
        # The client-side message itself reads like the node's stack trace.
        assert "node-side traceback" in str(error)
        assert "raise ValueError" in str(error)

    def test_legacy_bare_string_frame_still_raises(self, pair):
        left, right = pair

        def run():
            rpc.recv_message(right)
            rpc.send_message(right, ("error", "Traceback: legacy boom"))

        threading.Thread(target=run, daemon=True).start()
        with pytest.raises(rpc.RemoteError, match="legacy boom") as excinfo:
            rpc.request(left, ("sweep",))
        assert excinfo.value.remote_traceback == "Traceback: legacy boom"


class TestConnectRetry:
    def test_connects_first_try_to_a_listener(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        try:
            sock = rpc.connect(listener.getsockname(), timeout=5.0)
            sock.close()
        finally:
            listener.close()

    def test_retries_until_listener_appears(self):
        """A node that is still booting must not read as a config error."""
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()  # port currently refuses connections

        listener = socket.socket()

        def bind_late():
            time.sleep(0.3)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(address)
            listener.listen()

        opener = threading.Thread(target=bind_late, daemon=True)
        opener.start()
        try:
            sock = rpc.connect(
                address, timeout=5.0, attempts=20, base_delay=0.05, max_delay=0.2
            )
            sock.close()
        finally:
            opener.join()
            listener.close()

    def test_exhausted_attempts_raise_the_refusal(self):
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()
        start = time.monotonic()
        with pytest.raises(ConnectionRefusedError):
            rpc.connect(address, attempts=3, base_delay=0.01, max_delay=0.02)
        assert time.monotonic() - start < 5.0

    def test_single_attempt_raises_immediately(self):
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()
        with pytest.raises(ConnectionRefusedError):
            rpc.connect(address, attempts=1)


class TestPerCallDeadline:
    """`request(timeout=)`: a real socket deadline over send + receive."""

    def test_silent_peer_raises_rpc_timeout_fast(self, pair):
        left, _right = pair
        start = time.monotonic()
        with pytest.raises(rpc.RpcTimeout):
            rpc.request(left, ("ping",), timeout=0.2)
        assert time.monotonic() - start < 2.0

    def test_rpc_timeout_is_distinct_from_connection_closed(self):
        assert issubclass(rpc.RpcTimeout, TimeoutError)
        assert not issubclass(rpc.RpcTimeout, rpc.ConnectionClosed)

    def test_answer_within_deadline_is_served(self, pair):
        left, right = pair

        def serve():
            rpc.recv_message(right)
            time.sleep(0.05)
            rpc.send_message(right, ("ok", "pong"))

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        assert rpc.request(left, ("ping",), timeout=5.0) == "pong"
        server.join(timeout=5.0)

    def test_trickling_peer_cannot_stretch_the_deadline(self, pair):
        # The deadline is absolute: a peer dripping one byte per re-armed
        # socket timeout must still fail at the original deadline.
        left, right = pair

        def trickle():
            rpc.recv_message(right)
            right.sendall(
                rpc._PREAMBLE.pack(rpc._MAGIC, rpc.PROTOCOL_VERSION, 0, 0)
                + rpc._EXTENT.pack(100, b"\x00" * rpc.DIGEST_BYTES)
            )
            for _ in range(10):
                time.sleep(0.1)
                try:
                    right.sendall(b"x")
                except OSError:
                    return

        dripper = threading.Thread(target=trickle, daemon=True)
        dripper.start()
        start = time.monotonic()
        with pytest.raises(rpc.RpcTimeout, match="outstanding"):
            rpc.request(left, ("ping",), timeout=0.3)
        assert time.monotonic() - start < 1.5

    def test_socket_timeout_is_restored_after_the_call(self, pair):
        left, _right = pair
        left.settimeout(None)
        with pytest.raises(rpc.RpcTimeout):
            rpc.request(left, ("ping",), timeout=0.1)
        assert left.gettimeout() is None

    def test_no_timeout_preserves_blocking_behaviour(self, pair):
        left, right = pair

        def serve():
            rpc.recv_message(right)
            rpc.send_message(right, ("ok", 7))

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        assert rpc.request(left, ("stats",)) == 7
        server.join(timeout=5.0)
