"""Gateway overload paths: coalescing, deadlines, shedding, hedging, breakers.

The deterministic tests drive the asyncio :class:`~repro.serve.gateway.Gateway`
against an in-memory fake client (no sockets, no subprocesses) so every
overload path — batch-window coalescing, deadline expiry inside and outside
the window, queue-full shedding, hedge-first-answer-wins, breaker
open/half-open/close, dead-fleet fallback — runs in milliseconds and never
flakes on machine load.  The chaos drill at the bottom runs the same gateway
over a real :class:`~repro.serve.fleet.LocalFleet` through kill/kill-all
churn and asserts byte-identity with serial ``predict_sweep`` throughout.
"""

import asyncio
import dataclasses
import time

import pytest

from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.serve import (
    DeadlineExceeded,
    Gateway,
    GatewayOverloaded,
    HashRing,
    LocalFleet,
)
from repro.serve import rpc
from repro.serve.gateway import _CircuitBreaker, _TokenBucket

CAPS = (40.0, 55.0, 70.0, 85.0)


@pytest.fixture(scope="module")
def fitted_tuner(small_database, small_builder):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


# --------------------------------------------------------------------- fakes
@dataclasses.dataclass
class FakeRegion:
    """The only part of a region the gateway routes on."""

    region_id: str


class FakeNode:
    def __init__(self):
        self.latency = 0.0
        self.fail = None  # exception to raise instead of answering
        self.calls = []


class FakeClient:
    """Deterministic in-memory stand-in for the fleet client surface.

    Answers are a pure function of ``(region_id, cap, dtype)`` — *not* of
    the node index — mirroring the fleet's byte-identity contract, so a
    hedged duplicate is indistinguishable from the primary answer.
    """

    def __init__(self, num_nodes=2, fallback_tuner=None):
        self.nodes = {index: FakeNode() for index in range(num_nodes)}
        self.fallback_tuner = fallback_tuner
        self.fallback_builds = 0

    def serving_nodes(self):
        return sorted(self.nodes)

    def sweep_node(self, index, regions, power_caps, dtype=None, timeout=None):
        node = self.nodes[index]
        node.calls.append(([r.region_id for r in regions], tuple(power_caps), dtype))
        if node.latency:
            time.sleep(node.latency)
        if node.fail is not None:
            raise node.fail
        return [
            [(region.region_id, cap, dtype) for cap in power_caps]
            for region in regions
        ]

    def local_fallback_tuner(self):
        self.fallback_builds += 1
        return self.fallback_tuner


class FakeTuner:
    """An in-process fallback answering with the same pure function."""

    def predict_sweep_many(self, regions, power_caps, dtype=None):
        return [
            [(region.region_id, cap, dtype) for cap in power_caps]
            for region in regions
        ]


def expected_answer(region_id, dtype=None):
    return [(region_id, cap, dtype) for cap in CAPS]


def run(coroutine):
    return asyncio.run(coroutine)


# ---------------------------------------------------------------- coalescing
class TestCoalescing:
    def test_concurrent_requests_coalesce_into_one_batch(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.05) as gateway:
                results = await asyncio.gather(
                    *(
                        gateway.predict_sweep(FakeRegion(f"r{i}"), CAPS)
                        for i in range(5)
                    )
                )
            assert results == [expected_answer(f"r{i}") for i in range(5)]
            calls = client.nodes[0].calls
            assert len(calls) == 1  # one predict_sweep_many batch, not five
            assert calls[0][0] == [f"r{i}" for i in range(5)]
            stats = gateway.stats()
            assert stats["admitted"] == 5 and stats["completed"] == 5

        run(scenario())

    def test_different_caps_split_into_separate_batches(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.05) as gateway:
                await asyncio.gather(
                    gateway.predict_sweep(FakeRegion("a"), CAPS),
                    gateway.predict_sweep(FakeRegion("b"), CAPS[:2]),
                )
            batches = [tuple(call[1]) for call in client.nodes[0].calls]
            assert sorted(batches) == sorted([CAPS, CAPS[:2]])

        run(scenario())

    def test_sequential_requests_get_separate_windows(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.005) as gateway:
                await gateway.predict_sweep(FakeRegion("a"), CAPS)
                await gateway.predict_sweep(FakeRegion("b"), CAPS)
            assert len(client.nodes[0].calls) == 2

        run(scenario())


# ------------------------------------------------------------- predictor API
class TestPredictorSurface:
    def test_predict_is_a_single_cap_sweep(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.01) as gateway:
                result = await gateway.predict(FakeRegion("a"), CAPS[0])
            assert result == ("a", CAPS[0], None)

        run(scenario())

    def test_predict_requires_a_cap(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.01) as gateway:
                with pytest.raises(ValueError, match="power_cap"):
                    await gateway.predict(FakeRegion("a"))

        run(scenario())

    def test_deadline_keyword_is_the_timeout(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.2) as gateway:
                with pytest.raises(DeadlineExceeded):
                    await gateway.predict_sweep(
                        FakeRegion("a"), CAPS, deadline=0.01
                    )
                with pytest.raises(ValueError, match="not both"):
                    await gateway.predict_sweep(
                        FakeRegion("a"), CAPS, timeout=1.0, deadline=1.0
                    )

        run(scenario())

    def test_gateway_deadline_error_is_the_predictor_one(self):
        from repro.serve.predictor import DeadlineExceeded as canonical

        assert DeadlineExceeded is canonical


# ----------------------------------------------------------------- deadlines
class TestDeadlines:
    def test_deadline_shorter_than_window_expires_without_dispatch(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.2) as gateway:
                with pytest.raises(DeadlineExceeded, match="expired"):
                    await gateway.predict_sweep(FakeRegion("a"), CAPS, timeout=0.01)
            assert client.nodes[0].calls == []
            assert gateway.stats()["expired"] == 1

        run(scenario())

    def test_deadline_beyond_window_is_served(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.01) as gateway:
                result = await gateway.predict_sweep(
                    FakeRegion("a"), CAPS, timeout=5.0
                )
            assert result == expected_answer("a")

        run(scenario())

    def test_unmeetable_deadline_is_rejected_before_dispatch(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            client.nodes[0].latency = 0.15
            async with Gateway(client, window_s=0.005) as gateway:
                # Teach the gateway the node's latency...
                await gateway.predict_sweep(FakeRegion("warm"), CAPS)
                # ...then ask for an answer faster than it can ever come.
                with pytest.raises(DeadlineExceeded, match="expected"):
                    await gateway.predict_sweep(FakeRegion("a"), CAPS, timeout=0.05)
            assert len(client.nodes[0].calls) == 1  # never dispatched
            assert gateway.stats()["deadline_rejected"] == 1

        run(scenario())

    def test_hung_node_request_fails_by_deadline_not_hang(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            client.nodes[0].latency = 5.0  # hung well past any budget
            async with Gateway(
                client, window_s=0.005, hedge_delay_floor=10.0
            ) as gateway:
                started = time.monotonic()
                with pytest.raises(DeadlineExceeded):
                    await gateway.predict_sweep(FakeRegion("a"), CAPS, timeout=0.2)
                assert time.monotonic() - started < 2.0

        run(scenario())


# ------------------------------------------------------------------ shedding
class TestShedding:
    def test_queue_full_sheds_with_depth_and_retry_hint(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            async with Gateway(client, window_s=0.2, max_pending=2) as gateway:
                queued = [
                    asyncio.ensure_future(
                        gateway.predict_sweep(FakeRegion(f"r{i}"), CAPS)
                    )
                    for i in range(2)
                ]
                await asyncio.sleep(0)  # let both enqueue
                with pytest.raises(GatewayOverloaded) as excinfo:
                    await gateway.predict_sweep(FakeRegion("extra"), CAPS)
                assert excinfo.value.queue_depth == 2
                assert excinfo.value.retry_after_s >= 0.0
                assert gateway.stats()["shed"] == 1
                # The queued requests are unharmed by the shed.
                assert await asyncio.gather(*queued) == [
                    expected_answer("r0"),
                    expected_answer("r1"),
                ]

        run(scenario())


# ------------------------------------------------------------------- hedging
class TestHedging:
    def test_hedge_first_answer_wins_and_is_byte_identical(self):
        async def scenario():
            client = FakeClient(num_nodes=2)
            region = FakeRegion("hedge-me")
            primary = HashRing((0, 1)).node_for(region.region_id)
            other = 1 - primary
            client.nodes[primary].latency = 0.5  # slow, but not failing
            async with Gateway(
                client, window_s=0.005, hedge_delay_floor=0.05
            ) as gateway:
                result = await gateway.predict_sweep(region, CAPS, timeout=5.0)
            # First answer (the hedge) wins and is byte-identical to what
            # the slow primary would eventually have said.
            assert result == expected_answer("hedge-me")
            assert client.nodes[primary].calls and client.nodes[other].calls
            stats = gateway.stats()
            assert stats["hedges"] == 1 and stats["hedge_wins"] == 1

        run(scenario())

    def test_fast_primary_never_hedges(self):
        async def scenario():
            client = FakeClient(num_nodes=2)
            async with Gateway(
                client, window_s=0.005, hedge_delay_floor=0.5
            ) as gateway:
                await gateway.predict_sweep(FakeRegion("fast"), CAPS)
            assert gateway.stats()["hedges"] == 0

        run(scenario())


# ------------------------------------------------------------------ breakers
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = _CircuitBreaker(3, 10.0, clock)
        assert breaker.state == "closed" and breaker.allow()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"  # not yet at the threshold
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = _CircuitBreaker(3, 10.0, FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = _CircuitBreaker(1, 10.0, clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(10.0)
        assert breaker.allow()  # the one half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # no second probe while one is out
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = _CircuitBreaker(1, 10.0, clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 2
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()

    def test_gateway_skips_an_open_breaker(self):
        async def scenario():
            client = FakeClient(num_nodes=2)
            region = FakeRegion("route-me")
            primary = HashRing((0, 1)).node_for(region.region_id)
            other = 1 - primary
            client.nodes[primary].fail = rpc.ConnectionClosed("node lost")
            async with Gateway(
                client, window_s=0.005, breaker_failures=1, breaker_cooldown=1000.0
            ) as gateway:
                # First request fails on the primary, retries on the other.
                assert await gateway.predict_sweep(
                    region, CAPS
                ) == expected_answer("route-me")
                failures = len(client.nodes[primary].calls)
                # The breaker is now open: later requests skip the primary.
                assert await gateway.predict_sweep(
                    region, CAPS
                ) == expected_answer("route-me")
                assert len(client.nodes[primary].calls) == failures
                stats = gateway.stats()
                assert stats["retries"] >= 1
                assert stats["breaker_trips"] >= 1
                assert primary in stats["open_breakers"]

        run(scenario())

    def test_every_node_failing_exhausts_attempts(self):
        async def scenario():
            client = FakeClient(num_nodes=2)
            for node in client.nodes.values():
                node.fail = rpc.ConnectionClosed("gone")
            async with Gateway(
                client,
                window_s=0.005,
                max_attempts=2,
                breaker_failures=100,  # keep both nodes routable throughout
            ) as gateway:
                with pytest.raises(RuntimeError, match="failed on nodes"):
                    await gateway.predict_sweep(FakeRegion("a"), CAPS, timeout=5.0)
            assert gateway.stats()["failed"] == 1

        run(scenario())


# ---------------------------------------------------------------- degradation
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = _TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_acquire()


class TestDegradation:
    def test_dead_fleet_answers_from_fallback(self):
        async def scenario():
            client = FakeClient(num_nodes=0, fallback_tuner=FakeTuner())
            async with Gateway(client, window_s=0.005) as gateway:
                result = await gateway.predict_sweep(FakeRegion("a"), CAPS)
                assert result == expected_answer("a")
                stats = gateway.stats()
                assert stats["fallbacks"] == 1 and stats["degraded"] is True
            assert client.fallback_builds == 1

        run(scenario())

    def test_fallback_tuner_is_built_once(self):
        async def scenario():
            client = FakeClient(num_nodes=0, fallback_tuner=FakeTuner())
            async with Gateway(client, window_s=0.005) as gateway:
                await gateway.predict_sweep(FakeRegion("a"), CAPS)
                await gateway.predict_sweep(FakeRegion("b"), CAPS)
            assert client.fallback_builds == 1

        run(scenario())

    def test_fallback_is_rate_limited(self):
        async def scenario():
            client = FakeClient(num_nodes=0, fallback_tuner=FakeTuner())
            async with Gateway(
                client, window_s=0.005, fallback_rate=0.001, fallback_burst=1.0
            ) as gateway:
                await gateway.predict_sweep(FakeRegion("a"), CAPS)
                with pytest.raises(GatewayOverloaded, match="rate limit"):
                    await gateway.predict_sweep(FakeRegion("b"), CAPS)
                stats = gateway.stats()
                assert stats["fallback_shed"] == 1

        run(scenario())

    def test_fallback_equals_serial_sweep_at_both_dtypes(
        self, fitted_tuner, small_builder
    ):
        regions = small_builder.regions()[:3]
        caps = list(CAPS)

        async def scenario():
            client = FakeClient(num_nodes=0, fallback_tuner=fitted_tuner)
            async with Gateway(
                client, window_s=0.005, default_timeout=120.0
            ) as gateway:
                for dtype in (None, "float32"):
                    served = await asyncio.gather(
                        *(
                            gateway.predict_sweep(region, caps, dtype=dtype)
                            for region in regions
                        )
                    )
                    expected = [
                        fitted_tuner.predict_sweep(region, caps, dtype=dtype)
                        for region in regions
                    ]
                    assert served == expected

        run(scenario())


# ----------------------------------------------------------------- lifecycle
class TestLifecycle:
    def test_predict_before_start_raises(self):
        async def scenario():
            gateway = Gateway(FakeClient(num_nodes=1))
            with pytest.raises(RuntimeError, match="not running"):
                await gateway.predict_sweep(FakeRegion("a"), CAPS)

        run(scenario())

    def test_double_start_raises(self):
        async def scenario():
            async with Gateway(FakeClient(num_nodes=1)) as gateway:
                with pytest.raises(RuntimeError, match="already started"):
                    await gateway.start()

        run(scenario())

    def test_close_fails_queued_requests(self):
        async def scenario():
            client = FakeClient(num_nodes=1)
            gateway = await Gateway(client, window_s=5.0).start()
            queued = asyncio.ensure_future(
                gateway.predict_sweep(FakeRegion("a"), CAPS)
            )
            await asyncio.sleep(0)
            await gateway.close()
            with pytest.raises(RuntimeError, match="closed"):
                await queued

        run(scenario())


# -------------------------------------------------------------- chaos drill
class TestGatewayChaosDrill:
    """The acceptance drill: churn under load, byte-identity throughout."""

    def test_kill_and_total_loss_stay_byte_identical(
        self, fitted_tuner, small_builder
    ):
        regions = small_builder.regions()
        caps = list(CAPS)
        expected = {
            dtype: [
                fitted_tuner.predict_sweep(region, caps, dtype=dtype)
                for region in regions
            ]
            for dtype in (None, "float32")
        }

        async def scenario(local):
            async with Gateway(
                local.client,
                window_s=0.01,
                default_timeout=120.0,
                breaker_cooldown=0.5,
            ) as gateway:
                for dtype in (None, "float32"):
                    served = await asyncio.gather(
                        *(
                            gateway.predict_sweep(region, caps, dtype=dtype)
                            for region in regions
                        )
                    )
                    assert served == expected[dtype]
                # Kill one node mid-traffic: requests reroute, same bytes.
                local.kill_node(0)
                served = await asyncio.gather(
                    *(gateway.predict_sweep(region, caps) for region in regions)
                )
                assert served == expected[None]
                # Kill the survivor: the in-process fallback answers, same
                # bytes at both precisions.
                local.kill_node(1)
                for dtype in (None, "float32"):
                    answer = await gateway.predict_sweep(
                        regions[0], caps, dtype=dtype
                    )
                    assert answer == expected[dtype][0]
                stats = gateway.stats()
                assert stats["degraded"] is True
                assert stats["fallbacks"] >= 2

        with LocalFleet(
            fitted_tuner,
            num_nodes=2,
            dtypes=("float32",),
            heartbeat_interval=None,
        ) as local:
            asyncio.run(scenario(local))
