"""Multi-node TCP fleet serving: equivalence, rebalance, health, lifecycle.

The fleet's contract extends the worker pool's: sweeps served over ≥2
:class:`~repro.serve.node.NodeServer` TCP nodes are byte-identical to
serial per-region ``predict_sweep`` on the parent tuner (at float64 *and*
float32), the spec + ``.npz`` weight bytes ship exactly once at
registration, and losing a node mid-sweep rebalances its regions onto the
survivors instead of failing the sweep.

The self-healing layer extends it further: the heartbeat walks failing
nodes through ``LIVE → SUSPECT → DEAD`` (catching hung-but-connected nodes
that EOF detection cannot see), re-admits recovered nodes via a ping +
re-registration handshake, membership grows and shrinks at runtime, and
rolling weight updates upgrade the fleet one node at a time — all without
ever changing a sweep's bytes.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.serve import FleetClient, FleetExhausted, LocalFleet, NodeServer, NodeState
from repro.serve import rpc
from repro.serve.rpc import RemoteError
from repro.serve.spec import WeightsUpdate

CAPS = [40.0, 55.0, 70.0, 85.0]


@pytest.fixture(scope="module")
def fitted_tuner(small_database, small_builder):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


@pytest.fixture(scope="module")
def fleet(fitted_tuner):
    with LocalFleet(fitted_tuner, num_nodes=2, dtypes=("float32",)) as local:
        yield local


@pytest.fixture(scope="module")
def retrained_tuner(small_database, small_builder):
    """A second weight generation for the rolling-update drills."""
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=3, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


def _serial_sweep(tuner, regions, dtype=None):
    tuner._embedding_cache.clear()
    return [tuner.predict_sweep(region, CAPS, dtype=dtype) for region in regions]


class TestFleetEquivalence:
    def test_byte_identical_to_serial_sweep(self, fleet, fitted_tuner, small_builder):
        regions = small_builder.regions()
        assert fleet.sweep(regions, CAPS) == _serial_sweep(fitted_tuner, regions)

    def test_float32_byte_identical_to_serial(self, fleet, fitted_tuner, small_builder):
        regions = small_builder.regions()
        swept = fleet.sweep(regions, CAPS, dtype="float32")
        assert swept == _serial_sweep(fitted_tuner, regions, dtype="float32")

    def test_input_order_preserved(self, fleet, small_builder):
        regions = small_builder.regions()
        forward = fleet.sweep(regions, CAPS)
        backward = fleet.sweep(list(reversed(regions)), CAPS)
        assert backward == list(reversed(forward))

    def test_duplicate_regions_serve_identically(self, fleet, small_builder):
        region = small_builder.regions()[0]
        first, second = fleet.sweep([region, region], CAPS)
        assert first == second

    def test_empty_regions(self, fleet):
        assert fleet.sweep([], CAPS) == []

    def test_regions_are_spread_over_both_nodes(self, fleet, small_builder):
        regions = small_builder.regions()
        fleet.clear_caches()
        fleet.sweep(regions, CAPS)
        stats = fleet.stats()
        assert len(stats) == 2
        sizes = [node_stats["size"] for node_stats in stats.values()]
        assert sum(sizes) == len(regions)
        assert all(size > 0 for size in sizes)

    def test_remote_application_error_propagates(self, fleet, small_builder):
        region = small_builder.regions()[0]
        with pytest.raises(RemoteError, match="sweep"):
            # Bad request (caps must be numbers): the node reports the
            # error instead of being treated as dead...
            fleet.sweep([region], ["not-a-cap"])
        # ...and both nodes keep serving afterwards.
        assert len(fleet.client.alive_nodes) == 2
        assert fleet.sweep([region], CAPS)[0]


class TestBufferRetention:
    def test_stats_expose_inference_buffer_sizes(self, fleet, small_builder):
        fleet.sweep(small_builder.regions(), CAPS)
        for node_stats in fleet.stats().values():
            buffers = node_stats["buffers"]
            assert buffers["programs"] >= 1
            assert buffers["arena_slabs"] <= buffers["arena_buffers"]
            assert buffers["arena_bytes"] > 0
            assert buffers["head_workspaces"] >= 1

    def test_clear_sheds_arena_bytes_fleet_wide(self, fleet, small_builder):
        regions = small_builder.regions()
        before = fleet.sweep(regions, CAPS)
        fleet.clear_caches()
        for node_stats in fleet.stats().values():
            buffers = node_stats["buffers"]
            assert buffers["arena_bytes"] == 0
            assert buffers["head_workspaces"] == 0
            assert buffers["sweep_batch_memo_entries"] == 0
            assert buffers["programs"] >= 1  # compiled programs survive
        # Buffers rebuild lazily; served bytes are unchanged.
        assert fleet.sweep(regions, CAPS) == before


class TestRebalance:
    def test_killed_node_rebalances_onto_survivor(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        expected = _serial_sweep(fitted_tuner, regions)
        with LocalFleet(fitted_tuner, num_nodes=2) as local:
            before = local.sweep(regions, CAPS)
            assert before == expected
            local.kill_node(0)
            after = local.sweep(regions, CAPS)
            assert after == expected
            assert local.client.alive_nodes == [1]

    def test_all_nodes_dead_raises(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        with LocalFleet(fitted_tuner, num_nodes=1) as local:
            local.kill_node(0)
            with pytest.raises(RuntimeError, match="all fleet nodes failed"):
                local.sweep(regions, CAPS)


class TestLifecycle:
    def test_closed_client_fails_cleanly(self, fitted_tuner):
        local = LocalFleet(fitted_tuner, num_nodes=1)
        local.close()
        with pytest.raises(RuntimeError, match="closed"):
            local.client.sweep([], CAPS)
        with pytest.raises(RuntimeError, match="closed"):
            local.client.stats()

    def test_unregistered_node_reports_clear_error(self, small_builder):
        server = NodeServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with FleetClient([server.address], connect_timeout=10.0) as client:
                with pytest.raises(RemoteError, match="no registered tuner"):
                    client.sweep(small_builder.regions()[:1], CAPS)
        finally:
            server.shutdown()
            thread.join(timeout=5.0)

    def test_client_requires_addresses(self):
        with pytest.raises(ValueError):
            FleetClient([])

    def test_fleet_requires_positive_nodes(self, fitted_tuner):
        with pytest.raises(ValueError):
            LocalFleet(fitted_tuner, num_nodes=0)

    def test_requires_fitted_tuner(self, small_database, small_builder):
        tuner = PnPTuner(
            system="haswell",
            objective="time",
            training_config=TrainingConfig(epochs=1, seed=0),
            database=small_database,
            seed=0,
        )
        with pytest.raises(RuntimeError):
            LocalFleet(tuner, num_nodes=1)


class TestFleetExhausted:
    def test_names_every_node_and_reason(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        with LocalFleet(fitted_tuner, num_nodes=2, heartbeat_interval=None) as local:
            local.kill_node(0)
            local.kill_node(1)
            with pytest.raises(FleetExhausted) as excinfo:
                local.sweep(regions, CAPS)
        error = excinfo.value
        assert "all fleet nodes failed" in str(error)
        assert "regions unserved" in str(error)
        assert sorted(error.reasons) == [0, 1]
        assert "node 0" in str(error) and "node 1" in str(error)
        assert error.unserved == len(regions)

    def test_update_weights_with_no_survivors(self, fitted_tuner, retrained_tuner):
        with LocalFleet(fitted_tuner, num_nodes=1, heartbeat_interval=None) as local:
            local.kill_node(0)
            local.probe_now(force=True)  # EOF was never seen; detect via probe
            with pytest.raises(FleetExhausted, match="all fleet nodes failed"):
                local.client.update_weights(retrained_tuner)

    def test_update_weights_requires_registration(self):
        server = NodeServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with FleetClient(
                [server.address], connect_timeout=10.0, heartbeat_interval=None
            ) as client:
                with pytest.raises(RuntimeError, match="register_tuner"):
                    client.update_weights({})
        finally:
            server.shutdown()
            thread.join(timeout=5.0)


class TestHealth:
    """LIVE → SUSPECT → DEAD → re-admitted, driven deterministically."""

    def test_paused_node_is_detected_and_inflight_sweep_rebalances(
        self, fitted_tuner, small_builder
    ):
        regions = small_builder.regions()
        expected = _serial_sweep(fitted_tuner, regions)
        with LocalFleet(
            fitted_tuner,
            num_nodes=2,
            heartbeat_interval=None,
            ping_timeout=1.0,
            dead_after=1,
        ) as local:
            local.pause_node(0)
            # The sweep blocks on the hung-but-connected node: its TCP
            # connection is alive (the kernel answers), but the process
            # never replies — the failure mode EOF detection cannot see.
            outcome = {}

            def run_sweep():
                outcome["results"] = local.sweep(regions, CAPS)

            sweeper = threading.Thread(target=run_sweep, daemon=True)
            sweeper.start()
            sweeper.join(timeout=0.5)
            assert sweeper.is_alive()  # genuinely stuck on the paused node
            # One forced heartbeat pass: the ping times out, the node goes
            # DEAD, and tearing its socket down unblocks the stuck sweep.
            states = local.probe_now(force=True)
            assert states[0] is NodeState.DEAD
            sweeper.join(timeout=30.0)
            assert not sweeper.is_alive()
            assert outcome["results"] == expected
            # Recovery: SIGCONT + one probe re-admits the node.
            local.resume_node(0)
            assert local.probe_now(force=True)[0] is NodeState.LIVE
            local.clear_caches()
            assert local.sweep(regions, CAPS) == expected
            sizes = [stats["size"] for stats in local.stats().values()]
            assert len(sizes) == 2 and all(size > 0 for size in sizes)

    def test_suspect_is_an_intermediate_state(self, fitted_tuner):
        with LocalFleet(
            fitted_tuner,
            num_nodes=2,
            heartbeat_interval=None,
            ping_timeout=1.0,
            dead_after=2,
        ) as local:
            local.pause_node(1)
            assert local.probe_now(force=True)[1] is NodeState.SUSPECT
            assert local.client.alive_nodes == [0]  # SUSPECT is not LIVE
            assert local.probe_now(force=True)[1] is NodeState.DEAD
            local.resume_node(1)
            assert local.probe_now(force=True)[1] is NodeState.LIVE
            assert local.client.alive_nodes == [0, 1]

    def test_heartbeat_thread_readmits_restarted_node(
        self, fitted_tuner, small_builder
    ):
        regions = small_builder.regions()
        expected = _serial_sweep(fitted_tuner, regions)
        with LocalFleet(
            fitted_tuner,
            num_nodes=2,
            heartbeat_interval=0.1,
            ping_timeout=2.0,
            dead_after=1,
        ) as local:
            local.kill_node(0)
            assert local.sweep(regions, CAPS) == expected  # rebalanced
            assert local.wait_for_state(0, NodeState.DEAD, timeout=30.0)
            local.restart_node(0)
            # The monitor thread re-registers and re-admits on its own.
            assert local.wait_for_state(0, NodeState.LIVE, timeout=60.0)
            local.clear_caches()
            assert local.sweep(regions, CAPS) == expected
            stats = local.stats()
            assert len(stats) == 2
            assert all(s["size"] > 0 for s in stats.values())


class TestElasticity:
    def test_add_then_remove_node(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        expected = _serial_sweep(fitted_tuner, regions)
        ids = [region.region_id for region in regions]
        with LocalFleet(fitted_tuner, num_nodes=2, heartbeat_interval=None) as local:
            baseline = local.client.assignments(ids)
            index = local.add_node()
            assert index == 2
            grown = local.client.assignments(ids)
            # The joiner only steals keys; survivors keep theirs.
            assert all(b == a for b, a in zip(baseline, grown) if a != index)
            local.clear_caches()
            assert local.sweep(regions, CAPS) == expected
            stats = local.stats()
            assert len(stats) == 3
            assert all(s["size"] > 0 for s in stats.values())
            local.remove_node(index)
            assert local.client.assignments(ids) == baseline
            assert local.sweep(regions, CAPS) == expected
            with pytest.raises(KeyError):
                local.client.remove_node(index)

    def test_added_node_is_registered_at_current_version(
        self, fitted_tuner, retrained_tuner, small_builder
    ):
        regions = small_builder.regions()
        with LocalFleet(fitted_tuner, num_nodes=1, heartbeat_interval=None) as local:
            report = local.client.update_weights(retrained_tuner)
            assert report == {"version": 2, "updated": [0]}
            index = local.add_node()
            stats = local.stats()
            assert stats[index]["version"] == 2
            expected = _serial_sweep(retrained_tuner, regions)
            assert local.sweep(regions, CAPS) == expected


class TestRollingUpdate:
    def test_update_swaps_every_node_and_stays_byte_identical(
        self, fitted_tuner, retrained_tuner, small_builder
    ):
        regions = small_builder.regions()
        with LocalFleet(
            fitted_tuner, num_nodes=2, dtypes=("float32",), heartbeat_interval=None
        ) as local:
            assert local.sweep(regions, CAPS) == _serial_sweep(fitted_tuner, regions)
            report = local.client.update_weights(retrained_tuner)
            assert report["version"] == 2
            assert report["updated"] == [0, 1]
            assert local.client.weights_version == 2
            for dtype in (None, "float32"):
                assert local.sweep(regions, CAPS, dtype=dtype) == _serial_sweep(
                    retrained_tuner, regions, dtype=dtype
                )
            assert all(s["version"] == 2 for s in local.stats().values())

    def test_stale_version_is_rejected_by_the_node(
        self, fitted_tuner, retrained_tuner
    ):
        with LocalFleet(fitted_tuner, num_nodes=1, heartbeat_interval=None) as local:
            local.client.update_weights(retrained_tuner)  # node now at version 2
            client = local.client
            sock = rpc.connect(local.addresses[0], timeout=10.0)
            try:
                stale = ("register", client._spec, WeightsUpdate(1, client._weights), ())
                with pytest.raises(RemoteError, match="stale weights version 1"):
                    rpc.request(sock, stale)
            finally:
                sock.close()
            # The node still serves version 2 afterwards.
            assert local.stats()[0]["version"] == 2

    def test_state_dict_payload_is_accepted(
        self, fitted_tuner, retrained_tuner, small_builder
    ):
        regions = small_builder.regions()
        with LocalFleet(fitted_tuner, num_nodes=1, heartbeat_interval=None) as local:
            local.client.update_weights(retrained_tuner.state_dict())
            assert local.sweep(regions, CAPS) == _serial_sweep(
                retrained_tuner, regions
            )


class TestChaosDrill:
    """The full self-healing story in one deterministic scenario.

    Kill a node mid-service, rebalance, restart it, re-admit it through the
    heartbeat handshake (reclaiming exactly its old shard), roll the fleet
    to a new weights version, then grow the fleet — asserting byte-identity
    against the serial tuner at float64 *and* float32 after every step, and
    that each topology change moved only the bounded ~1/N of regions.
    """

    def test_kill_restart_readmit_update_join(
        self, fitted_tuner, retrained_tuner, small_builder
    ):
        regions = small_builder.regions()
        ids = [region.region_id for region in regions]
        expected_v1 = {
            dtype: _serial_sweep(fitted_tuner, regions, dtype=dtype)
            for dtype in (None, "float32")
        }
        expected_v2 = {
            dtype: _serial_sweep(retrained_tuner, regions, dtype=dtype)
            for dtype in (None, "float32")
        }
        with LocalFleet(
            fitted_tuner, num_nodes=3, dtypes=("float32",), heartbeat_interval=None
        ) as local:
            client = local.client
            baseline = client.assignments(ids)
            assert len(set(baseline)) == 3  # all three nodes serve the suite
            for dtype in (None, "float32"):
                assert local.sweep(regions, CAPS, dtype=dtype) == expected_v1[dtype]

            # --- kill: the client discovers the death mid-sweep and
            # rebalances the dead node's share onto the survivors.
            victim = baseline[0]
            local.kill_node(victim)
            for dtype in (None, "float32"):
                assert local.sweep(regions, CAPS, dtype=dtype) == expected_v1[dtype]
            assert client.node_states()[victim] is NodeState.DEAD
            shrunk = client.assignments(ids)
            moved = sum(a != b for a, b in zip(baseline, shrunk))
            assert moved == baseline.count(victim)  # only the victim's keys
            assert all(b == a for b, a in zip(baseline, shrunk) if b != victim)

            # --- restart + re-admit: the node comes back under the same
            # member index and reclaims exactly its old shard.
            local.restart_node(victim)
            assert local.wait_for_state(victim, NodeState.LIVE, timeout=60.0)
            assert client.assignments(ids) == baseline
            for dtype in (None, "float32"):
                assert local.sweep(regions, CAPS, dtype=dtype) == expected_v1[dtype]

            # --- rolling update: every node swaps to version 2 atomically.
            report = client.update_weights(retrained_tuner)
            assert report["version"] == 2
            assert sorted(report["updated"]) == sorted(set(baseline))
            for dtype in (None, "float32"):
                assert local.sweep(regions, CAPS, dtype=dtype) == expected_v2[dtype]
            assert all(s["version"] == 2 for s in local.stats().values())

            # --- join: a fourth node steals a bounded share and serves the
            # current weights version immediately.
            joined = local.add_node()
            grown = client.assignments(ids)
            moved = sum(a != b for a, b in zip(baseline, grown))
            assert moved / len(ids) <= 1 / 4 + 0.35  # 6 keys: coarse bound
            assert all(b == a for b, a in zip(baseline, grown) if a != joined)
            for dtype in (None, "float32"):
                assert local.sweep(regions, CAPS, dtype=dtype) == expected_v2[dtype]
            assert local.stats()[joined]["version"] == 2


class TestRequestDeadlines:
    """Per-call deadlines threaded through the fleet's serving paths."""

    def test_sweep_node_matches_serial(self, fleet, fitted_tuner, small_builder):
        region = small_builder.regions()[0]
        node = fleet.client.serving_nodes()[0]
        [result] = fleet.client.sweep_node(node, [region], CAPS)
        assert result == fitted_tuner.predict_sweep(region, CAPS)

    def test_sweep_node_unknown_member_raises(self, fleet, small_builder):
        with pytest.raises(KeyError, match="no fleet member"):
            fleet.client.sweep_node(99, small_builder.regions()[:1], CAPS)

    def test_sweep_node_timeout_marks_the_node_dead(
        self, fitted_tuner, small_builder
    ):
        region = small_builder.regions()[0]
        with LocalFleet(
            fitted_tuner, num_nodes=2, heartbeat_interval=None
        ) as local:
            local.pause_node(0)
            with pytest.raises(rpc.RpcTimeout):
                local.client.sweep_node(0, [region], CAPS, timeout=0.5)
            # The timed-out socket is poisoned: the node goes DEAD and the
            # heartbeat owns its re-admission.
            assert local.client.node_states()[0] is NodeState.DEAD
            assert local.client.sweep_node(1, [region], CAPS, timeout=30.0)

    def test_request_timeout_rebalances_a_hung_node_mid_sweep(
        self, fitted_tuner, small_builder
    ):
        # With a client-wide request deadline, a sweep stuck on a
        # hung-but-connected node rebalances within the deadline instead of
        # waiting for a heartbeat verdict (the monitor is off here).
        regions = small_builder.regions()
        expected = _serial_sweep(fitted_tuner, regions)
        with LocalFleet(
            fitted_tuner,
            num_nodes=2,
            heartbeat_interval=None,
            request_timeout=1.0,
        ) as local:
            local.pause_node(0)
            assert local.sweep(regions, CAPS) == expected
            assert local.client.node_states()[0] is NodeState.DEAD


class TestGracefulShutdown:
    """SIGTERM drains in-flight requests and exits 0 — no hard kills."""

    def test_sigterm_exits_zero(self, fitted_tuner):
        with LocalFleet(
            fitted_tuner, num_nodes=1, heartbeat_interval=None
        ) as local:
            process = local._processes[0]
            os.kill(process.pid, signal.SIGTERM)
            process.join(timeout=30.0)
            assert process.exitcode == 0

    def test_sigterm_mid_sweep_finishes_the_reply(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        expected = _serial_sweep(fitted_tuner, regions)
        with LocalFleet(
            fitted_tuner, num_nodes=1, heartbeat_interval=None
        ) as local:
            process = local._processes[0]
            outcome = {}

            def run_sweep():
                outcome["results"] = local.sweep(regions, CAPS)

            sweeper = threading.Thread(target=run_sweep, daemon=True)
            sweeper.start()
            time.sleep(0.2)  # let the request land on the node first
            os.kill(process.pid, signal.SIGTERM)  # drain the in-flight sweep
            sweeper.join(timeout=60.0)
            assert not sweeper.is_alive()
            assert outcome["results"] == expected
            process.join(timeout=30.0)
            assert process.exitcode == 0
