"""Multi-node TCP fleet serving: equivalence, rebalance and lifecycle.

The fleet's contract extends the worker pool's: sweeps served over ≥2
:class:`~repro.serve.node.NodeServer` TCP nodes are byte-identical to
serial per-region ``predict_sweep`` on the parent tuner (at float64 *and*
float32), the spec + ``.npz`` weight bytes ship exactly once at
registration, and losing a node mid-sweep rebalances its regions onto the
survivors instead of failing the sweep.
"""

import threading

import pytest

from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.serve import FleetClient, LocalFleet, NodeServer
from repro.serve.rpc import RemoteError

CAPS = [40.0, 55.0, 70.0, 85.0]


@pytest.fixture(scope="module")
def fitted_tuner(small_database, small_builder):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


@pytest.fixture(scope="module")
def fleet(fitted_tuner):
    with LocalFleet(fitted_tuner, num_nodes=2, dtypes=("float32",)) as local:
        yield local


def _serial_sweep(tuner, regions, dtype=None):
    tuner._embedding_cache.clear()
    return [tuner.predict_sweep(region, CAPS, dtype=dtype) for region in regions]


class TestFleetEquivalence:
    def test_byte_identical_to_serial_sweep(self, fleet, fitted_tuner, small_builder):
        regions = small_builder.regions()
        assert fleet.sweep(regions, CAPS) == _serial_sweep(fitted_tuner, regions)

    def test_float32_byte_identical_to_serial(self, fleet, fitted_tuner, small_builder):
        regions = small_builder.regions()
        swept = fleet.sweep(regions, CAPS, dtype="float32")
        assert swept == _serial_sweep(fitted_tuner, regions, dtype="float32")

    def test_input_order_preserved(self, fleet, small_builder):
        regions = small_builder.regions()
        forward = fleet.sweep(regions, CAPS)
        backward = fleet.sweep(list(reversed(regions)), CAPS)
        assert backward == list(reversed(forward))

    def test_duplicate_regions_serve_identically(self, fleet, small_builder):
        region = small_builder.regions()[0]
        first, second = fleet.sweep([region, region], CAPS)
        assert first == second

    def test_empty_regions(self, fleet):
        assert fleet.sweep([], CAPS) == []

    def test_regions_are_spread_over_both_nodes(self, fleet, small_builder):
        regions = small_builder.regions()
        fleet.clear_caches()
        fleet.sweep(regions, CAPS)
        stats = fleet.stats()
        assert len(stats) == 2
        sizes = [node_stats["size"] for node_stats in stats.values()]
        assert sum(sizes) == len(regions)
        assert all(size > 0 for size in sizes)

    def test_remote_application_error_propagates(self, fleet, small_builder):
        region = small_builder.regions()[0]
        with pytest.raises(RemoteError, match="sweep"):
            # Bad request (caps must be numbers): the node reports the
            # error instead of being treated as dead...
            fleet.sweep([region], ["not-a-cap"])
        # ...and both nodes keep serving afterwards.
        assert len(fleet.client.alive_nodes) == 2
        assert fleet.sweep([region], CAPS)[0]


class TestRebalance:
    def test_killed_node_rebalances_onto_survivor(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        expected = _serial_sweep(fitted_tuner, regions)
        with LocalFleet(fitted_tuner, num_nodes=2) as local:
            before = local.sweep(regions, CAPS)
            assert before == expected
            local.kill_node(0)
            after = local.sweep(regions, CAPS)
            assert after == expected
            assert local.client.alive_nodes == [1]

    def test_all_nodes_dead_raises(self, fitted_tuner, small_builder):
        regions = small_builder.regions()
        with LocalFleet(fitted_tuner, num_nodes=1) as local:
            local.kill_node(0)
            with pytest.raises(RuntimeError, match="all fleet nodes failed"):
                local.sweep(regions, CAPS)


class TestLifecycle:
    def test_closed_client_fails_cleanly(self, fitted_tuner):
        local = LocalFleet(fitted_tuner, num_nodes=1)
        local.close()
        with pytest.raises(RuntimeError, match="closed"):
            local.client.sweep([], CAPS)
        with pytest.raises(RuntimeError, match="closed"):
            local.client.stats()

    def test_unregistered_node_reports_clear_error(self, small_builder):
        server = NodeServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with FleetClient([server.address], connect_timeout=10.0) as client:
                with pytest.raises(RemoteError, match="no registered tuner"):
                    client.sweep(small_builder.regions()[:1], CAPS)
        finally:
            server.shutdown()
            thread.join(timeout=5.0)

    def test_client_requires_addresses(self):
        with pytest.raises(ValueError):
            FleetClient([])

    def test_fleet_requires_positive_nodes(self, fitted_tuner):
        with pytest.raises(ValueError):
            LocalFleet(fitted_tuner, num_nodes=0)

    def test_requires_fitted_tuner(self, small_database, small_builder):
        tuner = PnPTuner(
            system="haswell",
            objective="time",
            training_config=TrainingConfig(epochs=1, seed=0),
            database=small_database,
            seed=0,
        )
        with pytest.raises(RuntimeError):
            LocalFleet(tuner, num_nodes=1)
