"""Tests for the flow-graph data structure and the PROGRAML-style builder."""

import numpy as np
import pytest

from repro.benchsuite import full_suite, generate_application_module
from repro.graphs.flowgraph import EdgeRelation, FlowGraph, NodeKind
from repro.graphs.programl import build_flow_graph, build_region_graphs, constant_token
from repro.ir import types as irt
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.outline import extract_outlined_regions
from repro.ir.values import Constant


class TestFlowGraph:
    def test_add_nodes_and_edges(self):
        g = FlowGraph("g")
        a = g.add_node(NodeKind.INSTRUCTION, "load double")
        b = g.add_node(NodeKind.VARIABLE, "double")
        g.add_edge(a, b, EdgeRelation.DATA, position=1)
        assert g.num_nodes == 2 and g.num_edges == 1
        assert g.node(a).kind == NodeKind.INSTRUCTION
        assert g.edges[0].position == 1

    def test_edge_bounds_checked(self):
        g = FlowGraph()
        g.add_node(NodeKind.INSTRUCTION, "x")
        with pytest.raises(IndexError):
            g.add_edge(0, 5, EdgeRelation.CONTROL)

    def test_empty_token_rejected(self):
        with pytest.raises(ValueError):
            FlowGraph().add_node(NodeKind.INSTRUCTION, "")

    def test_edge_arrays_and_kinds(self):
        g = FlowGraph()
        a = g.add_node(NodeKind.INSTRUCTION, "a")
        b = g.add_node(NodeKind.CONSTANT, "i64 ~2^3")
        g.add_edge(b, a, EdgeRelation.DATA)
        edge_index, edge_type = g.edge_arrays()
        np.testing.assert_array_equal(edge_index, [[1], [0]])
        np.testing.assert_array_equal(edge_type, [int(EdgeRelation.DATA)])
        np.testing.assert_array_equal(g.node_kinds(), [0, 2])

    def test_to_networkx(self):
        g = FlowGraph("x")
        a = g.add_node(NodeKind.INSTRUCTION, "a")
        b = g.add_node(NodeKind.VARIABLE, "double")
        g.add_edge(a, b, EdgeRelation.DATA)
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == 2
        assert nx_graph.number_of_edges() == 1
        assert nx_graph.nodes[0]["kind"] == "INSTRUCTION"

    def test_summary_counts(self):
        g = FlowGraph()
        a = g.add_node(NodeKind.INSTRUCTION, "a")
        b = g.add_node(NodeKind.VARIABLE, "double")
        g.add_edge(a, b, EdgeRelation.DATA)
        s = g.summary()
        assert s["nodes_instruction"] == 1
        assert s["edges_data"] == 1
        assert s["edges_control"] == 0


class TestConstantToken:
    def test_integer_buckets(self):
        assert constant_token(Constant(irt.i64(), 0)) == "i64 ~2^0"
        assert constant_token(Constant(irt.i64(), 1)) == "i64 ~2^1"
        assert constant_token(Constant(irt.i64(), 1024)) == "i64 ~2^11"
        assert constant_token(Constant(irt.i64(), 1_000_000)) == "i64 ~2^20"

    def test_float_constants_use_type_only(self):
        assert constant_token(Constant(irt.f64(), 3.14)) == "double"


def _small_module():
    module = Module("demo")
    fn = Function(
        "demo.k.omp_outlined",
        arg_types=[irt.ptr(irt.f64()), irt.i64()],
        arg_names=["A", "n"],
        attributes={"omp_outlined"},
    )
    module.add_function(fn)
    builder = IRBuilder(fn)
    builder.position_at(fn.add_block("entry"))

    def body(b, iv):
        addr = b.gep(fn.arguments[0], [iv])
        val = b.load(addr)
        b.store(b.fmul(val, b.const_float(2.0)), addr)
        b.call("exp", irt.f64(), [val])

    builder.counted_loop(builder.const_int(128), body)
    builder.ret()
    return module


class TestProgramlLowering:
    def test_graph_structure(self):
        graph = build_flow_graph(_small_module())
        summary = graph.summary()
        # Instruction, variable and constant nodes all exist.
        assert summary["nodes_instruction"] > 5
        assert summary["nodes_variable"] > 3
        assert summary["nodes_constant"] >= 2
        # All three relations are present (control, data, call).
        assert summary["edges_control"] > 0
        assert summary["edges_data"] > 0
        assert summary["edges_call"] > 0

    def test_control_flow_follows_block_order_and_branches(self):
        graph = build_flow_graph(_small_module())
        control = graph.edges_of_relation(EdgeRelation.CONTROL)
        # The loop creates a back edge, so some control edge targets an
        # earlier node index.
        assert any(e.target < e.source for e in control)

    def test_data_flow_connects_producers_to_consumers(self):
        graph = build_flow_graph(_small_module())
        data = graph.edges_of_relation(EdgeRelation.DATA)
        variable_nodes = {n.index for n in graph.nodes_of_kind(NodeKind.VARIABLE)}
        # Every variable node participates in at least one data edge.
        touched = {e.source for e in data} | {e.target for e in data}
        assert variable_nodes <= touched

    def test_external_call_gets_call_edges(self):
        graph = build_flow_graph(_small_module())
        call_edges = graph.edges_of_relation(EdgeRelation.CALL)
        tokens = graph.node_tokens()
        assert any(t.startswith("call external exp") for t in tokens)
        assert len(call_edges) >= 3  # root edge + to/from the external node

    def test_deterministic_construction(self):
        a = build_flow_graph(_small_module())
        b = build_flow_graph(_small_module())
        assert a.node_tokens() == b.node_tokens()
        np.testing.assert_array_equal(a.edge_arrays()[0], b.edge_arrays()[0])

    def test_build_region_graphs_over_real_application(self):
        app = next(a for a in full_suite() if a.name == "miniFE")
        module = generate_application_module(app.name, list(app.regions), seed=0)
        graphs = build_region_graphs(extract_outlined_regions(module))
        assert len(graphs) == len(app.regions)
        for graph in graphs.values():
            assert graph.num_nodes > 20
            assert graph.num_edges > graph.num_nodes  # flow graphs are dense-ish
