"""Tests for the vocabulary, the graph encoder and static features."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.encoder import GraphEncoder
from repro.graphs.features import STATIC_FEATURE_NAMES, static_feature_vector
from repro.graphs.flowgraph import EdgeRelation, FlowGraph, NodeKind
from repro.graphs.vocabulary import UNKNOWN_TOKEN, Vocabulary, build_default_vocabulary


def _toy_graph():
    g = FlowGraph("toy")
    load = g.add_node(NodeKind.INSTRUCTION, "load double")
    fmul = g.add_node(NodeKind.INSTRUCTION, "fmul double")
    store = g.add_node(NodeKind.INSTRUCTION, "store void")
    var = g.add_node(NodeKind.VARIABLE, "double")
    const = g.add_node(NodeKind.CONSTANT, "i64 ~2^7")
    g.add_edge(load, fmul, EdgeRelation.CONTROL)
    g.add_edge(fmul, store, EdgeRelation.CONTROL)
    g.add_edge(load, var, EdgeRelation.DATA)
    g.add_edge(var, fmul, EdgeRelation.DATA)
    g.add_edge(const, fmul, EdgeRelation.DATA)
    return g


class TestVocabulary:
    def test_unknown_token_is_zero(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.encode(UNKNOWN_TOKEN) == 0
        assert vocab.encode("missing") == 0
        assert vocab.encode("a") != 0

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("x")
        assert vocab.add("x") == first
        assert len(vocab) == 2  # <unk> + x

    def test_roundtrip(self):
        vocab = Vocabulary(["load double", "store void"])
        for token in vocab.tokens:
            assert vocab.decode(vocab.encode(token)) == token

    def test_from_graphs(self):
        vocab = Vocabulary.from_graphs([_toy_graph()])
        assert "fmul double" in vocab
        assert "i64 ~2^7" in vocab

    def test_default_vocabulary_covers_generated_tokens(self):
        vocab = build_default_vocabulary()
        for token in ("load double", "store void", "phi i64", "atomicrmw double",
                      "i64 ~2^20", "[external]", "double*"):
            assert token in vocab, token

    def test_empty_token_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary().add("")


class TestGraphEncoder:
    def test_encode_shapes(self):
        vocab = build_default_vocabulary()
        sample = GraphEncoder(vocab).encode(_toy_graph(), label=3, aux_features=np.array([0.5]))
        assert sample.num_nodes == 5
        assert sample.num_edges == 5
        assert sample.label == 3
        assert sample.token_ids.shape == (5,)
        assert sample.edge_index.shape == (2, 5)
        assert sample.region_id == "toy"

    def test_unknown_token_fraction(self):
        vocab = Vocabulary(["load double"])
        encoder = GraphEncoder(vocab)
        fraction = encoder.unknown_token_fraction(_toy_graph())
        assert fraction == pytest.approx(4 / 5)

    def test_token_ids_consistent_with_vocabulary(self):
        vocab = build_default_vocabulary()
        sample = GraphEncoder(vocab).encode(_toy_graph())
        assert sample.token_ids[0] == vocab.encode("load double")


class TestStaticFeatures:
    def test_names_match_length(self):
        features = static_feature_vector(_toy_graph())
        assert features.shape == (len(STATIC_FEATURE_NAMES),)

    def test_counts(self):
        features = dict(zip(STATIC_FEATURE_NAMES, static_feature_vector(_toy_graph())))
        assert features["loads"] == 1
        assert features["stores"] == 1
        assert features["float_arith"] == 1
        assert features["num_constants"] == 1
        assert features["control_edges"] == 2
        assert features["data_edges"] == 3

    def test_ratios_are_bounded(self):
        features = dict(zip(STATIC_FEATURE_NAMES, static_feature_vector(_toy_graph())))
        assert 0.0 <= features["memory_ratio"] <= 2.0
        assert 0.0 <= features["flop_ratio"] <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=3))
    def test_never_nan_on_random_graphs(self, n_instructions, extra_kind):
        g = FlowGraph()
        for i in range(n_instructions):
            g.add_node(NodeKind.INSTRUCTION, "fadd double")
        if extra_kind:
            g.add_node(NodeKind(extra_kind % 3), "double")
        features = static_feature_vector(g)
        assert np.all(np.isfinite(features))
