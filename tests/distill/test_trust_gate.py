"""Trust-gate routing: in-family → student, out-of-family → GNN, byte for byte.

The serving guarantee is asymmetric by design: regions inside a family's
calibrated feature ranges are served by the micro tier (fast, within the
embedding tolerance of the teacher), while anything outside — perturbed
features, unknown applications — must fall back to the full GNN path and
be **byte-identical** to calling the tuner directly.
"""

import dataclasses

import pytest

from repro.distill.generate import perturb_out_of_family
from repro.distill.runtime import MicroRuntime
from repro.serve.predictor import (
    GNNPredictor,
    MicroPredictor,
    TieredPredictor,
    UntrustedRegion,
    tiered_predictor,
)

CAPS = [60.0, 95.0]


@pytest.fixture()
def tiered(teacher_tuner, distilled_model):
    return tiered_predictor(teacher_tuner, distilled_model)


def _all_regions(full_regions_by_app):
    return [r for rs in full_regions_by_app.values() for r in rs]


class TestGate:
    def test_every_benchsuite_region_is_trusted(
        self, full_regions_by_app, tiered
    ):
        for region in _all_regions(full_regions_by_app):
            assert tiered.micro.trusted(region), region.region_id

    def test_out_of_family_perturbation_is_untrusted(
        self, full_regions_by_app, tiered
    ):
        for region in _all_regions(full_regions_by_app):
            assert not tiered.micro.trusted(perturb_out_of_family(region))

    def test_unknown_application_is_untrusted(self, full_regions_by_app, tiered):
        region = _all_regions(full_regions_by_app)[0]
        stranger = dataclasses.replace(region, application="never-distilled")
        assert not tiered.micro.trusted(stranger)

    def test_micro_predictor_refuses_untrusted(self, full_regions_by_app, tiered):
        outside = perturb_out_of_family(_all_regions(full_regions_by_app)[0])
        micro = tiered.micro
        with pytest.raises(UntrustedRegion):
            micro.predict(outside, CAPS[0])
        with pytest.raises(UntrustedRegion):
            micro.predict_sweep(outside, CAPS)
        with pytest.raises(UntrustedRegion):
            micro.predict_sweep_many([outside], CAPS)

    def test_max_error_budget_excludes_families(
        self, teacher_tuner, distilled_model
    ):
        strict = dataclasses.replace(
            distilled_model,
            config=dataclasses.replace(distilled_model.config, max_error=0.0),
        )
        runtime = MicroRuntime(strict, teacher_tuner)
        assert runtime.families() == []


class TestRouting:
    def test_in_family_routes_to_micro_tier(self, full_regions_by_app, tiered):
        region = _all_regions(full_regions_by_app)[0]
        expected = tiered.micro.predict_sweep(region, CAPS)
        assert tiered.predict_sweep(region, CAPS) == expected
        stats = tiered.tier_stats()
        assert stats["micro_hits"] == 1
        assert stats["fallbacks"] == 0
        assert stats["micro_families"] == 30

    def test_out_of_family_is_byte_identical_to_tuner(
        self, teacher_tuner, full_regions_by_app, tiered
    ):
        for region in _all_regions(full_regions_by_app)[:5]:
            outside = perturb_out_of_family(region)
            assert tiered.predict_sweep(outside, CAPS) == (
                teacher_tuner.predict_sweep(outside, CAPS)
            )
        assert tiered.tier_stats()["fallbacks"] == 5
        assert tiered.tier_stats()["micro_hits"] == 0

    def test_mixed_batch_partitions_by_trust(
        self, teacher_tuner, full_regions_by_app, tiered
    ):
        regions = _all_regions(full_regions_by_app)[:4]
        outside = [perturb_out_of_family(region) for region in regions[:2]]
        batch = [regions[0], outside[0], regions[1], outside[1]]
        results = tiered.predict_sweep_many(batch, CAPS)
        assert len(results) == len(batch)
        # Untrusted rows match the tuner exactly, in their batch positions.
        assert results[1] == teacher_tuner.predict_sweep(outside[0], CAPS)
        assert results[3] == teacher_tuner.predict_sweep(outside[1], CAPS)
        # Trusted rows match the micro tier.
        assert results[0] == tiered.micro.predict_sweep(regions[0], CAPS)
        assert results[2] == tiered.micro.predict_sweep(regions[1], CAPS)
        stats = tiered.tier_stats()
        # Only the router ticks counters; the direct micro re-sweeps above
        # bypass it, so exactly the batch's 2 + 2 rows are tallied.
        assert stats["micro_hits"] == 2
        assert stats["fallbacks"] == 2

    def test_reset_tier_stats(self, full_regions_by_app, tiered):
        region = _all_regions(full_regions_by_app)[0]
        tiered.predict_sweep(region, CAPS)
        tiered.reset_tier_stats()
        stats = tiered.tier_stats()
        assert stats["micro_hits"] == 0 and stats["fallbacks"] == 0

    def test_factory_wires_the_standard_stack(self, tiered):
        assert isinstance(tiered, TieredPredictor)
        assert isinstance(tiered.micro, MicroPredictor)
        assert isinstance(tiered.fallback, GNNPredictor)
