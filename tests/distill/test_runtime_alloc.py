"""The micro tier's warm path: zero numpy allocations, shared cache accounting.

Same probes the GNN zero-alloc suite uses (``tests/nn/test_zero_alloc_inference``):
the tracemalloc *peak* over one warm predict stays under a small ceiling
(numpy array allocations are kilobytes; bookkeeping is bytes), and a
numpy-data-domain snapshot diff across many warm predicts retains **zero**
array blocks.  On top of that, the runtime's buffers must be visible to —
and shed by — the host tuner's cache controls, so a serving node's
``"clear"`` covers both tiers.
"""

import tracemalloc

import numpy as np
import pytest

from repro.distill.runtime import MicroRuntime
from repro.serve.predictor import tiered_predictor

#: Peak ceiling for one warm micro predict: generous against Python-object
#: noise (result lists, TuningResult dataclasses) yet far below a single
#: pooled-embedding array (128 × 8 bytes) plus workspace reallocation.
PEAK_CEILING_BYTES = 16_384

CAPS = [60.0, 95.0]


@pytest.fixture()
def runtime(teacher_tuner, distilled_model):
    return MicroRuntime(distilled_model, teacher_tuner)


@pytest.fixture(scope="module")
def region(full_regions_by_app):
    return next(iter(full_regions_by_app.values()))[0]


def _warm_predict_peak_bytes(runtime, region) -> int:
    """Tracemalloc peak over one warm single-region predict (all domains)."""
    runtime.predict(region, CAPS[0])  # ensure buffers are bound
    tracemalloc.start()
    runtime.predict(region, CAPS[0])
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    runtime.predict(region, CAPS[0])
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak - before


def _retained_numpy_blocks(runtime, region, repeats: int = 32) -> int:
    """Net numpy-data-domain blocks retained across ``repeats`` warm predicts."""
    runtime.predict(region, CAPS[0])
    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    for _ in range(repeats):
        runtime.predict(region, CAPS[0])
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()
    domain = (tracemalloc.DomainFilter(True, np.lib.tracemalloc_domain),)
    stats = snapshot.filter_traces(domain).compare_to(
        base.filter_traces(domain), "lineno"
    )
    return sum(max(stat.count_diff, 0) for stat in stats)


class TestZeroAllocation:
    def test_warm_predict_stays_under_peak_ceiling(self, runtime, region):
        peak = _warm_predict_peak_bytes(runtime, region)
        assert peak < PEAK_CEILING_BYTES, (
            f"warm micro predict peaked at {peak} bytes"
        )

    def test_warm_predict_retains_no_numpy_blocks(self, runtime, region):
        assert _retained_numpy_blocks(runtime, region) == 0

    def test_warm_sweep_retains_no_numpy_blocks(self, runtime, region):
        runtime.predict_sweep(region, CAPS)
        tracemalloc.start()
        base = tracemalloc.take_snapshot()
        for _ in range(32):
            runtime.predict_sweep(region, CAPS)
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        domain = (tracemalloc.DomainFilter(True, np.lib.tracemalloc_domain),)
        stats = snapshot.filter_traces(domain).compare_to(
            base.filter_traces(domain), "lineno"
        )
        assert sum(max(stat.count_diff, 0) for stat in stats) == 0


class TestCacheAccounting:
    def test_micro_buffers_show_up_in_tuner_stats(
        self, teacher_tuner, runtime, region
    ):
        runtime.predict(region, CAPS[0])
        stats = teacher_tuner.inference_cache_stats()
        assert stats["micro_runtimes"] >= 1
        assert stats["micro_programs"] >= 1
        assert stats["micro_workspaces"] >= 1
        assert stats["micro_bytes"] > 0

    def test_clear_inference_buffers_sheds_the_micro_tier(
        self, teacher_tuner, runtime, region
    ):
        runtime.predict(region, CAPS[0])
        teacher_tuner.clear_inference_buffers()
        micro = runtime.buffer_stats()
        assert micro["micro_programs"] == 0
        assert micro["micro_workspaces"] == 0
        assert micro["micro_bytes"] == 0

    def test_cleared_runtime_serves_again(self, runtime, region):
        before = runtime.predict_sweep(region, CAPS)
        runtime.clear_buffers()
        assert runtime.predict_sweep(region, CAPS) == before

    def test_dynamic_tuner_cannot_host_the_micro_tier(self, distilled_model):
        class _Dynamic:
            include_counters = True

        with pytest.raises(ValueError, match="static features"):
            MicroRuntime(distilled_model, _Dynamic())

    def test_tiered_predictor_buffers_are_shed_too(
        self, teacher_tuner, distilled_model, region
    ):
        tiered = tiered_predictor(teacher_tuner, distilled_model)
        tiered.predict(region, CAPS[0])
        teacher_tuner.clear_inference_buffers()
        assert tiered.micro.runtime.buffer_stats()["micro_bytes"] == 0
        # And the path still serves identically after the shed.
        assert tiered.predict(region, CAPS[0]) == tiered.micro.predict(
            region, CAPS[0]
        )
