"""Predictor-protocol conformance, run against all three implementations.

One canonical signature family — ``predict(region, cap, *, dtype=,
deadline=)`` and the sweep variants — implemented by the GNN path, the
micro tier and the tiered router.  These tests drive each implementation
through the same battery: structural protocol membership, deadline
semantics, dtype overrides, and single-cap/sweep consistency.
"""

import pytest

from repro.serve.predictor import (
    DeadlineExceeded,
    GNNPredictor,
    MicroPredictor,
    Predictor,
    TieredPredictor,
    tiered_predictor,
)

CAPS = [60.0, 95.0]


@pytest.fixture(scope="module")
def predictors(teacher_tuner, distilled_model):
    tiered = tiered_predictor(teacher_tuner, distilled_model)
    return {
        "gnn": GNNPredictor(teacher_tuner),
        "micro": tiered.micro,
        "tiered": tiered,
    }


@pytest.fixture(scope="module")
def region(full_regions_by_app):
    return next(iter(full_regions_by_app.values()))[0]


NAMES = ["gnn", "micro", "tiered"]


class TestProtocolMembership:
    @pytest.mark.parametrize("name", NAMES)
    def test_runtime_checkable_instance(self, predictors, name):
        assert isinstance(predictors[name], Predictor)

    def test_classes_cover_the_three_tiers(self, predictors):
        assert isinstance(predictors["gnn"], GNNPredictor)
        assert isinstance(predictors["micro"], MicroPredictor)
        assert isinstance(predictors["tiered"], TieredPredictor)


class TestSignatures:
    @pytest.mark.parametrize("name", NAMES)
    def test_predict_matches_single_cap_sweep(self, predictors, region, name):
        predictor = predictors[name]
        assert predictor.predict(region, CAPS[0]) == (
            predictor.predict_sweep(region, [CAPS[0]])[0]
        )

    @pytest.mark.parametrize("name", NAMES)
    def test_sweep_many_matches_per_region_sweeps(self, predictors, region, name):
        predictor = predictors[name]
        assert predictor.predict_sweep_many([region, region], CAPS) == [
            predictor.predict_sweep(region, CAPS),
            predictor.predict_sweep(region, CAPS),
        ]

    @pytest.mark.parametrize("name", NAMES)
    def test_dtype_override_is_accepted(self, predictors, region, name):
        results = predictors[name].predict_sweep(region, CAPS, dtype="float32")
        assert len(results) == len(CAPS)

    def test_gnn_predictor_is_the_tuner_path(self, predictors, teacher_tuner, region):
        assert predictors["gnn"].predict_sweep(region, CAPS) == (
            teacher_tuner.predict_sweep(region, CAPS)
        )
        assert predictors["gnn"].predict_sweep(region, CAPS, dtype="float32") == (
            teacher_tuner.predict_sweep(region, CAPS, dtype="float32")
        )


class TestDeadlines:
    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_non_positive_deadline_fails_fast(self, predictors, region, name, budget):
        predictor = predictors[name]
        with pytest.raises(DeadlineExceeded):
            predictor.predict(region, CAPS[0], deadline=budget)
        with pytest.raises(DeadlineExceeded):
            predictor.predict_sweep(region, CAPS, deadline=budget)
        with pytest.raises(DeadlineExceeded):
            predictor.predict_sweep_many([region], CAPS, deadline=budget)

    @pytest.mark.parametrize("name", NAMES)
    def test_generous_deadline_succeeds(self, predictors, region, name):
        results = predictors[name].predict_sweep(region, CAPS, deadline=60.0)
        assert len(results) == len(CAPS)

    def test_deadline_is_keyword_only(self, predictors, region):
        with pytest.raises(TypeError):
            predictors["gnn"].predict_sweep(region, CAPS, None, 60.0)
