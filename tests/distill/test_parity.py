"""Teacher–student parity across the full benchmark suite, both dtypes.

The contract is the *calibrated* one: for every benchsuite region, the
student's pooled embedding lies within its family's
:attr:`~repro.distill.student.FamilyCalibration.tolerance` of the teacher's
— at float64 (the reference student forward) and float32 (the lowered
serving program).  Label agreement is deliberately **not** asserted here:
it is a property of the head's decision boundaries, not of the distillation
contract, and the tiered router's trust gate is what keeps mispredictions
bounded in serving.
"""

import numpy as np

from repro.distill.features import FEATURE_DIM, feature_matrix
from repro.distill.generate import teacher_embeddings
from repro.distill.runtime import _FamilyProgram
from repro.distill.student import DistilledModel


def _family_errors(student, regions, teacher, dtype):
    """Per-region teacher–student L2 embedding error at one serving dtype."""
    if dtype == "float64":
        predicted = np.vstack([student.pooled(region) for region in regions])
    else:
        program = _FamilyProgram(student, np.dtype(dtype)).program
        features = feature_matrix(regions).astype(dtype)
        predicted = program.logits(features, None).astype(np.float64)
    return np.linalg.norm(predicted - teacher, axis=1)


class TestFullSuiteParity:
    def test_every_family_is_distilled(self, full_regions_by_app, distilled_model):
        assert sorted(distilled_model.families) == sorted(full_regions_by_app)
        total = sum(len(rs) for rs in full_regions_by_app.values())
        assert total == 68

    def test_parity_within_tolerance_float64(
        self, teacher_tuner, full_regions_by_app, distilled_model
    ):
        for family, regions in full_regions_by_app.items():
            student = distilled_model.families[family]
            teacher = np.asarray(
                teacher_embeddings(teacher_tuner, regions), dtype=np.float64
            )
            errors = _family_errors(student, regions, teacher, "float64")
            assert (errors <= student.calibration.tolerance).all(), (
                f"{family}: max f64 embedding error {errors.max():.4g} exceeds "
                f"calibrated tolerance {student.calibration.tolerance:.4g}"
            )

    def test_parity_within_tolerance_float32(
        self, teacher_tuner, full_regions_by_app, distilled_model
    ):
        for family, regions in full_regions_by_app.items():
            student = distilled_model.families[family]
            teacher = np.asarray(
                teacher_embeddings(teacher_tuner, regions), dtype=np.float64
            )
            errors = _family_errors(student, regions, teacher, "float32")
            assert (errors <= student.calibration.tolerance).all(), (
                f"{family}: max f32 embedding error {errors.max():.4g} exceeds "
                f"calibrated tolerance {student.calibration.tolerance:.4g}"
            )

    def test_pooled_dim_matches_teacher(self, teacher_tuner, distilled_model):
        assert distilled_model.pooled_dim == teacher_tuner.model_config.hidden_dim


class TestBlobRoundTrip:
    def test_roundtrip_is_byte_identical(self, distilled_model):
        rebuilt = DistilledModel.from_blob(distilled_model.to_blob())
        assert rebuilt.config == distilled_model.config
        assert rebuilt.pooled_dim == distilled_model.pooled_dim
        assert rebuilt.teacher_dtype == distilled_model.teacher_dtype
        assert sorted(rebuilt.families) == sorted(distilled_model.families)
        for name, student in distilled_model.families.items():
            twin = rebuilt.families[name]
            for ours, theirs in zip(student.weights, twin.weights):
                assert ours.dtype == theirs.dtype
                assert (ours == theirs).all()
            for ours, theirs in zip(student.biases, twin.biases):
                assert (ours == theirs).all()
            assert (student.feature_mean == twin.feature_mean).all()
            assert (student.feature_scale == twin.feature_scale).all()
            ours_cal, theirs_cal = student.calibration, twin.calibration
            assert (ours_cal.feature_lo == theirs_cal.feature_lo).all()
            assert (ours_cal.feature_hi == theirs_cal.feature_hi).all()
            assert ours_cal.tolerance == theirs_cal.tolerance

    def test_roundtrip_preserves_predictions(
        self, full_regions_by_app, distilled_model
    ):
        rebuilt = DistilledModel.from_blob(distilled_model.to_blob())
        for family, regions in full_regions_by_app.items():
            original = distilled_model.families[family]
            twin = rebuilt.families[family]
            for region in regions:
                assert (original.pooled(region) == twin.pooled(region)).all()

    def test_feature_dim_is_stable(self, distilled_model):
        for student in distilled_model.families.values():
            assert student.weights[0].shape[0] == FEATURE_DIM
