"""Fixtures for the distillation tier: one full-suite teacher, one student set.

Unlike the core tests' 4-application workload, parity is asserted over the
**entire** benchmark suite (all 68 regions, 30 families) — the distilled
model must stand in for the teacher across everything the suite serves, so
the fixture fits the teacher on the full region set once per session and
distills every family from it.
"""

import pytest

from repro.benchsuite.registry import regions_by_application
from repro.core.dataset import DatasetBuilder
from repro.core.measurements import MeasurementDatabase
from repro.core.model import ModelConfig
from repro.core.search_space import SearchSpace
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.distill.student import StudentConfig, distill
from repro.hw.machine import Machine


@pytest.fixture(scope="session")
def full_regions_by_app():
    return regions_by_application()


@pytest.fixture(scope="session")
def teacher_tuner(full_regions_by_app):
    """A fitted full-suite teacher (weak training — parity is self-calibrated)."""
    regions = [r for rs in full_regions_by_app.values() for r in rs]
    machine = Machine.named("haswell", seed=0)
    database = MeasurementDatabase(machine, SearchSpace("haswell"), regions)
    builder = DatasetBuilder(database, regions_by_app=full_regions_by_app, seed=0)
    config = ModelConfig(
        vocabulary_size=len(builder.vocabulary),
        num_classes=database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=database,
        seed=0,
    )
    tuner.builder = builder
    tuner.fit(tuner.build_training_samples())
    return tuner


@pytest.fixture(scope="session")
def distilled_model(teacher_tuner):
    """Every family distilled with a deliberately small training budget.

    The trust calibration is *relative* to the student's own training error,
    so the parity contract must hold at this budget exactly as it would at a
    production one — a cheap config keeps the session fixture fast without
    weakening what the tests assert.
    """
    return distill(
        teacher_tuner, config=StudentConfig(per_region=2, epochs=60, seed=0)
    )
