"""Tests for the benchmark-suite registry and the IR code generator."""

import pytest

from repro.benchsuite.codegen import generate_application_module, generate_region_function, region_function_name
from repro.benchsuite.polybench import POLYBENCH_NAMES
from repro.benchsuite.proxyapps import LULESH_MOTIVATING_REGION, PROXY_NAMES
from repro.benchsuite.registry import (
    all_regions,
    application_names,
    full_suite,
    get_application,
    get_region,
    regions_by_application,
)
from repro.ir.module import Module
from repro.ir.outline import extract_outlined_regions, outlined_function_names
from repro.ir.verifier import verify_module
from repro.openmp.region import ImbalancePattern


class TestSuiteShape:
    def test_paper_cardinality(self):
        suite = full_suite()
        assert len(suite) == 30
        assert sum(app.num_regions for app in suite) == 68

    def test_polybench_and_proxy_split(self):
        suite = full_suite()
        assert sum(1 for a in suite if a.suite == "polybench") == 24
        assert sum(1 for a in suite if a.suite == "proxy") == 6
        assert set(PROXY_NAMES) <= set(application_names())
        assert set(POLYBENCH_NAMES) <= set(application_names())

    def test_region_ids_unique_and_well_formed(self):
        regions = all_regions()
        ids = [r.region_id for r in regions]
        assert len(set(ids)) == len(ids)
        for region in regions:
            assert region.region_id.startswith(region.application + "/")

    def test_lookup_functions(self):
        app = get_application("LULESH")
        assert app.num_regions == 8
        assert LULESH_MOTIVATING_REGION in app.region_ids()
        region = get_region(LULESH_MOTIVATING_REGION)
        assert region.application == "LULESH"
        with pytest.raises(KeyError):
            get_application("nonexistent")
        with pytest.raises(KeyError):
            get_region("nonexistent/kernel")

    def test_regions_by_application_consistent(self):
        mapping = regions_by_application()
        assert len(mapping) == 30
        assert sum(len(v) for v in mapping.values()) == 68

    def test_workload_diversity(self):
        regions = all_regions()
        # The suite must contain compute-bound, bandwidth-bound, imbalanced,
        # atomic-heavy and tiny regions — the diversity the tuner learns from.
        assert any(r.arithmetic_intensity() > 10 for r in regions)
        assert any(r.arithmetic_intensity() < 0.5 for r in regions)
        assert any(r.imbalance_pattern == ImbalancePattern.LINEAR for r in regions)
        assert any(r.atomics_per_iteration > 0 for r in regions)
        assert any(r.parallel_ops() < 1e6 for r in regions)
        assert any(r.parallel_ops() > 1e9 for r in regions)

    def test_expected_multi_region_apps(self):
        mapping = regions_by_application()
        assert len(mapping["LULESH"]) == 8
        assert len(mapping["miniAMR"]) == 5
        assert len(mapping["XSBench"]) == 2
        assert len(mapping["2mm"]) == 2


class TestCodegen:
    def test_region_function_name_convention(self):
        region = get_region("gemm/kernel_gemm")
        assert region_function_name(region) == "gemm.kernel_gemm.omp_outlined"

    def test_generated_module_verifies_and_outlines(self):
        app = get_application("Quicksilver")
        module = generate_application_module(app.name, list(app.regions), seed=0)
        verify_module(module)
        outlined = outlined_function_names(module)
        assert len(outlined) == app.num_regions
        regions = extract_outlined_regions(module)
        for name, region_module in regions.items():
            assert region_module.get_function(name).is_omp_outlined

    def test_codegen_reflects_region_characteristics(self):
        app = get_application("LULESH")
        module = generate_application_module(app.name, list(app.regions), seed=0)
        atomic_region = next(r for r in app.regions if r.atomics_per_iteration > 0)
        plain_region = next(r for r in app.regions if r.atomics_per_iteration == 0)
        atomic_fn = module.get_function(region_function_name(atomic_region))
        plain_fn = module.get_function(region_function_name(plain_region))
        assert any(i.opcode == "atomicrmw" for i in atomic_fn.instructions())
        assert not any(i.opcode == "atomicrmw" for i in plain_fn.instructions())

    def test_nest_depth_appears_as_phi_count(self):
        deep = get_region("gemm/kernel_gemm")        # nest depth 3
        shallow = get_region("LULESH/CalcPositionForNodes")  # nest depth 1
        module = Module("scratch")
        deep_fn = generate_region_function(module, deep, seed=0)
        module2 = Module("scratch2")
        shallow_fn = generate_region_function(module2, shallow, seed=0)
        deep_phis = sum(1 for i in deep_fn.instructions() if i.opcode == "phi")
        shallow_phis = sum(1 for i in shallow_fn.instructions() if i.opcode == "phi")
        assert deep_phis > shallow_phis

    def test_determinism(self):
        app = get_application("miniFE")
        a = generate_application_module(app.name, list(app.regions), seed=3)
        b = generate_application_module(app.name, list(app.regions), seed=3)
        assert a.render() == b.render()

    def test_rejects_foreign_regions(self):
        region = get_region("gemm/kernel_gemm")
        with pytest.raises(ValueError):
            generate_application_module("atax", [region], seed=0)

    def test_graphs_differ_between_kernel_families(self):
        gemm = get_region("gemm/kernel_gemm")
        boundary = get_region(LULESH_MOTIVATING_REGION)
        module = Module("mix1")
        gemm_fn = generate_region_function(module, gemm, seed=0)
        module2 = Module("mix2")
        boundary_fn = generate_region_function(module2, boundary, seed=0)
        assert gemm_fn.num_instructions() > 2 * boundary_fn.num_instructions()
