"""Autograd engine tests, including numerical gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, rtol=1e-4, atol=1e-6):
    """Compare autograd gradient against central differences."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)

    def value(arr):
        return build(Tensor(arr)).data.sum()

    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor)
    out.sum().backward()
    numeric = numerical_gradient(value, x.copy())
    np.testing.assert_allclose(tensor.grad, numeric, rtol=rtol, atol=atol)


class TestBasicOps:
    def test_add_backward_broadcast(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((3, 4)))
        np.testing.assert_array_equal(b.grad, np.full(4, 3.0))

    def test_mul_backward(self):
        check_gradient(lambda t: t * Tensor(np.arange(6).reshape(2, 3) + 1.0), (2, 3))

    def test_div_backward(self):
        check_gradient(lambda t: Tensor(np.ones((2, 3))) / (t + 5.0), (2, 3))

    def test_matmul_backward(self):
        w = np.random.default_rng(1).normal(size=(4, 5))
        check_gradient(lambda t: t @ Tensor(w), (3, 4))

    def test_matmul_right_operand_gradient(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        expected = a.data.T @ np.ones((3, 2))
        np.testing.assert_allclose(b.grad, expected)

    def test_pow_backward(self):
        check_gradient(lambda t: (t + 3.0) ** 2.0, (5,))

    def test_neg_sub(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (5.0 - a).sum().backward()
        np.testing.assert_array_equal(a.grad, [-1.0, -1.0])

    def test_scalar_lift(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = 2.0 * a + 1.0
        np.testing.assert_array_equal(out.data, [3.0, 5.0])


class TestReductionsAndShapes:
    def test_sum_axis_backward(self):
        check_gradient(lambda t: t.sum(axis=1), (3, 4))

    def test_sum_keepdims_backward(self):
        check_gradient(lambda t: t.sum(axis=0, keepdims=True) * 2.0, (3, 4))

    def test_mean_backward(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 1.0 / 6.0))

    def test_max_backward_routes_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_array_equal(a.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose_backward(self):
        check_gradient(lambda t: t.reshape(6, 2).transpose(), (3, 4))

    def test_getitem_backward(self):
        a = Tensor(np.arange(10, dtype=float), requires_grad=True)
        a[np.array([1, 1, 3])].sum().backward()
        expected = np.zeros(10)
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_array_equal(a.grad, expected)

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        Tensor.concatenate([a, b], axis=1).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))
        np.testing.assert_array_equal(b.grad, np.ones((2, 3)))

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (Tensor.stack([a, b]) * Tensor(np.array([[1.0], [2.0]]))).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))
        np.testing.assert_array_equal(b.grad, np.full(3, 2.0))


class TestElementwise:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "leaky_relu"])
    def test_elementwise_gradients(self, op):
        check_gradient(lambda t: getattr(t, op)(), (4, 3), seed=3)

    def test_log_backward(self):
        check_gradient(lambda t: (t * t + 1.0).log(), (5,))

    def test_clip_gradient_masks_out_of_range(self):
        a = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])


class TestGraphKernels:
    def test_gather_scatter_roundtrip_gradient(self):
        index = np.array([0, 2, 2, 1])

        def build(t):
            return t.gather_rows(index).scatter_sum(index, 3)

        check_gradient(build, (3, 4))

    def test_scatter_sum_values(self):
        x = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        out = x.scatter_sum(np.array([0, 0, 1, 1]), 2)
        np.testing.assert_array_equal(out.data, [[2.0, 4.0], [10.0, 12.0]])

    def test_scatter_sum_rejects_bad_index_length(self):
        x = Tensor(np.ones((3, 2)))
        with pytest.raises(ValueError):
            x.scatter_sum(np.array([0, 1]), 2)


class TestAutogradMechanics:
    def test_gradient_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a).sum().backward()  # d/da a^2 = 2a = 4
        np.testing.assert_allclose(a.grad, [4.0])

    def test_backward_requires_scalar_or_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_disables_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach(self):
        a = Tensor(np.ones(3), requires_grad=True)
        assert not a.detach().requires_grad

    def test_zero_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 3).sum().backward()
        a.zero_grad()
        assert a.grad is None

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    def test_chain_gradcheck_random_shapes(self, rows, cols):
        w = np.random.default_rng(rows * 7 + cols).normal(size=(cols, 3))

        def build(t):
            return ((t @ Tensor(w)).tanh() * 2.0).sum(axis=0)

        check_gradient(build, (rows, cols), seed=rows + cols)
