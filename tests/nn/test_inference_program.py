"""The autograd-free compiled inference runtime (:mod:`repro.nn.inference`).

The contract under test: ``PnPModel.compile_inference()`` lowers the model
to a flat raw-ndarray program whose outputs are **bit-identical** to the
``Module`` forward at float64 and float32 — for every benchsuite region
shape, for batched and single-graph inputs, under the reduceat scatter
toggle — while reusing per-plan buffers safely across interleaved batch
sizes and detecting stale weights.
"""

import numpy as np
import pytest

from repro.benchsuite.codegen import generate_application_module, region_function_name
from repro.benchsuite.registry import regions_by_application
from repro.core.model import ModelConfig, PnPModel
from repro.graphs.encoder import GraphEncoder
from repro.graphs.programl import build_flow_graph
from repro.graphs.vocabulary import build_default_vocabulary
from repro.ir.outline import extract_outlined_regions
from repro.nn import _scatter
from repro.nn.data import collate_graphs
from repro.nn.tensor import Tensor, no_grad

NUM_CLASSES = 7


@pytest.fixture(scope="module")
def vocabulary():
    return build_default_vocabulary()


@pytest.fixture(scope="module")
def suite_samples(vocabulary):
    """One structural graph sample per benchsuite region (all 68 shapes)."""
    encoder = GraphEncoder(vocabulary)
    rng = np.random.default_rng(0)
    samples = []
    for app, regions in regions_by_application().items():
        module = generate_application_module(app, list(regions), seed=0)
        outlined = extract_outlined_regions(module)
        for region in regions:
            graph = build_flow_graph(
                outlined[region_function_name(region)], name=region.region_id
            )
            samples.append(
                encoder.encode(
                    graph,
                    label=-1,
                    aux_features=rng.random(1),
                    region_id=region.region_id,
                )
            )
    return samples


def _model(vocabulary, dtype: str, seed: int = 0) -> PnPModel:
    config = ModelConfig(
        vocabulary_size=len(vocabulary),
        num_classes=NUM_CLASSES,
        aux_dim=1,
        seed=seed,
        dtype=dtype,
    )
    model = PnPModel(config)
    model.eval()
    return model


class TestBitIdenticalToModule:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_every_region_shape_single_graph(self, vocabulary, suite_samples, dtype):
        model = _model(vocabulary, dtype)
        program = model.compile_inference()
        for sample in suite_samples:
            batch = collate_graphs([sample])
            module_pooled = model.encode_pooled(batch)
            program_pooled = program.encode_pooled(batch)
            assert program_pooled.dtype == np.dtype(dtype)
            assert module_pooled.tobytes() == program_pooled.tobytes(), sample.region_id

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_batched_suite_logits_and_labels(self, vocabulary, suite_samples, dtype):
        model = _model(vocabulary, dtype)
        program = model.compile_inference()
        for size in (2, 7, len(suite_samples)):
            batch = collate_graphs(suite_samples[:size])
            with no_grad():
                module_logits = model(batch).data
            assert module_logits.tobytes() == program.forward_logits(batch).tobytes()
            assert np.array_equal(model.predict(batch), program.predict(batch))

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_head_matches_predict_from_pooled(self, vocabulary, suite_samples, dtype):
        model = _model(vocabulary, dtype)
        program = model.compile_inference()
        batch = collate_graphs(suite_samples[:12])
        pooled = model.encode_pooled(batch)
        rows = np.repeat(pooled, 3, axis=0)
        aux = np.linspace(0.0, 1.0, rows.shape[0])[:, None]
        assert np.array_equal(
            model.predict_from_pooled(rows, aux),
            program.predict_from_pooled(rows, aux),
        )
        with no_grad():
            module_logits = model.head(Tensor(rows, dtype=model.dtype), aux).data
        assert module_logits.tobytes() == program.head_logits(rows, aux).tobytes()

    def test_float32_reduceat_schedule_parity(self, vocabulary, suite_samples):
        """The program follows the backend switch exactly like the Module."""
        model = _model(vocabulary, "float32")
        program = model.compile_inference()
        batch = collate_graphs(suite_samples[:6])
        with _scatter.scatter_backend("reduceat"):
            module_pooled = model.encode_pooled(batch)
            program_pooled = program.encode_pooled(batch)
        assert module_pooled.tobytes() == program_pooled.tobytes()
        # And toggling changes the result (proving both paths actually
        # switched schedules rather than ignoring the toggle).
        off = program.encode_pooled(batch)
        assert off.tobytes() == model.encode_pooled(batch).tobytes()


class TestBufferReuse:
    def test_interleaved_batch_sizes_are_safe(self, vocabulary, suite_samples):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        batches = [
            collate_graphs(suite_samples[:1]),
            collate_graphs(suite_samples[:5]),
            collate_graphs(suite_samples[3:4]),
            collate_graphs(suite_samples[:16]),
        ]
        expected = [model.encode_pooled(batch) for batch in batches]
        # Interleave repeatedly: every call must reproduce its own batch's
        # result even though buffers are reused per plan.
        for _ in range(3):
            for batch, want in zip(batches, expected):
                got = program.encode_pooled(batch)
                assert want.tobytes() == got.tobytes()
        assert program.num_bound_plans == len(batches)

    def test_returned_embedding_is_decoupled_from_buffers(
        self, vocabulary, suite_samples
    ):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        batch_a = collate_graphs(suite_samples[:2])
        batch_b = collate_graphs(suite_samples[2:4])
        first = program.encode_pooled(batch_a)
        snapshot = first.copy()
        program.encode_pooled(batch_b)
        program.encode_pooled(batch_a)  # rerun over batch_a's own buffers
        assert np.array_equal(first, snapshot)

    def test_bound_plans_released_with_their_batches(self, vocabulary, suite_samples):
        """Buffers die with their plan: the bound thunks must not pin the
        WeakKeyDictionary entry (a long-lived server would otherwise leak a
        buffer pool per fleet composition ever served)."""
        import gc

        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        batch = collate_graphs(suite_samples[:4])
        program.encode_pooled(batch)
        assert program.num_bound_plans == 1
        del batch
        gc.collect()
        assert program.num_bound_plans == 0

    def test_same_dtype_plans_do_not_share_buffers(self, vocabulary, suite_samples):
        """Two same-shaped batches still bind independent pools (per plan)."""
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        batch_a = collate_graphs(suite_samples[:3])
        batch_b = collate_graphs(suite_samples[3:6])
        a = program.encode_pooled(batch_a)
        b = program.encode_pooled(batch_b)
        assert program.num_bound_plans == 2
        assert a.tobytes() == model.encode_pooled(batch_a).tobytes()
        assert b.tobytes() == model.encode_pooled(batch_b).tobytes()


class TestProgramStructure:
    def test_flat_step_listing(self, vocabulary):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        listing = program.describe()
        # embedding sum (2 steps) + per layer (conv + activation) + pool + head
        layers = model.config.num_rgcn_layers
        assert len(listing) == 2 + 2 * layers + 1 + 1
        assert listing[0] == "embed = gather(token_ids)"
        assert listing[-2].startswith("pooled = mean_pool(")
        assert listing[-1].startswith("logits = dense_head(")

    def test_plan_arity_mismatch_raises(self, vocabulary, suite_samples):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        batch = collate_graphs(suite_samples[:2])
        plan = batch.edge_plan(model.config.num_relations + 1)
        from repro.nn.inference import _BoundEncoder

        with pytest.raises(ValueError):
            _BoundEncoder(program.encoder_steps, plan, program.dtype)

    def test_wrong_dtype_plan_raises(self, vocabulary, suite_samples):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        batch = collate_graphs(suite_samples[:2])
        plan = batch.edge_plan(model.config.num_relations, dtype=np.float32)
        from repro.nn.inference import _BoundEncoder

        with pytest.raises(ValueError):
            _BoundEncoder(program.encoder_steps, plan, np.dtype(np.float64))


class TestStaleness:
    def test_load_state_dict_marks_program_stale(self, vocabulary):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        assert not program.stale()
        twin = _model(vocabulary, "float64", seed=1)
        model.load_state_dict(twin.state_dict())
        assert program.stale()
        fresh = model.compile_inference()
        assert not fresh.stale()

    def test_astype_marks_program_stale(self, vocabulary):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        model.astype("float32")
        assert program.stale()

    def test_recompiled_program_follows_new_weights(self, vocabulary, suite_samples):
        model = _model(vocabulary, "float64")
        stale_program = model.compile_inference()
        batch = collate_graphs(suite_samples[:3])
        before = stale_program.encode_pooled(batch)
        twin = _model(vocabulary, "float64", seed=5)
        model.load_state_dict(twin.state_dict())
        fresh_program = model.compile_inference()
        after = fresh_program.encode_pooled(batch)
        assert after.tobytes() == model.encode_pooled(batch).tobytes()
        assert before.tobytes() != after.tobytes()
