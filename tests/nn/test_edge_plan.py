"""Equivalence tests for the compiled message-passing engine kernels.

The engine's contract is *bit-identity*: plan-driven RGCN execution, the
flat-bincount scatter kernels, the fused ``add_n`` accumulation and the
vectorised pooling must produce exactly the arrays of the retained naive
reference paths — not merely values within a tolerance.
"""

import numpy as np
import pytest

from repro.nn import _scatter
from repro.nn.data import GraphSample, build_edge_plan, collate_graphs
from repro.nn.pooling import global_max_pool, global_mean_pool, global_sum_pool
from repro.nn.rgcn import RGCNConv
from repro.nn.tensor import Tensor


def _random_graph(rng, num_nodes=None, num_edges=None, num_relations=3):
    num_nodes = num_nodes or int(rng.integers(2, 40))
    num_edges = num_edges if num_edges is not None else int(rng.integers(0, 4 * num_nodes))
    edge_index = rng.integers(0, num_nodes, size=(2, num_edges))
    edge_type = rng.integers(0, num_relations, size=num_edges)
    return num_nodes, edge_index.astype(np.int64), edge_type.astype(np.int64)


class TestScatterKernels:
    def test_fast_scatter_bit_identical_to_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            buckets = int(rng.integers(1, 50))
            rows = int(rng.integers(0, 200))
            channels = int(rng.integers(1, 40))
            index = rng.integers(0, buckets, size=rows)
            data = rng.normal(size=(rows, channels))
            fast = _scatter.scatter_rows_sum(data, index, buckets)
            with _scatter.reference_kernels():
                reference = _scatter.scatter_rows_sum(data, index, buckets)
            assert fast.shape == reference.shape
            assert (fast == reference).all()

    def test_precomputed_flat_index_matches(self):
        rng = np.random.default_rng(1)
        index = rng.integers(0, 11, size=64)
        data = rng.normal(size=(64, 8))
        flat = _scatter.flat_scatter_index(index, 8)
        assert (
            _scatter.scatter_rows_sum(data, index, 11, flat=flat)
            == _scatter.scatter_rows_sum(data, index, 11)
        ).all()

    def test_count_index_bit_identical(self):
        rng = np.random.default_rng(2)
        index = rng.integers(0, 13, size=300)
        fast = _scatter.count_index(index, 13)
        with _scatter.reference_kernels():
            reference = _scatter.count_index(index, 13)
        assert fast.dtype == reference.dtype == np.float64
        assert (fast == reference).all()


class TestEdgePlan:
    def test_plan_groups_edges_in_original_order(self):
        rng = np.random.default_rng(3)
        num_nodes, edge_index, edge_type = _random_graph(rng, num_nodes=20, num_edges=60)
        batch = np.zeros(num_nodes, dtype=np.int64)
        plan = build_edge_plan(edge_index, edge_type, batch, num_nodes, 1, 3)
        for relation in range(3):
            mask = edge_type == relation
            assert (plan.relation_src[relation] == edge_index[0, mask]).all()
            assert (plan.relation_dst[relation] == edge_index[1, mask]).all()
            dst = edge_index[1, mask]
            degree = np.zeros(num_nodes)
            np.add.at(degree, dst, 1.0)
            assert (plan.relation_norm[relation][:, 0] == 1.0 / degree[dst]).all()

    def test_plan_node_counts(self):
        batch = np.array([0, 0, 1, 2, 2, 2])
        plan = build_edge_plan(
            np.zeros((2, 0), dtype=np.int64), np.zeros(0, dtype=np.int64), batch, 6, 3, 2
        )
        assert (plan.graph_node_counts == [2.0, 1.0, 3.0]).all()

    def test_plan_rejects_out_of_range_relation(self):
        with pytest.raises(ValueError):
            build_edge_plan(
                np.array([[0], [1]]), np.array([5]), np.zeros(2, dtype=np.int64), 2, 1, 3
            )

    def test_batch_memoises_plan_per_arity(self):
        sample = GraphSample(
            token_ids=np.array([0, 1]),
            node_types=np.array([0, 0]),
            edge_index=np.array([[0], [1]]),
            edge_type=np.array([0]),
        )
        batch = collate_graphs([sample, sample])
        assert batch.edge_plan(3) is batch.edge_plan(3)
        assert batch.edge_plan(2) is not batch.edge_plan(3)


class TestRGCNPlanEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_forward_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes, edge_index, edge_type = _random_graph(rng)
        conv = RGCNConv(6, 5, num_relations=3, rng=np.random.default_rng(seed + 10))
        x = rng.normal(size=(num_nodes, 6))
        plan = build_edge_plan(
            edge_index, edge_type, np.zeros(num_nodes, dtype=np.int64), num_nodes, 1, 3
        )
        naive = conv(Tensor(x), edge_index, edge_type)
        planned = conv(Tensor(x), edge_index, edge_type, plan=plan)
        assert (naive.data == planned.data).all()

    def test_forward_bit_identical_with_empty_relation(self):
        rng = np.random.default_rng(7)
        conv = RGCNConv(4, 4, num_relations=3, rng=rng)
        edge_index = np.array([[0, 1, 2], [1, 2, 0]])
        edge_type = np.array([0, 0, 2])  # relation 1 has no edges
        x = rng.normal(size=(3, 4))
        plan = build_edge_plan(edge_index, edge_type, np.zeros(3, dtype=np.int64), 3, 1, 3)
        naive = conv(Tensor(x), edge_index, edge_type)
        planned = conv(Tensor(x), edge_index, edge_type, plan=plan)
        assert (naive.data == planned.data).all()

    def test_gradients_bit_identical(self):
        rng = np.random.default_rng(11)
        num_nodes, edge_index, edge_type = _random_graph(rng, num_nodes=25, num_edges=80)
        plan = build_edge_plan(
            edge_index, edge_type, np.zeros(num_nodes, dtype=np.int64), num_nodes, 1, 3
        )
        grads = {}
        for label, use_plan in (("naive", False), ("planned", True)):
            conv = RGCNConv(5, 5, num_relations=3, rng=np.random.default_rng(42))
            x = Tensor(np.random.default_rng(43).normal(size=(num_nodes, 5)), requires_grad=True)
            out = conv(x, edge_index, edge_type, plan=plan if use_plan else None)
            (out * Tensor(np.random.default_rng(44).normal(size=out.shape))).sum().backward()
            grads[label] = (x.grad, conv.weight.grad, conv.root.grad, conv.bias.grad)
        for naive_grad, planned_grad in zip(*grads.values()):
            assert (naive_grad == planned_grad).all()

    def test_plan_arity_mismatch_rejected(self):
        conv = RGCNConv(3, 3, num_relations=2)
        plan = build_edge_plan(
            np.array([[0], [1]]), np.array([0]), np.zeros(2, dtype=np.int64), 2, 1, 3
        )
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((2, 3))), np.array([[0], [1]]), np.array([0]), plan=plan)

    def test_plan_node_count_mismatch_rejected(self):
        conv = RGCNConv(3, 3, num_relations=2)
        plan = build_edge_plan(
            np.array([[0], [1]]), np.array([0]), np.zeros(2, dtype=np.int64), 2, 1, 2
        )
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((5, 3))), np.array([[0], [1]]), np.array([0]), plan=plan)


class TestFusedOps:
    def test_add_n_bit_identical_to_chained_adds(self):
        rng = np.random.default_rng(5)
        arrays = [rng.normal(size=(17, 6)) for _ in range(4)]
        chained_in = [Tensor(a, requires_grad=True) for a in arrays]
        fused_in = [Tensor(a, requires_grad=True) for a in arrays]
        chained = chained_in[0] + chained_in[1] + chained_in[2] + chained_in[3]
        fused = Tensor.add_n(fused_in)
        assert (chained.data == fused.data).all()
        seed = rng.normal(size=(17, 6))
        chained.backward(seed)
        fused.backward(seed)
        for a, b in zip(chained_in, fused_in):
            assert (a.grad == b.grad).all()

    def test_add_n_validates_inputs(self):
        with pytest.raises(ValueError):
            Tensor.add_n([])
        with pytest.raises(ValueError):
            Tensor.add_n([Tensor(np.ones((2, 2))), Tensor(np.ones((3, 2)))])

    def test_leaky_relu_bit_identical_to_masked_reference(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(50, 7))
        data[0, 0] = 0.0
        fast = Tensor(data).leaky_relu(0.01)
        reference = data * np.where(data > 0, 1.0, 0.01)
        assert (fast.data == reference).all()
        t = Tensor(data, requires_grad=True)
        t.leaky_relu(0.01).sum().backward()
        assert (t.grad == np.where(data > 0, 1.0, 0.01)).all()


class TestPooling:
    def test_mean_pool_with_plan_counts_bit_identical(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(12, 4))
        batch = np.sort(rng.integers(0, 3, size=12))
        plan = build_edge_plan(
            np.zeros((2, 0), dtype=np.int64), np.zeros(0, dtype=np.int64), batch, 12, 3, 1
        )
        plain = global_mean_pool(Tensor(x), batch, 3)
        planned = global_mean_pool(
            Tensor(x), batch, 3, node_counts=plan.graph_node_counts,
            flat_index=plan.pool_flat(4),
        )
        assert (plain.data == planned.data).all()

    def test_max_pool_matches_per_node_reference_loop(self):
        rng = np.random.default_rng(9)
        for _ in range(5):
            num_nodes = int(rng.integers(1, 30))
            channels = int(rng.integers(1, 6))
            num_graphs = int(rng.integers(1, 5))
            x = rng.normal(size=(num_nodes, channels))
            # Duplicate values to exercise tie-breaking.
            if num_nodes > 2:
                x[1] = x[0]
            batch = np.sort(rng.integers(0, num_graphs, size=num_nodes))
            # The seed's per-node Python loop, kept as the reference.
            maxima = np.full((num_graphs, channels), -np.inf)
            argmax = np.zeros((num_graphs, channels), dtype=np.int64)
            for node in range(num_nodes):
                graph = batch[node]
                better = x[node] > maxima[graph]
                maxima[graph][better] = x[node][better]
                argmax[graph][better] = node
            cols = np.tile(np.arange(channels), (num_graphs, 1))
            reference = x[argmax, cols]
            out = global_max_pool(Tensor(x), batch, num_graphs)
            assert (out.data == reference).all()

    def test_max_pool_skips_nan_like_reference_loop(self):
        # The reference loop's strict '>' never selects a NaN entry.
        x = Tensor(np.array([[np.nan, 1.0], [5.0, np.nan], [2.0, 3.0]]))
        batch = np.array([0, 0, 0])
        assert (global_max_pool(x, batch, 1).data == np.array([[5.0, 3.0]])).all()

    def test_max_pool_routes_gradient_to_first_maximum(self):
        x = Tensor(np.array([[1.0], [3.0], [3.0], [2.0]]), requires_grad=True)
        batch = np.array([0, 0, 0, 1])
        global_max_pool(x, batch, 2).sum().backward()
        assert (x.grad == np.array([[0.0], [1.0], [0.0], [1.0]])).all()

    def test_check_batch_rejects_out_of_range_indices(self):
        x = Tensor(np.ones((3, 2)))
        for pool in (global_sum_pool, global_mean_pool, global_max_pool):
            with pytest.raises(ValueError):
                pool(x, np.array([0, 1, 2]), 2)
            with pytest.raises(ValueError):
                pool(x, np.array([0, -1, 1]), 2)
