"""The pure-float32 sorted-segment reduceat scatter schedule.

The schedule (stable argsort + segment boundaries, ``np.add.reduceat``) is an
opt-in alternative to the flat-bincount float32 path: it accumulates natively
in single precision instead of taking ``np.bincount``'s float64 round trip.
It ships disabled by default (profiling showed the bincount round trip is at
least as fast on this NumPy build — see ``repro/nn/_scatter.py``), so these
tests select it through the canonical ``scatter_backend("reduceat")`` scope.
The legacy two-way toggle (``reduceat_scatter`` / ``set_reduceat_scatter``)
is covered as a *deprecated alias*: it must still work, and it must warn.
"""

import numpy as np
import pytest

from repro.nn import _scatter, precision
from repro.nn.data import build_edge_plan
from repro.nn.rgcn import RGCNConv
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture()
def random_scatter():
    rng = np.random.default_rng(7)
    index = rng.integers(0, 50, size=400)
    data32 = rng.standard_normal((400, 8)).astype(np.float32)
    return index, data32


class TestSegmentSchedule:
    def test_schedule_fields(self, random_scatter):
        index, _ = random_scatter
        schedule = _scatter.build_segment_schedule(index)
        assert schedule.perm.shape == index.shape
        # Stable sort: within a bucket the original order is preserved.
        sorted_index = index[schedule.perm]
        assert (np.diff(sorted_index) >= 0).all()
        assert schedule.buckets.shape == schedule.starts.shape
        assert set(schedule.buckets.tolist()) == set(np.unique(index).tolist())

    def test_empty_index(self):
        schedule = _scatter.build_segment_schedule(np.zeros(0, dtype=np.int64))
        assert schedule.perm.size == 0 and schedule.starts.size == 0

    def test_single_bucket(self):
        schedule = _scatter.build_segment_schedule(np.zeros(5, dtype=np.int64))
        assert schedule.starts.tolist() == [0]
        assert schedule.buckets.tolist() == [0]


class TestReduceatKernel:
    def test_matches_add_at_float32(self, random_scatter):
        index, data = random_scatter
        reference = np.zeros((50, 8), dtype=np.float32)
        np.add.at(reference, index, data)
        schedule = _scatter.build_segment_schedule(index)
        with _scatter.scatter_backend("reduceat"):
            out = _scatter.scatter_rows_sum(data, index, 50, segments=schedule)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, reference, rtol=2e-5, atol=2e-5)

    def test_disabled_by_default(self, random_scatter):
        index, data = random_scatter
        schedule = _scatter.build_segment_schedule(index)
        assert _scatter.scatter_backend_name() == "bincount"
        via_segments = _scatter.scatter_rows_sum(data, index, 50, segments=schedule)
        via_bincount = _scatter.scatter_rows_sum(data, index, 50)
        # Under bincount the segments argument must be ignored entirely.
        assert (via_segments == via_bincount).all()

    def test_float64_ignores_segments(self, random_scatter):
        index, data = random_scatter
        data64 = data.astype(np.float64)
        schedule = _scatter.build_segment_schedule(index)
        with _scatter.scatter_backend("reduceat"):
            out = _scatter.scatter_rows_sum(data64, index, 50, segments=schedule)
        reference = np.zeros((50, 8), dtype=np.float64)
        np.add.at(reference, index, data64)
        # float64 keeps the bit-identical bincount path regardless of backend.
        assert (out == reference).all()

    def test_empty_bucket_rows_are_zero(self):
        index = np.array([3, 3, 7], dtype=np.int64)
        data = np.ones((3, 2), dtype=np.float32)
        schedule = _scatter.build_segment_schedule(index)
        with _scatter.scatter_backend("reduceat"):
            out = _scatter.scatter_rows_sum(data, index, 10, segments=schedule)
        assert out[3].tolist() == [2.0, 2.0]
        assert out[7].tolist() == [1.0, 1.0]
        untouched = np.delete(out, [3, 7], axis=0)
        assert (untouched == 0).all()


class TestDeprecatedToggleAlias:
    """The PR-3 two-way toggle still works — and warns — as an alias."""

    def test_scope_warns_and_maps_onto_backend(self):
        assert _scatter.scatter_backend_name() == "bincount"
        with pytest.deprecated_call(match="set_scatter_backend"):
            with _scatter.reduceat_scatter(True):
                assert _scatter.scatter_backend_name() == "reduceat"
                with pytest.deprecated_call():
                    with _scatter.reduceat_scatter(False):
                        assert _scatter.scatter_backend_name() == "bincount"
                assert _scatter.scatter_backend_name() == "reduceat"
        assert _scatter.scatter_backend_name() == "bincount"

    def test_setter_warns_and_returns_previous(self):
        with pytest.deprecated_call(match="set_reduceat_scatter"):
            previous = _scatter.set_reduceat_scatter(True)
        assert previous is False and _scatter.scatter_backend_name() == "reduceat"
        with pytest.deprecated_call():
            _scatter.set_reduceat_scatter(previous)
        assert _scatter.scatter_backend_name() == "bincount"

    def test_enabled_probe_tracks_backend(self):
        # The read-only probe is deprecated in docs but warning-free: it is
        # called from hot paths and merely reflects the backend switch.
        assert _scatter.reduceat_scatter_enabled() is False
        with _scatter.scatter_backend("reduceat"):
            assert _scatter.reduceat_scatter_enabled() is True

    def test_scope_restores_third_backend(self):
        # The alias restores whichever backend was active — including one the
        # two-way API cannot even name.
        with _scatter.scatter_backend("prealloc"):
            with pytest.deprecated_call():
                with _scatter.reduceat_scatter(True):
                    assert _scatter.scatter_backend_name() == "reduceat"
            assert _scatter.scatter_backend_name() == "prealloc"


class TestAutoCalibration:
    """``set_reduceat_scatter("auto")``: one-shot cached microcalibration."""

    def test_auto_measures_once_and_caches(self, monkeypatch):
        # Seed the cache with a known verdict: "auto" must apply it without
        # re-measuring.
        monkeypatch.setattr(_scatter, "_AUTO_REDUCEAT", True)
        with pytest.deprecated_call():
            previous = _scatter.set_reduceat_scatter("auto")
        try:
            assert _scatter.scatter_backend_name() == "reduceat"
        finally:
            with pytest.deprecated_call():
                _scatter.set_reduceat_scatter(previous)
        monkeypatch.setattr(_scatter, "_AUTO_REDUCEAT", False)
        with pytest.deprecated_call():
            previous = _scatter.set_reduceat_scatter("auto")
        try:
            assert _scatter.scatter_backend_name() == "bincount"
        finally:
            with pytest.deprecated_call():
                _scatter.set_reduceat_scatter(previous)

    def test_calibration_returns_bool_and_is_cached(self, monkeypatch):
        monkeypatch.setattr(_scatter, "_AUTO_REDUCEAT", None)
        verdict = _scatter._calibrate_reduceat(
            num_rows=2_000, num_buckets=400, channels=8, repeats=1
        )
        assert isinstance(verdict, bool)
        # Cached: a second call ignores (different) arguments entirely.
        assert (
            _scatter._calibrate_reduceat(num_rows=1, num_buckets=1, channels=1)
            is verdict
        )

    def test_auto_sets_global_and_returns_previous(self, monkeypatch):
        monkeypatch.setattr(_scatter, "_AUTO_REDUCEAT", None)
        assert _scatter.scatter_backend_name() == "bincount"
        with pytest.deprecated_call():
            previous = _scatter.set_reduceat_scatter("auto")
        try:
            assert previous is False
            expected = "reduceat" if _scatter._AUTO_REDUCEAT else "bincount"
            assert _scatter.scatter_backend_name() == expected
        finally:
            with pytest.deprecated_call():
                _scatter.set_reduceat_scatter(previous)

    def test_rejects_unknown_strings(self):
        with pytest.deprecated_call():
            with pytest.raises(ValueError):
                _scatter.set_reduceat_scatter("always")


class TestPlannedLayerWithReduceat:
    def _layer_and_plan(self):
        rng = np.random.default_rng(0)
        num_nodes, num_edges, relations, channels = 60, 240, 3, 8
        edge_index = rng.integers(0, num_nodes, size=(2, num_edges))
        edge_type = rng.integers(0, relations, size=num_edges)
        batch = np.sort(rng.integers(0, 4, size=num_nodes))
        with precision.autocast("float32"):
            layer = RGCNConv(channels, channels, relations, rng=np.random.default_rng(0))
            plan = build_edge_plan(edge_index, edge_type, batch, num_nodes, 4, relations)
            x = Tensor(rng.standard_normal((num_nodes, channels)), requires_grad=True)
        return layer, plan, x, edge_index, edge_type

    def test_forward_close_to_bincount_path(self):
        layer, plan, x, edge_index, edge_type = self._layer_and_plan()
        layer.eval()
        with no_grad():
            with _scatter.scatter_backend("bincount"):
                bincount_out = layer(x, edge_index, edge_type, plan=plan).data
            with _scatter.scatter_backend("reduceat"):
                reduceat_out = layer(x, edge_index, edge_type, plan=plan).data
        assert reduceat_out.dtype == np.float32
        np.testing.assert_allclose(reduceat_out, bincount_out, rtol=2e-4, atol=2e-4)

    def test_backward_close_to_bincount_path(self):
        layer, plan, x, edge_index, edge_type = self._layer_and_plan()
        grads = {}
        for backend in ("bincount", "reduceat"):
            x.grad = None
            for parameter in layer.parameters():
                parameter.grad = None
            with _scatter.scatter_backend(backend):
                out = layer(x, edge_index, edge_type, plan=plan)
                out.sum().backward()
            grads[backend] = (
                x.grad.copy(),
                [p.grad.copy() for p in layer.parameters()],
            )
        x_binc, params_binc = grads["bincount"]
        x_red, params_red = grads["reduceat"]
        assert x_red.dtype == np.float32
        np.testing.assert_allclose(x_red, x_binc, rtol=2e-3, atol=2e-3)
        for got, expected in zip(params_red, params_binc):
            np.testing.assert_allclose(got, expected, rtol=2e-3, atol=2e-3)

    def test_plan_memoises_segment_schedules(self):
        _, plan, *_ = self._layer_and_plan()
        first = plan.scatter_segments(0)
        assert plan.scatter_segments(0) is first
        pool_first = plan.pool_segments()
        assert plan.pool_segments() is pool_first
        # A derived float64 twin shares the schedule cache by reference.
        assert plan.dtype == np.float32

    def test_with_dtype_shares_segment_cache(self):
        rng = np.random.default_rng(1)
        edge_index = rng.integers(0, 20, size=(2, 40))
        edge_type = rng.integers(0, 3, size=40)
        batch = np.zeros(20, dtype=np.int64)
        plan64 = build_edge_plan(
            edge_index, edge_type, batch, 20, 1, 3, dtype=np.float64
        )
        schedule = plan64.scatter_segments(1)
        plan32 = plan64.with_dtype(np.dtype(np.float32))
        assert plan32.scatter_segments(1) is schedule
