"""Tests for collate-once batching and the loader's composition memoisation."""

import numpy as np
import pytest

from repro.nn.data import GraphDataLoader, GraphSample, collate_graphs
from repro.utils.caching import LRUCache


def _make_samples(count, rng, with_aux=True, with_targets=True, num_classes=4):
    samples = []
    for i in range(count):
        num_nodes = int(rng.integers(2, 9))
        num_edges = int(rng.integers(1, 3 * num_nodes))
        samples.append(
            GraphSample(
                token_ids=rng.integers(0, 11, size=num_nodes),
                node_types=rng.integers(0, 3, size=num_nodes),
                edge_index=rng.integers(0, num_nodes, size=(2, num_edges)),
                edge_type=rng.integers(0, 3, size=num_edges),
                label=int(rng.integers(0, num_classes)),
                aux_features=rng.normal(size=2) if with_aux else None,
                target_distribution=rng.random(num_classes) + 0.1 if with_targets else None,
                region_id=f"region/{i}",
            )
        )
    return samples


def _assert_batches_identical(a, b):
    assert (a.token_ids == b.token_ids).all()
    assert (a.node_types == b.node_types).all()
    assert (a.edge_index == b.edge_index).all()
    assert (a.edge_type == b.edge_type).all()
    assert (a.batch == b.batch).all()
    assert (a.labels == b.labels).all()
    assert a.num_graphs == b.num_graphs
    assert a.region_ids == b.region_ids
    if a.aux_features is None:
        assert b.aux_features is None
    else:
        assert (a.aux_features == b.aux_features).all()
    if a.target_distributions is None:
        assert b.target_distributions is None
    else:
        assert (a.target_distributions == b.target_distributions).all()


class TestCollateOnce:
    @pytest.mark.parametrize("with_aux,with_targets", [(True, True), (False, False)])
    def test_batches_bit_identical_to_per_epoch_collation(self, with_aux, with_targets):
        samples = _make_samples(23, np.random.default_rng(0), with_aux, with_targets)
        cached = GraphDataLoader(
            samples, batch_size=5, shuffle=True, rng=np.random.default_rng(1)
        )
        reference = GraphDataLoader(
            samples, batch_size=5, shuffle=True, rng=np.random.default_rng(1),
            cache_collate=False,
        )
        for _ in range(3):  # same RNG stream => identical epochs
            for fast, slow in zip(cached, reference):
                _assert_batches_identical(fast, slow)

    def test_unshuffled_loader_memoises_batches(self):
        samples = _make_samples(10, np.random.default_rng(2))
        loader = GraphDataLoader(samples, batch_size=4, shuffle=False)
        first_epoch = list(loader)
        second_epoch = list(loader)
        for a, b in zip(first_epoch, second_epoch):
            assert a is b  # memoised composition => cached EdgePlan is reused

    def test_shuffled_loader_does_not_memoise(self):
        # Shuffled compositions essentially never repeat; memoising them
        # would pin batches (and their EdgePlans) for nothing.
        samples = _make_samples(12, np.random.default_rng(5))
        loader = GraphDataLoader(samples, batch_size=4, shuffle=True)
        for _ in range(2):
            list(loader)
        assert len(loader._batch_memo) == 0

    def test_shuffle_rng_stream_preserved(self):
        # The loader must consume the shuffle RNG exactly like the seed
        # implementation: one rng.shuffle(arange(n)) per epoch.
        samples = _make_samples(9, np.random.default_rng(3))
        loader = GraphDataLoader(samples, batch_size=4, shuffle=True, rng=np.random.default_rng(7))
        epochs = [[tuple(b.region_ids) for b in loader] for _ in range(2)]
        rng = np.random.default_rng(7)
        for epoch in range(2):
            order = np.arange(len(samples))
            rng.shuffle(order)
            expected = [
                tuple(samples[i].region_id for i in order[start : start + 4])
                for start in range(0, len(order), 4)
            ]
            assert epochs[epoch] == expected

    def test_inconsistent_aux_rejected(self):
        rng = np.random.default_rng(4)
        samples = _make_samples(3, rng, with_aux=True)
        samples[1].aux_features = None
        loader = GraphDataLoader(samples, batch_size=3, shuffle=False)
        with pytest.raises(ValueError):
            next(iter(loader))

    def test_collate_rejects_empty(self):
        with pytest.raises(ValueError):
            collate_graphs([])

    def test_invalid_shuffle_value_rejected(self):
        samples = _make_samples(4, np.random.default_rng(0))
        with pytest.raises(ValueError, match="shuffle must be"):
            GraphDataLoader(samples, batch_size=2, shuffle="samples")


class TestShuffleBatchesMode:
    """shuffle="batches": fixed compositions, permuted visit order, full
    cross-epoch EdgePlan reuse through the composition memo."""

    def test_compositions_fixed_and_order_permuted(self):
        samples = _make_samples(20, np.random.default_rng(6))
        loader = GraphDataLoader(
            samples, batch_size=4, shuffle="batches", rng=np.random.default_rng(9)
        )
        epochs = [[tuple(b.region_ids) for b in loader] for _ in range(4)]
        # Same composition set every epoch (only the visit order changes)...
        expected = {
            tuple(s.region_id for s in samples[start : start + 4])
            for start in range(0, len(samples), 4)
        }
        for epoch in epochs:
            assert set(epoch) == expected
        # ...and the order is actually shuffled across epochs.
        assert len({tuple(epoch) for epoch in epochs}) > 1

    def test_plan_cache_hits_across_epochs(self):
        samples = _make_samples(18, np.random.default_rng(7))
        loader = GraphDataLoader(
            samples, batch_size=6, shuffle="batches", rng=np.random.default_rng(3)
        )
        first = {batch.region_ids[0]: batch for batch in loader}
        plans = {key: batch.edge_plan(3) for key, batch in first.items()}
        assert loader._batch_memo.hits == 0  # first epoch only misses
        for _ in range(2):
            for batch in loader:
                # Memoised batch objects are returned again, so the EdgePlan
                # built in epoch 1 is reused verbatim.
                assert batch is first[batch.region_ids[0]]
                assert batch.edge_plan(3) is plans[batch.region_ids[0]]
        assert loader._batch_memo.hits == 2 * len(first)

    def test_batches_identical_to_unshuffled_compositions(self):
        samples = _make_samples(10, np.random.default_rng(8))
        batched = GraphDataLoader(
            samples, batch_size=4, shuffle="batches", rng=np.random.default_rng(1)
        )
        plain = {
            tuple(b.region_ids): b
            for b in GraphDataLoader(samples, batch_size=4, shuffle=False)
        }
        for batch in batched:
            _assert_batches_identical(batch, plain[tuple(batch.region_ids)])


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_hit_miss_counters_and_clear(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("x") is None
        cache.put("x", 42)
        assert cache.get("x") == 42
        assert cache.hits == 1 and cache.misses == 1
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)
