"""Tests for functional ops: softmax, losses, dropout, one-hot."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))
        assert np.all(probs >= 0)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_consistent(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )

    def test_handles_extreme_logits(self):
        x = Tensor(np.array([[1000.0, -1000.0, 0.0]]))
        probs = F.softmax(x).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 0.0, -1.0], [0.0, 3.0, 0.5]])
        targets = np.array([0, 1])
        loss = F.cross_entropy(Tensor(logits), targets).item()
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -np.mean(log_probs[np.arange(2), targets])
        assert loss == pytest.approx(expected)

    def test_gradient_is_probs_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        probs = F.softmax(Tensor(logits.data)).data
        expected = probs.copy()
        expected[0, 1] -= 1.0
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)

    def test_perfect_prediction_small_loss(self):
        logits = Tensor(np.array([[20.0, 0.0], [0.0, 20.0]]))
        assert F.cross_entropy(logits, np.array([0, 1])).item() < 1e-6


class TestSoftCrossEntropy:
    def test_equals_hard_when_target_is_onehot(self):
        logits = Tensor(np.random.default_rng(3).normal(size=(4, 6)))
        targets = np.array([1, 0, 5, 2])
        onehot = F.one_hot(targets, 6)
        soft = F.soft_cross_entropy(logits, onehot).item()
        hard = F.cross_entropy(logits, targets).item()
        assert soft == pytest.approx(hard)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.soft_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 4)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_training_zeroes_and_rescales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 50)))
        out = F.dropout(x, 0.25, training=True, rng=rng).data
        zero_fraction = np.mean(out == 0.0)
        assert 0.15 < zero_fraction < 0.35
        surviving = out[out != 0]
        np.testing.assert_allclose(surviving, 1.0 / 0.75)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=20))
    def test_rows_have_single_one(self, indices):
        out = F.one_hot(np.array(indices), 10)
        np.testing.assert_array_equal(out.sum(axis=1), np.ones(len(indices)))


class TestMseLoss:
    def test_value_and_gradient(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, Tensor(np.array([0.0, 0.0])))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])
