"""Tests for optimisers and loss modules."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, AdamW
from repro.nn.tensor import Tensor


def _quadratic_params(start=5.0):
    return Tensor(np.array([start]), requires_grad=True)


def _minimise(optimizer_factory, steps=200):
    """Minimise f(x) = (x - 3)^2 and return the final parameter value."""
    x = _quadratic_params()
    opt = optimizer_factory([x])
    for _ in range(steps):
        opt.zero_grad()
        loss = ((x - 3.0) ** 2.0).sum()
        loss.backward()
        opt.step()
    return float(x.data[0])


class TestOptimisers:
    def test_sgd_converges(self):
        assert _minimise(lambda p: SGD(p, lr=0.1)) == pytest.approx(3.0, abs=1e-3)

    def test_sgd_momentum_converges(self):
        assert _minimise(lambda p: SGD(p, lr=0.05, momentum=0.9)) == pytest.approx(3.0, abs=1e-2)

    def test_adam_converges(self):
        assert _minimise(lambda p: Adam(p, lr=0.1)) == pytest.approx(3.0, abs=1e-2)

    def test_adamw_amsgrad_converges(self):
        assert _minimise(lambda p: AdamW(p, lr=0.1, amsgrad=True, weight_decay=0.0)) == pytest.approx(
            3.0, abs=1e-2
        )

    def test_adamw_weight_decay_shrinks_weights(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        opt = AdamW([x], lr=0.0001, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (x * 0.0).sum().backward()  # zero gradient; only decay acts
            opt.step()
        assert abs(float(x.data[0])) < 10.0

    def test_adam_skips_parameters_without_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        opt = Adam([a, b], lr=0.1)
        (a * 2).sum().backward()
        opt.step()
        assert float(b.data[0]) == 2.0
        assert float(a.data[0]) != 1.0

    def test_invalid_hyperparameters(self):
        p = [_quadratic_params()]
        with pytest.raises(ValueError):
            SGD(p, lr=-1.0)
        with pytest.raises(ValueError):
            SGD(p, lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(p, lr=0.1, betas=(1.2, 0.9))
        with pytest.raises(ValueError):
            AdamW([], lr=0.1)

    def test_training_a_small_classifier(self):
        """End-to-end: a linear classifier separates two Gaussian blobs."""
        rng = np.random.default_rng(0)
        n = 120
        x = np.vstack([rng.normal(-2.0, 1.0, size=(n, 2)), rng.normal(2.0, 1.0, size=(n, 2))])
        y = np.concatenate([np.zeros(n, dtype=np.int64), np.ones(n, dtype=np.int64)])
        layer = Linear(2, 2, rng=rng)
        opt = AdamW(layer.parameters(), lr=0.05, amsgrad=True)
        loss_fn = CrossEntropyLoss()
        for _ in range(60):
            opt.zero_grad()
            loss = loss_fn(layer(Tensor(x)), y)
            loss.backward()
            opt.step()
        predictions = np.argmax(layer(Tensor(x)).data, axis=1)
        assert np.mean(predictions == y) > 0.95


class TestLossModules:
    def test_cross_entropy_validates_inputs(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros((2, 3))), np.array([0, 3]))
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros(3)), np.array([0]))

    def test_cross_entropy_matches_functional(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(4, 5)))
        targets = np.array([0, 1, 2, 3])
        assert CrossEntropyLoss()(logits, targets).item() == pytest.approx(
            F.cross_entropy(logits, targets).item()
        )

    def test_mse_shape_check(self):
        with pytest.raises(ValueError):
            MSELoss()(Tensor(np.zeros(3)), Tensor(np.zeros(4)))
