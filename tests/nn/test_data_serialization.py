"""Tests for graph batching, the data loader and weight serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.data import GraphDataLoader, GraphSample, collate_graphs
from repro.nn.layers import Linear
from repro.nn.serialization import filter_state_dict, load_state_dict, save_state_dict


def make_sample(num_nodes=4, label=0, aux=None, targets=None, region="r"):
    edge_index = np.array([[i for i in range(num_nodes - 1)], [i + 1 for i in range(num_nodes - 1)]])
    return GraphSample(
        token_ids=np.arange(num_nodes),
        node_types=np.zeros(num_nodes, dtype=np.int64),
        edge_index=edge_index,
        edge_type=np.zeros(num_nodes - 1, dtype=np.int64),
        label=label,
        aux_features=aux,
        target_distribution=targets,
        region_id=region,
    )


class TestGraphSampleValidation:
    def test_rejects_mismatched_token_and_types(self):
        with pytest.raises(ValueError):
            GraphSample(
                token_ids=np.arange(3),
                node_types=np.zeros(2, dtype=np.int64),
                edge_index=np.zeros((2, 0), dtype=np.int64),
                edge_type=np.zeros(0, dtype=np.int64),
            )

    def test_rejects_edge_to_missing_node(self):
        with pytest.raises(ValueError):
            GraphSample(
                token_ids=np.arange(2),
                node_types=np.zeros(2, dtype=np.int64),
                edge_index=np.array([[0], [5]]),
                edge_type=np.zeros(1, dtype=np.int64),
            )

    def test_normalises_target_distribution(self):
        sample = make_sample(targets=np.array([1.0, 1.0, 2.0]))
        assert sample.target_distribution.sum() == pytest.approx(1.0)

    def test_rejects_zero_mass_targets(self):
        with pytest.raises(ValueError):
            make_sample(targets=np.zeros(3))


class TestCollate:
    def test_offsets_node_indices(self):
        batch = collate_graphs([make_sample(3, label=1), make_sample(4, label=2)])
        assert batch.num_graphs == 2
        assert batch.num_nodes == 7
        np.testing.assert_array_equal(batch.labels, [1, 2])
        # Edges of the second graph reference nodes >= 3.
        assert batch.edge_index[:, 2:].min() >= 3
        np.testing.assert_array_equal(batch.batch, [0, 0, 0, 1, 1, 1, 1])

    def test_aux_features_stacked(self):
        batch = collate_graphs(
            [make_sample(aux=np.array([0.1, 0.2])), make_sample(aux=np.array([0.3, 0.4]))]
        )
        assert batch.aux_features.shape == (2, 2)

    def test_inconsistent_aux_rejected(self):
        with pytest.raises(ValueError):
            collate_graphs([make_sample(aux=np.array([1.0])), make_sample()])

    def test_target_distributions_stacked(self):
        batch = collate_graphs(
            [make_sample(targets=np.array([0.5, 0.5])), make_sample(targets=np.array([1.0, 0.0]))]
        )
        assert batch.target_distributions.shape == (2, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            collate_graphs([])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=2, max_value=8), min_size=1, max_size=6))
    def test_node_and_edge_counts_preserved(self, sizes):
        samples = [make_sample(n) for n in sizes]
        batch = collate_graphs(samples)
        assert batch.num_nodes == sum(sizes)
        assert batch.edge_index.shape[1] == sum(n - 1 for n in sizes)
        # Batch vector is sorted and covers every graph index.
        assert set(batch.batch.tolist()) == set(range(len(sizes)))


class TestDataLoader:
    def test_batches_cover_all_samples(self):
        samples = [make_sample(3, label=i) for i in range(10)]
        loader = GraphDataLoader(samples, batch_size=4, shuffle=False)
        assert len(loader) == 3
        seen = [label for batch in loader for label in batch.labels.tolist()]
        assert sorted(seen) == list(range(10))

    def test_shuffle_is_deterministic_given_rng(self):
        samples = [make_sample(3, label=i) for i in range(10)]
        loader_a = GraphDataLoader(samples, batch_size=3, shuffle=True, rng=np.random.default_rng(5))
        loader_b = GraphDataLoader(samples, batch_size=3, shuffle=True, rng=np.random.default_rng(5))
        order_a = [l for b in loader_a for l in b.labels.tolist()]
        order_b = [l for b in loader_b for l in b.labels.tolist()]
        assert order_a == order_b

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            GraphDataLoader([make_sample()], batch_size=0)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        path = str(tmp_path / "weights")
        save_state_dict(layer.state_dict(), path)
        loaded = load_state_dict(path)
        np.testing.assert_allclose(loaded["weight"], layer.weight.data)
        np.testing.assert_allclose(loaded["bias"], layer.bias.data)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(str(tmp_path / "missing"))

    def test_filter_state_dict(self):
        state = {"gnn.a": np.zeros(1), "gnn.b": np.ones(1), "head.c": np.ones(1)}
        only_gnn = filter_state_dict(state, include_prefixes=("gnn.",))
        assert set(only_gnn) == {"gnn.a", "gnn.b"}
        no_gnn = filter_state_dict(state, exclude_prefixes=("gnn.",))
        assert set(no_gnn) == {"head.c"}
