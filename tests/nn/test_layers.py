"""Tests for the module system and concrete layers."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Embedding, LeakyReLU, Linear, Module, ModuleList, ReLU, Sequential
from repro.nn.tensor import Tensor


def _rng():
    return np.random.default_rng(0)


class TestModuleSystem:
    def test_parameter_registration_recursive(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 8, rng=_rng())
                self.fc2 = Linear(8, 2, rng=_rng())

            def forward(self, x):
                return self.fc2(self.fc1(x))

        net = Net()
        names = dict(net.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        net = Sequential(Linear(3, 5, rng=_rng()), ReLU(), Linear(5, 2, rng=_rng()))
        state = net.state_dict()
        other = Sequential(Linear(3, 5, rng=np.random.default_rng(99)), ReLU(), Linear(5, 2, rng=np.random.default_rng(98)))
        other.load_state_dict(state)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        np.testing.assert_allclose(net(x).data, other(x).data)

    def test_load_state_dict_strict_mismatch(self):
        net = Linear(3, 2, rng=_rng())
        with pytest.raises(KeyError):
            net.load_state_dict({"weight": net.weight.data}, strict=True)

    def test_load_state_dict_shape_mismatch(self):
        net = Linear(3, 2, rng=_rng())
        bad = {"weight": np.zeros((2, 2)), "bias": np.zeros(2)}
        with pytest.raises(ValueError):
            net.load_state_dict(bad)

    def test_load_state_dict_non_strict_ignores_extra(self):
        net = Linear(3, 2, rng=_rng())
        net.load_state_dict({"weight": np.zeros((3, 2)), "unknown": np.zeros(1)}, strict=False)
        np.testing.assert_array_equal(net.weight.data, np.zeros((3, 2)))

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2, rng=_rng()), Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.children())
        net.train()
        assert all(m.training for m in net.children())

    def test_zero_grad(self):
        net = Linear(2, 2, rng=_rng())
        net(Tensor(np.ones((1, 2)))).sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None


class TestLinear:
    def test_forward_shape_and_affine(self):
        layer = Linear(4, 3, rng=_rng())
        x = np.random.default_rng(2).normal(size=(5, 4))
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=_rng())
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gradients_flow(self):
        layer = Linear(3, 2, rng=_rng())
        out = layer(Tensor(np.ones((4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 4.0))


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 6, rng=_rng())
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 6)
        np.testing.assert_array_equal(out.data[1], out.data[2])

    def test_out_of_range(self):
        emb = Embedding(4, 2, rng=_rng())
        with pytest.raises(IndexError):
            emb(np.array([4]))

    def test_gradient_accumulates_for_repeated_ids(self):
        emb = Embedding(5, 3, rng=_rng())
        emb(np.array([2, 2, 1])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], np.full(3, 2.0))
        np.testing.assert_allclose(emb.weight.grad[1], np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))


class TestActivationsAndDropout:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_leaky_relu_module(self):
        out = LeakyReLU(0.1)(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [-0.1, 2.0])

    def test_dropout_respects_mode(self):
        layer = Dropout(0.9, rng=_rng())
        x = Tensor(np.ones((100, 10)))
        layer.eval()
        np.testing.assert_array_equal(layer(x).data, x.data)
        layer.train()
        assert np.mean(layer(x).data == 0.0) > 0.5


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = Sequential(Linear(2, 2, rng=_rng()), ReLU())
        assert len(seq) == 2
        x = Tensor(np.array([[1.0, -1.0]]))
        assert np.all(seq(x).data >= 0)

    def test_module_list_indexing_and_iteration(self):
        layers = ModuleList(Linear(2, 2, rng=_rng()) for _ in range(3))
        assert len(layers) == 3
        assert isinstance(layers[1], Linear)
        assert sum(1 for _ in layers) == 3
        # Parameters of children are discovered through the container.
        assert len(list(layers.parameters())) == 6

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2, rng=_rng())])()
