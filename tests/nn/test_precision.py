"""Tests for the switchable precision policy (``repro.nn.precision``).

Covers the policy API (defaults, process/context scoping, validation), the
no-silent-promotion invariant in strict ``dtype_checks`` mode, float32
forward/backward/optimizer equivalence against float64 within documented
tolerances, and dtype preservation through state-dict round trips.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn import precision
from repro.nn.data import GraphSample, build_edge_plan, collate_graphs
from repro.nn.layers import Linear
from repro.nn.optim import AdamW, SGD
from repro.nn.pooling import global_max_pool, global_mean_pool
from repro.nn.rgcn import RGCNConv
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def _restore_policy():
    """Every test starts and ends on the float64 default policy."""
    previous = precision.get_default_dtype()
    yield
    precision.set_default_dtype(previous)


def _graph_inputs(rng, num_nodes=60, num_edges=200, relations=3, num_graphs=4):
    edge_index = rng.integers(0, num_nodes, size=(2, num_edges))
    edge_type = rng.integers(0, relations, size=num_edges)
    batch = np.sort(rng.integers(0, num_graphs, size=num_nodes))
    return edge_index, edge_type, batch


class TestPolicyApi:
    def test_default_is_float64(self):
        assert precision.get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_set_default_dtype_returns_previous(self):
        previous = precision.set_default_dtype("float32")
        assert previous == np.float64
        assert Tensor([1.0]).data.dtype == np.float32

    def test_autocast_scopes_and_nests(self):
        with precision.autocast("float32"):
            assert precision.get_default_dtype() == np.float32
            with precision.autocast("float64"):
                assert Tensor([1.0]).data.dtype == np.float64
            assert Tensor([1.0]).data.dtype == np.float32
        assert precision.get_default_dtype() == np.float64

    def test_autocast_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with precision.autocast("float32"):
                raise RuntimeError("boom")
        assert precision.get_default_dtype() == np.float64

    @pytest.mark.parametrize("bad", ["float16", np.int64, "complex128"])
    def test_unsupported_dtypes_rejected(self, bad):
        with pytest.raises(ValueError, match="unsupported dtype"):
            precision.resolve_dtype(bad)

    def test_resolve_accepts_all_spellings(self):
        for spelling in ("float32", np.float32, np.dtype(np.float32)):
            assert precision.resolve_dtype(spelling) == np.float32

    def test_explicit_dtype_overrides_policy(self):
        with precision.autocast("float32"):
            t = Tensor([1.0], dtype=np.float64)
        assert t.data.dtype == np.float64


class TestOperandFollowing:
    """Ops keep their operands' dtype regardless of the ambient policy."""

    def test_scalar_arithmetic_keeps_float32(self):
        x = Tensor(np.ones(4, dtype=np.float32), dtype=np.float32)
        for result in (x + 1.0, x * 2.0, x / 3.0, 1.0 - x, 2.0 / x, x**2):
            assert result.data.dtype == np.float32

    def test_elementwise_and_reductions_keep_float32(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)), dtype=np.float32)
        for result in (
            x.exp(), (x * x + 0.1).log(), x.tanh(), x.sigmoid(), x.relu(),
            x.leaky_relu(0.1), x.clip(-1.0, 1.0), x.sum(axis=0), x.mean(),
            x.max(axis=1), x.reshape(4, 3), x.transpose(), x[1:],
        ):
            assert result.data.dtype == np.float32

    def test_softmax_losses_follow_logits(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 3)), dtype=np.float32)
        targets = np.array([0, 1, 2, 0, 1])
        distribution = np.full((5, 3), 1.0 / 3.0)
        assert F.softmax(logits).data.dtype == np.float32
        assert F.log_softmax(logits).data.dtype == np.float32
        assert F.cross_entropy(logits, targets).data.dtype == np.float32
        assert F.soft_cross_entropy(logits, distribution).data.dtype == np.float32

    def test_backward_stays_float32(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True,
                   dtype=np.float32)
        loss = (x.relu() * 2.0).sum()
        loss.backward()
        assert x.grad.dtype == np.float32

    def test_scatter_gather_keep_float32(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(10, 4)), requires_grad=True, dtype=np.float32)
        index = rng.integers(0, 10, size=25)
        gathered = x.gather_rows(index)
        assert gathered.data.dtype == np.float32
        summed = gathered.scatter_sum(index, 10)
        assert summed.data.dtype == np.float32
        summed.sum().backward()
        assert x.grad.dtype == np.float32

    def test_pooling_keeps_float32(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(12, 5)), dtype=np.float32)
        batch = np.sort(rng.integers(0, 3, size=12))
        assert global_mean_pool(x, batch, 3).data.dtype == np.float32
        assert global_max_pool(x, batch, 3).data.dtype == np.float32


class TestDtypeChecks:
    def test_planted_promotion_is_caught(self):
        with precision.autocast("float32"), precision.dtype_checks():
            with pytest.raises(precision.DtypePromotionError, match="float64"):
                Tensor(np.zeros(3), dtype=np.float64)

    def test_mixed_dtype_grad_is_caught(self):
        # backward() casts its seed gradient, so exercise the accumulation
        # hook the internal closures go through with a planted f64 gradient.
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True, dtype=np.float32)
        with precision.dtype_checks():
            with pytest.raises(precision.DtypePromotionError, match="gradient"):
                x._accumulate(np.ones(3, dtype=np.float64))

    def test_full_float32_step_is_promotion_free(self):
        rng = np.random.default_rng(0)
        edge_index, edge_type, batch = _graph_inputs(rng)
        plan64_inputs = rng.normal(size=(60, 8))
        with precision.autocast("float32"), precision.dtype_checks():
            conv = RGCNConv(8, 8, 3, rng=np.random.default_rng(1))
            head = Linear(8, 4, rng=np.random.default_rng(2))
            plan = build_edge_plan(edge_index, edge_type, batch, 60, 4, 3)
            x = Tensor(plan64_inputs, requires_grad=True)
            hidden = conv(x, edge_index, edge_type, plan=plan).leaky_relu()
            pooled = global_mean_pool(
                hidden, batch, 4,
                node_counts=plan.graph_node_counts,
                flat_index=plan.pool_flat(8),
            )
            loss = F.cross_entropy(head(pooled), np.array([0, 1, 2, 3]))
            loss.backward()
            optimizer = AdamW(conv.parameters() + head.parameters(), lr=1e-3)
            optimizer.step()
        for param in conv.parameters() + head.parameters():
            assert param.data.dtype == np.float32

    def test_checks_disabled_outside_scope(self):
        with precision.autocast("float32"):
            # No dtype_checks: a float64 tensor is allowed (only discouraged).
            assert Tensor(np.zeros(2), dtype=np.float64).data.dtype == np.float64


class TestFloat32Equivalence:
    """float32 results agree with float64 within documented tolerances."""

    RTOL = 5e-5
    ATOL = 1e-5

    def _twin_convs(self):
        convs = {}
        for name in ("float64", "float32"):
            with precision.autocast(name):
                convs[name] = RGCNConv(8, 8, 3, rng=np.random.default_rng(7))
        return convs["float64"], convs["float32"]

    def test_initializers_share_the_random_stream(self):
        conv64, conv32 = self._twin_convs()
        for p64, p32 in zip(conv64.parameters(), conv32.parameters()):
            assert p32.data.dtype == np.float32
            assert np.array_equal(p64.data.astype(np.float32), p32.data)

    def test_forward_and_backward_agree(self):
        rng = np.random.default_rng(3)
        edge_index, edge_type, batch = _graph_inputs(rng)
        features = rng.normal(size=(60, 8))
        conv64, conv32 = self._twin_convs()

        x64 = Tensor(features, requires_grad=True, dtype=np.float64)
        out64 = conv64(x64, edge_index, edge_type)
        out64.sum().backward()

        with precision.autocast("float32"):
            x32 = Tensor(features, requires_grad=True)
            out32 = conv32(x32, edge_index, edge_type)
            out32.sum().backward()

        np.testing.assert_allclose(
            out32.data, out64.data.astype(np.float32), rtol=self.RTOL, atol=self.ATOL
        )
        np.testing.assert_allclose(
            x32.grad, x64.grad.astype(np.float32), rtol=self.RTOL, atol=self.ATOL
        )

    def test_planned_and_naive_float32_agree(self):
        rng = np.random.default_rng(5)
        edge_index, edge_type, batch = _graph_inputs(rng)
        features = rng.normal(size=(60, 8))
        _, conv32 = self._twin_convs()
        with precision.autocast("float32"):
            plan = build_edge_plan(edge_index, edge_type, batch, 60, 4, 3)
            x = Tensor(features)
            planned = conv32(x, edge_index, edge_type, plan=plan)
            naive = conv32(x, edge_index, edge_type)
        np.testing.assert_allclose(planned.data, naive.data, rtol=self.RTOL, atol=self.ATOL)

    def test_optimizer_steps_track_float64(self):
        def run(dtype):
            with precision.autocast(dtype):
                layer = Linear(6, 3, rng=np.random.default_rng(11))
                optimizer = AdamW(layer.parameters(), lr=1e-2)
                data = np.random.default_rng(12).normal(size=(9, 6))
                for _ in range(5):
                    optimizer.zero_grad()
                    loss = (layer(Tensor(data)) ** 2).mean()
                    loss.backward()
                    optimizer.step()
            return layer.weight.data

    # one rounding per step accumulates: keep tolerances loose but meaningful
        w64 = run("float64")
        w32 = run("float32")
        assert w32.dtype == np.float32
        np.testing.assert_allclose(w32, w64.astype(np.float32), rtol=5e-4, atol=5e-4)

    def test_sgd_momentum_state_keeps_float32(self):
        with precision.autocast("float32"):
            layer = Linear(4, 2, rng=np.random.default_rng(0))
            optimizer = SGD(layer.parameters(), lr=1e-2, momentum=0.9)
            for _ in range(2):
                optimizer.zero_grad()
                (layer(Tensor(np.ones((3, 4)))) ** 2).mean().backward()
                optimizer.step()
        assert all(v.dtype == np.float32 for v in optimizer._velocity.values())
        assert layer.weight.data.dtype == np.float32

    def test_astype_mid_training_recasts_optimizer_state(self):
        # Moments created at float64 must follow a Module.astype("float32")
        # instead of silently promoting the parameters back to float64.
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        optimizer = AdamW(layer.parameters(), lr=1e-3, amsgrad=True)
        data = np.ones((3, 4))

        def step():
            optimizer.zero_grad()
            (layer(Tensor(data, dtype=layer.dtype)) ** 2).mean().backward()
            optimizer.step()

        step()  # float64 moments exist now
        layer.astype("float32")
        step()
        assert layer.weight.data.dtype == np.float32
        for store in (optimizer._m, optimizer._v, optimizer._vmax):
            assert all(v.dtype == np.float32 for v in store.values())

    def test_sgd_velocity_follows_recast(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        optimizer = SGD(layer.parameters(), lr=1e-2, momentum=0.9)

        def step():
            optimizer.zero_grad()
            (layer(Tensor(np.ones((3, 4)), dtype=layer.dtype)) ** 2).mean().backward()
            optimizer.step()

        step()
        layer.astype("float32")
        step()
        assert layer.weight.data.dtype == np.float32
        assert all(v.dtype == np.float32 for v in optimizer._velocity.values())

    def test_adam_moments_keep_float32(self):
        with precision.autocast("float32"):
            layer = Linear(4, 2, rng=np.random.default_rng(0))
            optimizer = AdamW(layer.parameters(), lr=1e-3, amsgrad=True)
            optimizer.zero_grad()
            (layer(Tensor(np.ones((3, 4)))) ** 2).mean().backward()
            optimizer.step()
        for store in (optimizer._m, optimizer._v, optimizer._vmax):
            assert all(v.dtype == np.float32 for v in store.values())


class TestEdgePlanDtypes:
    def test_plan_norms_follow_requested_dtype(self):
        rng = np.random.default_rng(0)
        edge_index, edge_type, batch = _graph_inputs(rng)
        plan32 = build_edge_plan(edge_index, edge_type, batch, 60, 4, 3, dtype="float32")
        plan64 = build_edge_plan(edge_index, edge_type, batch, 60, 4, 3)
        assert plan32.dtype == np.float32
        assert plan64.dtype == np.float64
        for norm in plan32.relation_norm:
            assert norm.dtype == np.float32
        for n32, n64 in zip(plan32.relation_norm, plan64.relation_norm):
            assert np.array_equal(n64.astype(np.float32), n32)
        assert plan32.graph_node_counts.dtype == np.float32
        assert plan64.graph_node_counts.dtype == np.float64

    def test_float32_plan_derives_from_float64_sibling(self):
        rng = np.random.default_rng(3)
        samples = [
            GraphSample(
                token_ids=rng.integers(0, 5, size=6),
                node_types=rng.integers(0, 3, size=6),
                edge_index=rng.integers(0, 6, size=(2, 9)),
                edge_type=rng.integers(0, 3, size=9),
            )
            for _ in range(2)
        ]
        batch = collate_graphs(samples)
        plan64 = batch.edge_plan(3)
        plan64.scatter_flat(0, 8)  # warm a flat bin before deriving
        plan32 = batch.edge_plan(3, dtype="float32")
        # Integer schedules and the flat scatter-bin cache are shared...
        assert all(a is b for a, b in zip(plan32.relation_src, plan64.relation_src))
        assert plan32._flat_cache is plan64._flat_cache
        # ...and the narrowed norms are the exactly rounded float64 ones.
        for n32, n64 in zip(plan32.relation_norm, plan64.relation_norm):
            assert np.array_equal(n64.astype(np.float32), n32)
        # Upcasting a float32 plan would break seed bit-identity: rejected.
        with pytest.raises(ValueError, match="cannot derive"):
            plan32.with_dtype(np.dtype(np.float64))

    def test_batch_caches_one_plan_per_dtype(self):
        rng = np.random.default_rng(1)
        samples = [
            GraphSample(
                token_ids=rng.integers(0, 5, size=4),
                node_types=rng.integers(0, 3, size=4),
                edge_index=rng.integers(0, 4, size=(2, 6)),
                edge_type=rng.integers(0, 3, size=6),
            )
            for _ in range(3)
        ]
        batch = collate_graphs(samples)
        plan64 = batch.edge_plan(3)
        plan32 = batch.edge_plan(3, dtype="float32")
        assert plan64 is batch.edge_plan(3)
        assert plan32 is batch.edge_plan(3, dtype=np.float32)
        assert plan64 is not plan32

    def test_mismatched_plan_dtype_is_rejected(self):
        rng = np.random.default_rng(2)
        edge_index, edge_type, batch = _graph_inputs(rng, num_nodes=20, num_edges=40)
        plan64 = build_edge_plan(edge_index, edge_type, batch, 20, 4, 3)
        with precision.autocast("float32"):
            conv = RGCNConv(4, 4, 3, rng=np.random.default_rng(0))
            x = Tensor(rng.normal(size=(20, 4)))
        with pytest.raises(ValueError, match="float64 normalisations"):
            conv(x, edge_index, edge_type, plan=plan64)


class TestStateDictDtypes:
    def test_npz_round_trip_preserves_dtype(self, tmp_path):
        with precision.autocast("float32"):
            layer = Linear(5, 3, rng=np.random.default_rng(0))
        path = str(tmp_path / "weights")
        save_state_dict(layer.state_dict(), path)
        restored = load_state_dict(path)
        for name, value in layer.state_dict().items():
            assert restored[name].dtype == np.float32
            assert np.array_equal(restored[name], value)

    def test_load_can_cast_on_read(self, tmp_path):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        path = str(tmp_path / "weights")
        save_state_dict(layer.state_dict(), path)
        restored = load_state_dict(path, dtype="float32")
        assert all(v.dtype == np.float32 for v in restored.values())

    def test_module_load_casts_to_parameter_dtype(self):
        layer64 = Linear(5, 3, rng=np.random.default_rng(0))
        with precision.autocast("float32"):
            layer32 = Linear(5, 3, rng=np.random.default_rng(1))
        layer32.load_state_dict(layer64.state_dict())
        assert layer32.weight.data.dtype == np.float32
        assert np.array_equal(
            layer32.weight.data, layer64.weight.data.astype(np.float32)
        )

    def test_module_astype_round_trip(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        original = layer.weight.data.copy()
        layer.astype("float32")
        assert layer.dtype == np.float32
        layer.astype("float64")
        # one float64->float32 rounding survives, but dtype round-trips
        assert layer.weight.data.dtype == np.float64
        np.testing.assert_allclose(layer.weight.data, original, rtol=1e-6, atol=1e-7)
