"""The zero-allocation serving hot path (prealloc backend + arena plan).

The contract under test: under the ``"prealloc"`` scatter backend a warm
``predict`` through the compiled :class:`InferenceProgram` allocates no
numpy array — every intermediate lands in the memory plan's arena slabs or
a head workspace — while each backend stays bit-identical to ``np.add.at``
at float64 (and ``"prealloc"`` at float32 too, being strictly
index-ordered).

Allocation is asserted through the tracemalloc *peak* of a single warm
call: transient buffers are freed before any snapshot could see them, so
the peak is the only sound external probe.  The warm path's residual is a
few hundred bytes of Python view objects per kernel step; one whole-array
temporary at suite-region scale is tens of KB, so the ceiling separates
the two by an order of magnitude (a canary test keeps the probe honest).
A numpy data-domain snapshot diff additionally guards against buffers
*retained* across calls (leaks).
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.benchsuite.codegen import generate_application_module, region_function_name
from repro.benchsuite.registry import regions_by_application
from repro.core.model import ModelConfig, PnPModel
from repro.graphs.encoder import GraphEncoder
from repro.graphs.programl import build_flow_graph
from repro.graphs.vocabulary import build_default_vocabulary
from repro.ir.outline import extract_outlined_regions
from repro.nn import _scatter
from repro.nn._scatter import (
    ScatterWorkspace,
    build_segment_schedule,
    scatter_rows_sum,
    scatter_rows_sum_into,
)
from repro.nn.data import collate_graphs

NUM_CLASSES = 7

#: Tracemalloc-peak ceiling for one warm single-region predict: well above
#: the ~5 KB Python view-object churn, well below the smallest whole-array
#: temporary a reintroduced numpy fallback would buffer at region scale.
PEAK_CEILING_BYTES = 16_384

#: The batched (all-regions) forward loops over ~68 pooling segments and
#: more relation blocks, so its view churn is larger; still an order of
#: magnitude under the smallest batched-array temporary (~500 KB).
BATCHED_PEAK_CEILING_BYTES = 65_536


@pytest.fixture(scope="module")
def vocabulary():
    return build_default_vocabulary()


@pytest.fixture(scope="module")
def suite_samples(vocabulary):
    """One structural graph sample per benchsuite region (all 68 shapes)."""
    encoder = GraphEncoder(vocabulary)
    rng = np.random.default_rng(0)
    samples = []
    for app, regions in regions_by_application().items():
        module = generate_application_module(app, list(regions), seed=0)
        outlined = extract_outlined_regions(module)
        for region in regions:
            graph = build_flow_graph(
                outlined[region_function_name(region)], name=region.region_id
            )
            samples.append(
                encoder.encode(
                    graph,
                    label=-1,
                    aux_features=rng.random(1),
                    region_id=region.region_id,
                )
            )
    return samples


def _model(vocabulary, dtype: str, seed: int = 0) -> PnPModel:
    config = ModelConfig(
        vocabulary_size=len(vocabulary),
        num_classes=NUM_CLASSES,
        aux_dim=1,
        seed=seed,
        dtype=dtype,
    )
    model = PnPModel(config)
    model.eval()
    return model


def _warm_predict_peak_bytes(program, batch) -> int:
    """Tracemalloc peak over one warm ``predict`` (all domains)."""
    gc.collect()
    tracemalloc.start()
    program.predict(batch)  # warm under tracing
    gc.collect()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    program.predict(batch)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak - before


def _numpy_blocks_retained(program, batches, reps: int = 3) -> int:
    """Net numpy data-domain blocks retained across warm predicts."""
    for batch in batches:
        program.predict(batch)
    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    for _ in range(reps):
        for batch in batches:
            program.predict(batch)
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()
    domain = (tracemalloc.DomainFilter(True, np.lib.tracemalloc_domain),)
    stats = snapshot.filter_traces(domain).compare_to(
        base.filter_traces(domain), "lineno"
    )
    return sum(max(stat.count_diff, 0) for stat in stats)


class TestZeroAllocationWarmPredict:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_every_region_shape_stays_under_peak_ceiling(
        self, vocabulary, suite_samples, dtype
    ):
        model = _model(vocabulary, dtype)
        program = model.compile_inference()
        with _scatter.scatter_backend("prealloc"):
            for sample in suite_samples:
                batch = collate_graphs([sample])
                peak = _warm_predict_peak_bytes(program, batch)
                assert peak < PEAK_CEILING_BYTES, (
                    f"{sample.region_id}: warm predict peaked at {peak} bytes"
                )

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_batched_predict_stays_under_peak_ceiling(
        self, vocabulary, suite_samples, dtype
    ):
        model = _model(vocabulary, dtype)
        program = model.compile_inference()
        batch = collate_graphs(suite_samples)
        with _scatter.scatter_backend("prealloc"):
            peak = _warm_predict_peak_bytes(program, batch)
        assert peak < BATCHED_PEAK_CEILING_BYTES

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_no_numpy_blocks_retained(self, vocabulary, suite_samples, dtype):
        model = _model(vocabulary, dtype)
        program = model.compile_inference()
        batches = [collate_graphs([s]) for s in suite_samples[:8]]
        batches.append(collate_graphs(suite_samples))
        with _scatter.scatter_backend("prealloc"):
            assert _numpy_blocks_retained(program, batches) == 0

    def test_peak_probe_detects_allocating_backend(self, vocabulary, suite_samples):
        """Canary: the same probe sees the allocating backend's temporaries."""
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        biggest = max(
            suite_samples, key=lambda s: collate_graphs([s]).node_types.shape[0]
        )
        batch = collate_graphs([biggest])
        with _scatter.scatter_backend("prealloc"):
            lean = _warm_predict_peak_bytes(program, batch)
        with _scatter.scatter_backend("bincount"):
            fat = _warm_predict_peak_bytes(program, batch)
        assert fat > 4 * max(lean, 1)
        assert fat > PEAK_CEILING_BYTES  # a real temporary trips the ceiling


def _random_cases(rng):
    # (num_rows, dim_size, channels) spanning both sub-kernels: many short
    # segments (rounds path), few long segments (reduce path), singletons,
    # a single bucket, and the empty scatter.
    shapes = [
        (0, 5, 4),
        (1, 1, 3),
        (7, 3, 8),
        (100, 100, 16),
        (257, 1, 32),
        (1000, 7, 8),
        (5000, 4000, 32),
        (300, 2, 64),
    ]
    for num_rows, dim_size, channels in shapes:
        if num_rows:
            index = rng.integers(0, dim_size, size=num_rows).astype(np.intp)
        else:
            index = np.empty(0, dtype=np.intp)
        yield index, dim_size, channels


class TestBackendEquivalence:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("presorted", [False, True])
    def test_scatter_into_bitwise_matches_add_at(self, dtype, presorted):
        rng = np.random.default_rng(0)
        for index, dim_size, channels in _random_cases(rng):
            if presorted:
                index = np.sort(index)
            data = rng.standard_normal((index.size, channels)).astype(dtype)
            segments = build_segment_schedule(index)
            reference = np.zeros((dim_size, channels), dtype=dtype)
            np.add.at(reference, index, data)
            out = np.full((dim_size, channels), np.nan, dtype=dtype)
            result = scatter_rows_sum_into(out, data, index, segments=segments)
            assert result is out
            assert out.tobytes() == reference.tobytes()

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_caller_workspace_matches_auto_workspace(self, dtype):
        rng = np.random.default_rng(1)
        index = rng.integers(0, 50, size=400).astype(np.intp)
        data = rng.standard_normal((400, 16)).astype(dtype)
        segments = build_segment_schedule(index)
        auto = np.empty((50, 16), dtype=dtype)
        scatter_rows_sum_into(auto, data, index, segments=segments)
        workspace = ScatterWorkspace.for_rounds(segments.rounds(), 16, dtype)
        owned = np.empty((50, 16), dtype=dtype)
        scatter_rows_sum_into(owned, data, index, segments=segments, workspace=workspace)
        assert owned.tobytes() == auto.tobytes()

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_allocating_front_door_matches_out_parameter_form(self, dtype):
        rng = np.random.default_rng(2)
        index = rng.integers(0, 30, size=300).astype(np.intp)
        data = rng.standard_normal((300, 8)).astype(dtype)
        segments = build_segment_schedule(index)
        out = np.empty((30, 8), dtype=dtype)
        scatter_rows_sum_into(out, data, index, segments=segments)
        with _scatter.scatter_backend("prealloc"):
            allocated = scatter_rows_sum(data, index, 30, segments=segments)
        assert allocated.tobytes() == out.tobytes()

    def test_float64_bitwise_identical_across_all_backends(self):
        rng = np.random.default_rng(3)
        index = rng.integers(0, 80, size=600).astype(np.intp)
        data = rng.standard_normal((600, 12))
        segments = build_segment_schedule(index)
        results = {}
        for backend in _scatter.SCATTER_BACKENDS:
            with _scatter.scatter_backend(backend):
                results[backend] = scatter_rows_sum(
                    data, index, 80, segments=segments
                ).tobytes()
        assert len(set(results.values())) == 1

    def test_non_float_and_1d_fall_back_to_add_at(self):
        rng = np.random.default_rng(4)
        index = rng.integers(0, 10, size=100).astype(np.intp)
        ints = rng.integers(0, 100, size=(100, 4)).astype(np.int64)
        segments = build_segment_schedule(index)
        reference = np.zeros((10, 4), dtype=np.int64)
        np.add.at(reference, index, ints)
        out = np.empty((10, 4), dtype=np.int64)
        scatter_rows_sum_into(out, ints, index, segments=segments)
        assert (out == reference).all()
        flat = rng.standard_normal(100)
        ref1d = np.zeros(10)
        np.add.at(ref1d, index, flat)
        out1d = np.empty(10)
        scatter_rows_sum_into(out1d, flat, index)
        assert out1d.tobytes() == ref1d.tobytes()


class TestSchedules:
    def test_workspace_shape_has_pad_row(self):
        index = np.array([0, 0, 1, 2, 2, 2], dtype=np.intp)
        rounds = build_segment_schedule(index).rounds()
        workspace = ScatterWorkspace.for_rounds(rounds, 5, np.float32)
        assert workspace.gathered.shape == (rounds.num_rows + 1, 5)
        assert workspace.nbytes == workspace.gathered.nbytes

    def test_take_index_is_memoised_per_dim_size(self):
        index = np.array([3, 1, 1, 4], dtype=np.intp)
        rounds = build_segment_schedule(index).rounds()
        first = rounds.take_index(6)
        assert first is rounds.take_index(6)
        assert first is not rounds.take_index(7)
        # Buckets point at their segment slot; missing rows at the pad row.
        assert first[1] != rounds.num_segments
        assert first[0] == rounds.num_segments

    def test_presorted_flag(self):
        sorted_index = np.array([0, 0, 1, 3], dtype=np.intp)
        shuffled = np.array([3, 0, 1, 0], dtype=np.intp)
        assert build_segment_schedule(sorted_index).presorted
        assert not build_segment_schedule(shuffled).presorted
        assert build_segment_schedule(np.empty(0, dtype=np.intp)).presorted


class TestMemoryPlan:
    def test_arena_packs_buffers_into_fewer_slabs(self, vocabulary, suite_samples):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        batch = collate_graphs(suite_samples[:4])  # keep the plan alive:
        program.predict(batch)  # _bound weak-keys on the batch's EdgePlan
        stats = program.buffer_stats()
        assert stats["bound_plans"] == 1
        assert 0 < stats["arena_slabs"] < stats["arena_buffers"]
        assert stats["arena_bytes"] > 0
        assert stats["head_workspaces"] >= 1
        assert stats["head_bytes"] > 0

    def test_clear_buffers_sheds_arenas_and_keeps_results(
        self, vocabulary, suite_samples
    ):
        model = _model(vocabulary, "float64")
        program = model.compile_inference()
        batch = collate_graphs([suite_samples[0]])
        before = np.array(program.forward_logits(batch))
        program.clear_buffers()
        stats = program.buffer_stats()
        assert stats["bound_plans"] == 0
        assert stats["arena_bytes"] == 0
        assert stats["head_workspaces"] == 0
        assert np.array_equal(np.array(program.forward_logits(batch)), before)


class TestBackendSelection:
    def test_auto_adopts_cached_calibration(self, monkeypatch):
        monkeypatch.setattr(_scatter, "_AUTO_BACKEND", "prealloc")
        previous = _scatter.set_scatter_backend("auto")
        try:
            assert _scatter.scatter_backend_name() == "prealloc"
        finally:
            _scatter.set_scatter_backend(previous)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="set_scatter_backend"):
            _scatter.set_scatter_backend("laminated")

    def test_legacy_reduceat_toggle_maps_onto_backend(self):
        original = _scatter.scatter_backend_name()
        try:
            _scatter.set_scatter_backend("bincount")
            with pytest.deprecated_call(match="set_scatter_backend"):
                assert not _scatter.set_reduceat_scatter(True)
            assert _scatter.scatter_backend_name() == "reduceat"
            assert _scatter.reduceat_scatter_enabled()
            with pytest.deprecated_call():
                # previous was reduceat
                assert _scatter.set_reduceat_scatter(False)
            assert _scatter.scatter_backend_name() == "bincount"
            assert not _scatter.reduceat_scatter_enabled()
        finally:
            _scatter.set_scatter_backend(original)

    def test_segments_active_matrix(self):
        with _scatter.scatter_backend("bincount"):
            assert not _scatter.segments_active(np.float64)
            assert not _scatter.segments_active(np.float32)
        with _scatter.scatter_backend("reduceat"):
            assert not _scatter.segments_active(np.float64)
            assert _scatter.segments_active(np.float32)
        with _scatter.scatter_backend("prealloc"):
            assert _scatter.segments_active(np.float64)
            assert _scatter.segments_active(np.float32)
            assert not _scatter.segments_active(np.int64)
