"""Tests for the RGCN convolution and graph pooling."""

import numpy as np
import pytest

from repro.nn.pooling import global_max_pool, global_mean_pool, global_sum_pool
from repro.nn.rgcn import RGCNConv
from repro.nn.tensor import Tensor


def _rng():
    return np.random.default_rng(0)


def _simple_graph():
    # 4 nodes, two relations: 0 -> 1 -> 2 (relation 0), 3 -> 1 (relation 1).
    edge_index = np.array([[0, 1, 3], [1, 2, 1]])
    edge_type = np.array([0, 0, 1])
    return edge_index, edge_type


class TestRGCNConv:
    def test_output_shape(self):
        conv = RGCNConv(5, 7, num_relations=3, rng=_rng())
        x = Tensor(np.random.default_rng(1).normal(size=(4, 5)))
        edge_index, edge_type = _simple_graph()
        out = conv(x, edge_index, edge_type)
        assert out.shape == (4, 7)

    def test_matches_manual_computation(self):
        conv = RGCNConv(3, 2, num_relations=2, bias=False, rng=_rng())
        x_data = np.random.default_rng(2).normal(size=(4, 3))
        edge_index, edge_type = _simple_graph()
        out = conv(Tensor(x_data), edge_index, edge_type).data

        w0, w1 = conv.weight.data[0], conv.weight.data[1]
        root = conv.root.data
        expected = x_data @ root
        # Node 1 receives from node 0 via relation 0 (degree 1) and node 3 via relation 1.
        expected[1] += (x_data[0] @ w0) / 1.0 + (x_data[3] @ w1) / 1.0
        # Node 2 receives from node 1 via relation 0.
        expected[2] += (x_data[1] @ w0) / 1.0
        np.testing.assert_allclose(out, expected)

    def test_normalisation_averages_same_relation_neighbours(self):
        # Two relation-0 edges into node 0: messages must be averaged, not summed.
        conv = RGCNConv(2, 2, num_relations=1, bias=False, rng=_rng())
        x = np.array([[0.0, 0.0], [1.0, 1.0], [3.0, 3.0]])
        edge_index = np.array([[1, 2], [0, 0]])
        edge_type = np.array([0, 0])
        out = conv(Tensor(x), edge_index, edge_type).data
        expected_message = (x[1] + x[2]) / 2.0 @ conv.weight.data[0]
        np.testing.assert_allclose(out[0], x[0] @ conv.root.data + expected_message)

    def test_isolated_nodes_only_get_self_loop(self):
        conv = RGCNConv(2, 2, num_relations=1, bias=False, rng=_rng())
        x = np.random.default_rng(3).normal(size=(3, 2))
        out = conv(Tensor(x), np.zeros((2, 0), dtype=np.int64), np.zeros(0, dtype=np.int64)).data
        np.testing.assert_allclose(out, x @ conv.root.data)

    def test_gradients_reach_all_parameters(self):
        conv = RGCNConv(3, 3, num_relations=2, rng=_rng())
        x = Tensor(np.random.default_rng(4).normal(size=(4, 3)), requires_grad=True)
        edge_index, edge_type = _simple_graph()
        conv(x, edge_index, edge_type).sum().backward()
        assert x.grad is not None
        assert conv.root.grad is not None
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None
        # Relation 0 and 1 weights both received gradient (both appear in the graph).
        assert np.abs(conv.weight.grad[0]).sum() > 0
        assert np.abs(conv.weight.grad[1]).sum() > 0

    def test_rejects_bad_edge_arrays(self):
        conv = RGCNConv(2, 2, num_relations=1, rng=_rng())
        x = Tensor(np.ones((3, 2)))
        with pytest.raises(ValueError):
            conv(x, np.zeros((3, 2), dtype=np.int64), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            conv(x, np.zeros((2, 2), dtype=np.int64), np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            conv(x, np.zeros((2, 1), dtype=np.int64), np.array([5]))


class TestPooling:
    def test_sum_and_mean_pool(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0], [5.0]]))
        batch = np.array([0, 0, 1, 1])
        np.testing.assert_allclose(global_sum_pool(x, batch, 2).data, [[3.0], [8.0]])
        np.testing.assert_allclose(global_mean_pool(x, batch, 2).data, [[1.5], [4.0]])

    def test_max_pool(self):
        x = Tensor(np.array([[1.0, 9.0], [2.0, 0.0], [3.0, 4.0]]))
        batch = np.array([0, 0, 1])
        np.testing.assert_allclose(global_max_pool(x, batch, 2).data, [[2.0, 9.0], [3.0, 4.0]])

    def test_mean_pool_gradient_is_uniform(self):
        x = Tensor(np.ones((4, 2)), requires_grad=True)
        batch = np.array([0, 0, 0, 1])
        global_mean_pool(x, batch, 2).sum().backward()
        np.testing.assert_allclose(x.grad[:3], np.full((3, 2), 1.0 / 3.0))
        np.testing.assert_allclose(x.grad[3], np.ones(2))

    def test_batch_length_mismatch(self):
        with pytest.raises(ValueError):
            global_mean_pool(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)
