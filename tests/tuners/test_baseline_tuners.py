"""Tests for the execution-based baseline tuners (oracle, random, BLISS, OpenTuner)."""

import pytest

from repro.core.search_space import SearchSpace
from repro.tuners import BlissTuner, OpenTunerLike, OracleTuner, RandomSearchTuner
from repro.tuners.base import ConfigurationPoint, config_feature_vector
from repro.openmp.config import OpenMPConfig, ScheduleKind


class TestConfigFeatureVector:
    def test_dimensions_with_and_without_cap(self):
        space = SearchSpace("haswell")
        config = OpenMPConfig(8, ScheduleKind.DYNAMIC, 64)
        without_cap = config_feature_vector(ConfigurationPoint(config), space)
        with_cap = config_feature_vector(ConfigurationPoint(config, 60.0), space)
        assert with_cap.shape[0] == without_cap.shape[0] + 1

    def test_one_hot_schedule(self):
        space = SearchSpace("haswell")
        vec = config_feature_vector(
            ConfigurationPoint(OpenMPConfig(8, ScheduleKind.GUIDED, 64)), space
        )
        assert vec[2:5].tolist() == [0.0, 0.0, 1.0]

    def test_default_config_handled(self):
        space = SearchSpace("haswell")
        vec = config_feature_vector(ConfigurationPoint(space.default_configuration), space)
        assert vec.shape[0] == 7


class TestOracleTuner:
    def test_matches_database_best(self, small_database):
        oracle = OracleTuner()
        config = oracle.tune_performance(small_database, "gemm/kernel_gemm", 40.0)
        best_config, _ = small_database.best_by_time("gemm/kernel_gemm", 40.0)
        assert config == best_config

    def test_edp_matches_database_best(self, small_database):
        oracle = OracleTuner()
        cap, config = oracle.tune_edp(small_database, "trisolv/kernel_trisolv")
        best_cap, best_config, _ = small_database.best_by_edp("trisolv/kernel_trisolv")
        assert (cap, config) == (best_cap, best_config)


class TestBudgetedTuners:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomSearchTuner(budget=15, seed=0),
            lambda: BlissTuner(budget=15, initial_samples=5, seed=0),
            lambda: OpenTunerLike(budget=15, seed=0),
        ],
    )
    def test_budget_respected_and_config_valid(self, small_database, factory):
        tuner = factory()
        tuner.reset()
        config = tuner.tune_performance(small_database, "XSBench/macro_xs_lookup", 60.0)
        assert tuner.executions_used <= tuner.budget
        assert config in small_database.search_space.candidate_configurations()

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: BlissTuner(budget=20, seed=3),
            lambda: OpenTunerLike(budget=20, seed=3),
        ],
    )
    def test_determinism_given_seed(self, small_database, factory):
        a = factory().tune_performance(small_database, "atax/kernel_atax", 85.0)
        b = factory().tune_performance(small_database, "atax/kernel_atax", 85.0)
        assert a == b

    def test_sampling_tuners_beat_or_match_default_usually(self, small_database):
        """With 20 samples out of 127 the tuners should find a decent config."""
        improvements = []
        for region_id in small_database.region_ids:
            default = small_database.default_result(region_id, 40.0)
            tuner = BlissTuner(budget=20, seed=1)
            config = tuner.tune_performance(small_database, region_id, 40.0)
            chosen = small_database.measure(region_id, config, 40.0)
            improvements.append(default.time_s / chosen.time_s)
        assert sum(1 for s in improvements if s >= 0.95) >= len(improvements) - 1

    def test_edp_tuning_returns_cap_from_search_space(self, small_database):
        tuner = OpenTunerLike(budget=25, seed=0)
        cap, config = tuner.tune_edp(small_database, "gemm/kernel_gemm")
        assert cap in small_database.search_space.power_caps
        assert config in small_database.search_space.candidate_configurations()

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            RandomSearchTuner(budget=0)
        with pytest.raises(ValueError):
            BlissTuner(budget=5, initial_samples=5)
        with pytest.raises(ValueError):
            OpenTunerLike(budget=10, bandit_window=0)
