"""Tests for deterministic RNG plumbing."""

import numpy as np
from hypothesis import given, strategies as st

from repro.utils.rng import RngFactory, new_rng, spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(42, "a/b") == spawn_seed(42, "a/b")

    def test_distinct_tags_decorrelate(self):
        assert spawn_seed(42, "noise") != spawn_seed(42, "init")

    def test_distinct_seeds_decorrelate(self):
        assert spawn_seed(1, "x") != spawn_seed(2, "x")

    def test_fits_in_32_bits(self):
        assert 0 <= spawn_seed(2**62, "huge") < 2**32

    @given(st.integers(min_value=0, max_value=2**63 - 1), st.text(min_size=0, max_size=40))
    def test_always_in_range(self, seed, tag):
        child = spawn_seed(seed, tag)
        assert 0 <= child < 2**32


class TestNewRng:
    def test_same_seed_same_stream(self):
        a = new_rng(7, "x").random(5)
        b = new_rng(7, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_tags_different_stream(self):
        a = new_rng(7, "x").random(5)
        b = new_rng(7, "y").random(5)
        assert not np.allclose(a, b)


class TestRngFactory:
    def test_caches_generators(self):
        factory = RngFactory(seed=3)
        assert factory.get("a") is factory.get("a")

    def test_child_factory_decorrelated(self):
        parent = RngFactory(seed=3)
        child = parent.child("stage1")
        assert child.seed != parent.seed
        assert child.seed == spawn_seed(3, "stage1")

    def test_seed_for_matches_spawn(self):
        factory = RngFactory(seed=11)
        assert factory.seed_for("foo") == spawn_seed(11, "foo")
