"""Tests for statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import Welford, geometric_mean, harmonic_mean, normalize_by, summarize

positive_floats = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(positive_floats, min_size=1, max_size=30))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(positive_floats, min_size=1, max_size=30), positive_floats)
    def test_scale_equivariant(self, values, scale):
        scaled = geometric_mean([v * scale for v in values])
        assert scaled == pytest.approx(geometric_mean(values) * scale, rel=1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=30))
    def test_never_exceeds_arithmetic_mean(self, values):
        assert geometric_mean(values) <= np.mean(values) + 1e-9


class TestHarmonicMean:
    def test_simple(self):
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    @given(st.lists(positive_floats, min_size=1, max_size=30))
    def test_never_exceeds_geometric_mean(self, values):
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-9


class TestNormalizeBy:
    def test_basic(self):
        out = normalize_by({"a": 2.0, "b": 3.0}, {"a": 4.0, "b": 3.0})
        assert out == {"a": 0.5, "b": 1.0}

    def test_skips_missing_and_zero_reference(self):
        out = normalize_by({"a": 2.0, "b": 3.0, "c": 1.0}, {"a": 0.0, "b": 3.0})
        assert out == {"b": 1.0}


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.mean == pytest.approx(2.5)
        assert s.p50 == pytest.approx(2.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestWelford:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 2.0, size=200)
        acc = Welford()
        for x in data:
            acc.add(float(x))
        assert acc.count == 200
        assert acc.mean == pytest.approx(np.mean(data))
        assert acc.variance == pytest.approx(np.var(data, ddof=1))
        assert acc.std == pytest.approx(np.std(data, ddof=1))

    def test_single_observation_has_zero_variance(self):
        acc = Welford()
        acc.add(3.0)
        assert acc.variance == 0.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Welford().mean
