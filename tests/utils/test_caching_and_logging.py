"""Tests for caching and logging helpers."""

import logging

from repro.utils.caching import memoize_method
from repro.utils.logging import enable_console, get_logger


class Counter:
    def __init__(self):
        self.calls = 0

    @memoize_method
    def compute(self, x, y=1):
        self.calls += 1
        return x * y


class TestMemoizeMethod:
    def test_caches_per_arguments(self):
        c = Counter()
        assert c.compute(2, y=3) == 6
        assert c.compute(2, y=3) == 6
        assert c.calls == 1
        assert c.compute(2, y=4) == 8
        assert c.calls == 2

    def test_instances_are_independent(self):
        a, b = Counter(), Counter()
        a.compute(1)
        b.compute(1)
        assert a.calls == 1 and b.calls == 1


class TestLogging:
    def test_namespace(self):
        assert get_logger("core.training").name == "repro.core.training"
        assert get_logger().name == "repro"

    def test_enable_console_is_idempotent(self):
        enable_console(logging.WARNING)
        enable_console(logging.WARNING)
        root = logging.getLogger("repro")
        stream_handlers = [
            h for h in root.handlers if isinstance(h, logging.StreamHandler)
        ]
        assert len(stream_handlers) == 1
