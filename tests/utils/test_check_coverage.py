"""The CI coverage-floor checker (``tools/check_coverage.py``).

The checker is exercised against hand-built Cobertura XML so the floor
logic is tested in-tree without requiring coverage.py at test time (CI
produces the real report with ``pytest --cov``).
"""

import importlib.util
import os

import pytest

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "check_coverage.py",
)


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_coverage", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


COBERTURA = """<?xml version="1.0" ?>
<coverage>
  <packages>
    <package name="repro.serve">
      <classes>
        <class filename="repro/serve/fleet.py" name="fleet.py">
          <lines>
            <line hits="1" number="1"/>
            <line hits="1" number="2"/>
            <line hits="0" number="3"/>
            <line hits="4" number="4"/>
          </lines>
        </class>
        <class filename="repro/serve/rpc.py" name="rpc.py">
          <lines>
            <line hits="1" number="1"/>
            <line hits="1" number="2"/>
          </lines>
        </class>
      </classes>
    </package>
    <package name="repro.nn">
      <classes>
        <class filename="repro/nn/tensor.py" name="tensor.py">
          <lines>
            <line hits="0" number="1"/>
            <line hits="0" number="2"/>
          </lines>
        </class>
      </classes>
    </package>
  </packages>
</coverage>
"""


@pytest.fixture()
def xml_path(tmp_path):
    path = tmp_path / "coverage.xml"
    path.write_text(COBERTURA, encoding="utf-8")
    return str(path)


class TestFileLineRates:
    def test_selects_only_matching_files(self, checker, xml_path):
        rates = checker.file_line_rates(xml_path, "repro/serve")
        assert set(rates) == {"repro/serve/fleet.py", "repro/serve/rpc.py"}
        assert rates["repro/serve/fleet.py"] == (3, 4)
        assert rates["repro/serve/rpc.py"] == (2, 2)

    def test_no_matches_is_empty(self, checker, xml_path):
        assert checker.file_line_rates(xml_path, "no/such/package") == {}


class TestAggregateRate:
    def test_aggregates_across_files(self, checker, xml_path):
        rates = checker.file_line_rates(xml_path, "repro/serve")
        # 5 of 6 serve lines are covered.
        assert checker.aggregate_rate(rates) == pytest.approx(100.0 * 5 / 6)

    def test_empty_is_zero(self, checker):
        assert checker.aggregate_rate({}) == 0.0


class TestMain:
    def test_passes_above_floor(self, checker, xml_path, capsys):
        assert checker.main([xml_path, "--path", "repro/serve", "--min-percent", "80"]) == 0
        out = capsys.readouterr().out
        assert "aggregate 83.3%" in out

    def test_fails_below_floor(self, checker, xml_path, capsys):
        assert checker.main([xml_path, "--path", "repro/serve", "--min-percent", "90"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_fails_when_nothing_matches(self, checker, xml_path):
        # A moved/renamed package must fail the check loudly, not pass an
        # empty selection.
        assert checker.main([xml_path, "--path", "repro/gone", "--min-percent", "1"]) == 1

    def test_uncovered_package_fails(self, checker, xml_path):
        assert checker.main([xml_path, "--path", "repro/nn", "--min-percent", "10"]) == 1

class TestMultipleFloors:
    def test_all_floors_hold(self, checker, xml_path):
        assert checker.main([xml_path, "--floor", "repro/serve=80"]) == 0

    def test_reports_every_floor_before_failing(self, checker, xml_path, capsys):
        # serve holds (83.3% >= 80), nn does not (0% < 70): exit 1, but both
        # breakdowns are printed so one failure never hides another.
        code = checker.main(
            [xml_path, "--floor", "repro/serve=80", "--floor", "repro/nn=70"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "repro/serve aggregate 83.3%" in out
        assert "repro/nn aggregate 0.0%" in out
        assert "FAILED" in out

    def test_floor_spec_validation(self, checker, xml_path):
        with pytest.raises(SystemExit):
            checker.main([xml_path, "--floor", "repro/serve"])
        with pytest.raises(SystemExit):
            checker.main([xml_path, "--floor", "repro/serve=lots"])
