"""Tests for the IR type system and values."""

import pytest

from repro.ir import types as irt
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue


class TestTypes:
    def test_canonical_instances(self):
        assert irt.i32() is irt.i32()
        assert irt.f64() is irt.f64()

    def test_structural_equality(self):
        assert irt.IntType(32) == irt.i32()
        assert irt.ptr(irt.f64()) == irt.ptr(irt.f64())
        assert irt.ptr(irt.f64()) != irt.ptr(irt.f32())
        assert irt.ArrayType(irt.i32(), 4) == irt.ArrayType(irt.i32(), 4)
        assert irt.ArrayType(irt.i32(), 4) != irt.ArrayType(irt.i32(), 5)

    def test_hashable(self):
        assert len({irt.i32(), irt.IntType(32), irt.i64()}) == 2

    def test_predicates(self):
        assert irt.ptr(irt.f64()).is_pointer
        assert irt.i64().is_integer
        assert irt.f32().is_float
        assert irt.void().is_void

    def test_rendering(self):
        assert str(irt.i1()) == "i1"
        assert str(irt.f32()) == "float"
        assert str(irt.f64()) == "double"
        assert str(irt.ptr(irt.f64())) == "double*"
        assert str(irt.ArrayType(irt.i32(), 8)) == "[8 x i32]"

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            irt.IntType(0)
        with pytest.raises(ValueError):
            irt.FloatType(16)


class TestValues:
    def test_constant_coerces_value(self):
        c = Constant(irt.i64(), 3.7)
        assert c.value == 3
        f = Constant(irt.f64(), 2)
        assert isinstance(f.value, float)

    def test_constant_requires_scalar_type(self):
        with pytest.raises(TypeError):
            Constant(irt.ptr(irt.i32()), 0)

    def test_constant_equality(self):
        assert Constant(irt.i64(), 5) == Constant(irt.i64(), 5)
        assert Constant(irt.i64(), 5) != Constant(irt.i32(), 5)

    def test_refs(self):
        assert Constant(irt.i64(), 5).ref() == "5"
        assert Argument(irt.f64(), "x").ref() == "%x"
        assert GlobalVariable(irt.f64(), "table").ref() == "@table"
        assert UndefValue(irt.i32()).ref() == "undef"

    def test_global_variable_is_pointer(self):
        g = GlobalVariable(irt.f64(), "data")
        assert g.type == irt.ptr(irt.f64())
