"""Tests for the IR verifier and the llvm-extract-style outliner."""

import pytest

from repro.ir import types as irt
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import Branch
from repro.ir.module import Module
from repro.ir.outline import extract_function, extract_outlined_regions, outlined_function_names
from repro.ir.verifier import VerificationError, verify_function, verify_module


def _terminated_function(name="f"):
    fn = Function(name)
    builder = IRBuilder(fn)
    builder.position_at(fn.add_block("entry"))
    builder.ret()
    return fn


class TestVerifier:
    def test_accepts_declarations(self):
        verify_function(Function("decl"))

    def test_missing_terminator(self):
        fn = Function("f")
        block = fn.add_block("entry")
        builder = IRBuilder(fn)
        builder.position_at(block)
        builder.fadd(builder.const_float(1.0), builder.const_float(2.0))
        with pytest.raises(VerificationError, match="missing terminator"):
            verify_function(fn)

    def test_empty_block(self):
        fn = Function("f")
        fn.add_block("entry")
        with pytest.raises(VerificationError, match="empty basic block"):
            verify_function(fn)

    def test_duplicate_ssa_names(self):
        fn = Function("f")
        builder = IRBuilder(fn)
        builder.position_at(fn.add_block("entry"))
        a = builder.fadd(builder.const_float(1.0), builder.const_float(1.0))
        b = builder.fadd(builder.const_float(1.0), builder.const_float(1.0))
        b.name = a.name
        builder.ret()
        with pytest.raises(VerificationError, match="duplicate SSA name"):
            verify_function(fn)

    def test_branch_to_foreign_block(self):
        fn_a = _terminated_function("a")
        fn_b = Function("b")
        block = fn_b.add_block("entry")
        block.append(Branch(fn_a.entry))
        with pytest.raises(VerificationError):
            verify_function(fn_b)

    def test_phi_predecessor_check(self):
        fn = Function("f")
        builder = IRBuilder(fn)
        entry = fn.add_block("entry")
        other = fn.add_block("other")
        builder.position_at(entry)
        phi = builder.phi(irt.f64())
        phi.add_incoming(builder.const_float(0.0), other)  # not a predecessor
        builder.ret()
        builder.position_at(other)
        builder.ret()
        with pytest.raises(VerificationError, match="not a predecessor"):
            verify_function(fn)

    def test_verify_module_aggregates_errors(self):
        module = Module("m")
        bad = Function("bad")
        bad.add_block("entry")
        module.add_function(bad)
        with pytest.raises(VerificationError):
            verify_module(module)


class TestOutliner:
    def _module_with_regions(self):
        module = Module("app")
        outlined = Function("app.kernel.omp_outlined", attributes={"omp_outlined"})
        builder = IRBuilder(outlined)
        builder.position_at(outlined.add_block("entry"))
        builder.call("exp", irt.f64(), [builder.const_float(1.0)])
        builder.call("app.helper", irt.void(), [])
        builder.ret()
        module.add_function(outlined)

        helper = _terminated_function("app.helper")
        module.add_function(helper)

        host = Function("app.kernel")
        builder = IRBuilder(host)
        builder.position_at(host.add_block("entry"))
        builder.call("__kmpc_fork_call", irt.void(), [])
        builder.call("app.kernel.omp_outlined", irt.void(), [])
        builder.ret()
        module.add_function(host)
        return module

    def test_outlined_function_names(self):
        module = self._module_with_regions()
        assert outlined_function_names(module) == ["app.kernel.omp_outlined"]

    def test_extract_includes_callees_and_declares_unknowns(self):
        module = self._module_with_regions()
        extracted = extract_function(module, "app.kernel.omp_outlined")
        assert extracted.has_function("app.kernel.omp_outlined")
        assert extracted.has_function("app.helper")
        assert not extracted.get_function("app.helper").is_declaration
        # Unknown runtime/libm callees become declarations.
        assert extracted.has_function("exp")
        assert extracted.get_function("exp").is_declaration
        # The host wrapper is not dragged in.
        assert not extracted.has_function("app.kernel")

    def test_extract_without_callee_bodies(self):
        module = self._module_with_regions()
        extracted = extract_function(module, "app.kernel.omp_outlined", include_callee_bodies=False)
        assert extracted.get_function("app.helper").is_declaration

    def test_extract_outlined_regions_mapping(self):
        module = self._module_with_regions()
        regions = extract_outlined_regions(module)
        assert set(regions) == {"app.kernel.omp_outlined"}
        verify_module(regions["app.kernel.omp_outlined"])

    def test_extract_unknown_function_raises(self):
        with pytest.raises(KeyError):
            extract_function(Module("m"), "missing")
