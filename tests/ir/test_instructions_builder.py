"""Tests for instructions, the builder, blocks and functions."""

import pytest

from repro.ir import types as irt
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    AtomicRMW,
    BinaryOp,
    Call,
    CompareOp,
    Load,
    Phi,
    Return,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument, Constant
from repro.ir.verifier import verify_function


def make_function():
    return Function(
        "kernel",
        arg_types=[irt.ptr(irt.f64()), irt.i64()],
        arg_names=["data", "n"],
        return_type=irt.void(),
    )


class TestInstructionTypeChecking:
    def test_binary_op_type_mismatch(self):
        a = Constant(irt.i64(), 1)
        b = Constant(irt.i32(), 1)
        with pytest.raises(TypeError):
            BinaryOp("add", a, b)

    def test_float_op_requires_floats(self):
        with pytest.raises(TypeError):
            BinaryOp("fadd", Constant(irt.i64(), 1), Constant(irt.i64(), 2))

    def test_compare_produces_i1(self):
        cmp = CompareOp("icmp", "slt", Constant(irt.i64(), 1), Constant(irt.i64(), 2), "c")
        assert cmp.type == irt.i1()

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(Constant(irt.i64(), 0), "v")

    def test_store_type_check(self):
        ptr_arg = Argument(irt.ptr(irt.f64()), "p")
        with pytest.raises(TypeError):
            Store(Constant(irt.i64(), 1), ptr_arg)

    def test_atomicrmw_checks(self):
        ptr_arg = Argument(irt.ptr(irt.f64()), "p")
        AtomicRMW("fadd", ptr_arg, Constant(irt.f64(), 1.0), "old")
        with pytest.raises(ValueError):
            AtomicRMW("bogus", ptr_arg, Constant(irt.f64(), 1.0), "old")
        with pytest.raises(TypeError):
            AtomicRMW("fadd", ptr_arg, Constant(irt.i64(), 1), "old")

    def test_phi_incoming_type_check(self):
        phi = Phi(irt.f64(), "p")
        block = Function("f").add_block("entry")
        with pytest.raises(TypeError):
            phi.add_incoming(Constant(irt.i64(), 0), block)

    def test_call_renders_void_and_value(self):
        call = Call("foo", irt.void(), [Constant(irt.i64(), 1)])
        assert call.render().startswith("call void @foo")
        call2 = Call("bar", irt.f64(), [], "r")
        assert call2.render().startswith("%r = call double @bar")


class TestBlocksAndFunctions:
    def test_block_rejects_instructions_after_terminator(self):
        fn = make_function()
        entry = fn.add_block("entry")
        entry.append(Return())
        with pytest.raises(ValueError):
            entry.append(Return())

    def test_duplicate_block_names_rejected(self):
        fn = make_function()
        fn.add_block("entry")
        with pytest.raises(ValueError):
            fn.add_block("entry")

    def test_predecessors_and_callees(self):
        fn = make_function()
        builder = IRBuilder(fn)
        entry = fn.add_block("entry")
        exit_block = fn.add_block("exit")
        builder.position_at(entry)
        builder.call("helper", irt.void(), [])
        builder.branch(exit_block)
        builder.position_at(exit_block)
        builder.ret()
        preds = fn.predecessors()
        assert [b.name for b in preds["exit"]] == ["entry"]
        assert preds["entry"] == []
        assert fn.callees() == {"helper"}
        assert fn.num_instructions() == 3

    def test_outlined_attribute_detection(self):
        assert Function("foo.omp_outlined").is_omp_outlined
        assert Function("foo", attributes={"omp_outlined"}).is_omp_outlined
        assert not Function("foo").is_omp_outlined

    def test_declaration_rendering(self):
        decl = Function("exp", arg_types=[irt.f64()], return_type=irt.f64())
        assert decl.is_declaration
        assert decl.render().startswith("declare double @exp")


class TestBuilderLoops:
    def test_counted_loop_structure_verifies(self):
        fn = make_function()
        builder = IRBuilder(fn)
        builder.position_at(fn.add_block("entry"))

        def body(b, iv):
            addr = b.gep(fn.arguments[0], [iv])
            value = b.load(addr)
            b.store(b.fadd(value, b.const_float(1.0)), addr)

        builder.counted_loop(fn.arguments[1], body)
        builder.ret()
        verify_function(fn)
        # One phi, one compare, one conditional branch in the loop header.
        opcodes = [i.opcode for i in fn.instructions()]
        assert opcodes.count("phi") == 1
        assert opcodes.count("condbr") == 1
        assert opcodes.count("ret") == 1

    def test_nested_loops_verify(self):
        fn = make_function()
        builder = IRBuilder(fn)
        builder.position_at(fn.add_block("entry"))

        def inner(b, iv):
            b.fadd(b.const_float(1.0), b.const_float(2.0))

        def outer(b, iv):
            b.counted_loop(b.const_int(8), inner, hint="inner")

        builder.counted_loop(builder.const_int(4), outer, hint="outer")
        builder.ret()
        verify_function(fn)
        assert sum(1 for i in fn.instructions() if i.opcode == "phi") == 2


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function(Function("f"))
        with pytest.raises(ValueError):
            module.add_function(Function("f"))

    def test_globals_and_lookup(self):
        module = Module("m")
        g = module.add_global(irt.f64(), "table")
        assert module.get_global("table") is g
        with pytest.raises(ValueError):
            module.add_global(irt.f64(), "table")
        with pytest.raises(KeyError):
            module.get_function("missing")

    def test_render_contains_functions(self):
        module = Module("m")
        module.add_function(Function("f", return_type=irt.void()))
        text = module.render()
        assert "ModuleID" in text and "@f" in text
