"""Shared fixtures for core-package tests.

Core tests run against a *small* measurement database (4 applications, 9
regions) so the exhaustive labelling sweeps stay cheap; the full 68-region
suite is exercised by the benchmark harness instead.
"""

import pytest

from repro.benchsuite.registry import regions_by_application
from repro.core.dataset import DatasetBuilder
from repro.core.measurements import MeasurementDatabase
from repro.core.search_space import SearchSpace
from repro.hw.machine import Machine

#: Applications giving a diverse but small test workload.
TEST_APPLICATIONS = ("gemm", "trisolv", "atax", "XSBench")


@pytest.fixture(scope="session")
def small_regions_by_app():
    everything = regions_by_application()
    return {name: everything[name] for name in TEST_APPLICATIONS}


@pytest.fixture(scope="session")
def small_database(small_regions_by_app):
    regions = [r for rs in small_regions_by_app.values() for r in rs]
    machine = Machine.named("haswell", seed=0)
    return MeasurementDatabase(machine, SearchSpace("haswell"), regions)


@pytest.fixture(scope="session")
def small_builder(small_database, small_regions_by_app):
    return DatasetBuilder(small_database, regions_by_app=small_regions_by_app, seed=0)
