"""Tests for dataset construction, the PnP model, training, and transfer."""

import numpy as np
import pytest

from repro.core.dataset import DatasetBuilder, TuningScenario
from repro.core.model import ModelConfig, PnPModel
from repro.core.training import (
    GroupedApplicationKFold,
    LeaveOneApplicationOut,
    TrainingConfig,
    predict_labels,
    run_cross_validation,
    train_model,
)
from repro.core.transfer import extract_gnn_weights, freeze_gnn_parameters, transfer_gnn_weights
from repro.nn.data import collate_graphs


def tiny_model_config(builder, scenario=TuningScenario.PERFORMANCE, include_counters=False, num_classes=None):
    space = builder.search_space
    if num_classes is None:
        num_classes = (
            space.num_omp_configurations
            if scenario == TuningScenario.PERFORMANCE
            else space.num_joint_configurations
        )
    return ModelConfig(
        vocabulary_size=len(builder.vocabulary),
        num_classes=num_classes,
        aux_dim=builder.aux_feature_dim(scenario, include_counters),
        embedding_dim=16,
        hidden_dim=16,
        dense_hidden_dim=32,
        num_rgcn_layers=2,
        seed=0,
    )


class TestDatasetBuilder:
    def test_performance_samples_shape(self, small_builder):
        samples = small_builder.performance_samples(include_counters=False)
        regions = small_builder.regions()
        caps = small_builder.search_space.power_caps
        assert len(samples) == len(regions) * len(caps)
        sample = samples[0]
        assert sample.scenario == TuningScenario.PERFORMANCE
        assert sample.power_cap in caps
        assert 0 <= sample.label < small_builder.search_space.num_omp_configurations
        assert sample.sample.aux_features.shape == (1,)
        assert sample.sample.target_distribution is not None
        assert sample.sample.target_distribution.shape == (127,)

    def test_dynamic_variant_has_counter_features(self, small_builder):
        samples = small_builder.performance_samples(include_counters=True)
        assert samples[0].sample.aux_features.shape == (6,)

    def test_soft_target_peaks_at_label(self, small_builder):
        samples = small_builder.performance_samples(include_counters=False)
        for sample in samples[:10]:
            assert int(np.argmax(sample.sample.target_distribution)) == sample.label

    def test_edp_samples_shape(self, small_builder):
        samples = small_builder.edp_samples()
        assert len(samples) == len(small_builder.regions())
        assert all(s.power_cap is None for s in samples)
        assert all(
            0 <= s.label < small_builder.search_space.num_joint_configurations for s in samples
        )
        assert samples[0].sample.target_distribution.shape == (508,)

    def test_soft_targets_can_be_disabled(self, small_database, small_regions_by_app):
        builder = DatasetBuilder(
            small_database, regions_by_app=small_regions_by_app, soft_target_temperature=None
        )
        samples = builder.performance_samples(power_caps=[40.0])
        assert samples[0].sample.target_distribution is None

    def test_region_graphs_cover_all_regions(self, small_builder):
        graphs = small_builder.region_graphs()
        assert set(graphs) == {r.region_id for r in small_builder.regions()}

    def test_inference_sample_for_known_and_new_power_cap(self, small_builder):
        region = small_builder.regions()[0]
        sample = small_builder.inference_sample(region, power_cap=60.0)
        assert sample.label == -1
        with pytest.raises(ValueError):
            small_builder.inference_sample(region, power_cap=None)


class TestPnPModel:
    def test_forward_and_predict_shapes(self, small_builder):
        samples = small_builder.performance_samples(power_caps=[40.0])
        batch = collate_graphs([s.sample for s in samples[:5]])
        model = PnPModel(tiny_model_config(small_builder))
        logits = model(batch)
        assert logits.shape == (5, 127)
        predictions = model.predict(batch)
        assert predictions.shape == (5,)
        probabilities = model.predict_proba(batch)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5))

    def test_table2_structure(self, small_builder):
        model = PnPModel(tiny_model_config(small_builder))
        description = model.describe()
        assert description["dense_layers"] == 3
        assert "leaky_relu (GNN)" in description["activations"][0]
        # GNN encoder parameters are addressable by prefix (transfer learning).
        assert any(name.startswith("gnn.") for name in model.state_dict())
        assert any(name.startswith("head.") for name in model.state_dict())

    def test_missing_aux_features_rejected(self, small_builder):
        samples = small_builder.performance_samples(power_caps=[40.0])
        bare = [s.sample for s in samples[:2]]
        for sample in bare:
            sample.aux_features = None
        batch = collate_graphs(bare)
        model = PnPModel(tiny_model_config(small_builder))
        with pytest.raises(ValueError):
            model(batch)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ModelConfig(vocabulary_size=0, num_classes=5)
        with pytest.raises(ValueError):
            ModelConfig(vocabulary_size=10, num_classes=5, num_rgcn_layers=0)


class TestTraining:
    def test_loss_decreases(self, small_builder):
        samples = small_builder.performance_samples(include_counters=False)
        model = PnPModel(tiny_model_config(small_builder))
        history = train_model(model, samples, TrainingConfig(epochs=4, learning_rate=3e-3, seed=0))
        assert len(history.losses) == 4
        assert history.losses[-1] < history.losses[0]

    def test_training_is_seed_deterministic(self, small_builder):
        samples = small_builder.performance_samples(power_caps=[40.0])
        config = TrainingConfig(epochs=2, seed=5)
        model_a = PnPModel(tiny_model_config(small_builder))
        model_b = PnPModel(tiny_model_config(small_builder))
        train_model(model_a, samples, config)
        train_model(model_b, samples, config)
        np.testing.assert_allclose(
            predict_labels(model_a, samples), predict_labels(model_b, samples)
        )

    def test_empty_dataset_rejected(self, small_builder):
        model = PnPModel(tiny_model_config(small_builder))
        with pytest.raises(ValueError):
            train_model(model, [], TrainingConfig(epochs=1))

    def test_splitters_partition_by_application(self, small_builder):
        samples = small_builder.performance_samples(power_caps=[40.0])
        loocv = LeaveOneApplicationOut()
        folds = list(loocv.split(samples))
        assert len(folds) == len(small_builder.applications())
        for app, train, validation in folds:
            assert all(s.application != app for s in train)
            assert all(s.application == app for s in validation)
            assert len(train) + len(validation) == len(samples)

        grouped = GroupedApplicationKFold(2)
        grouped_folds = list(grouped.split(samples))
        covered = [s.region_id for _, _, val in grouped_folds for s in val]
        assert sorted(covered) == sorted(s.region_id for s in samples)

    def test_run_cross_validation_outputs_all_points(self, small_builder):
        samples = small_builder.performance_samples(power_caps=[40.0, 85.0])
        predictions = run_cross_validation(
            samples,
            model_factory=lambda: PnPModel(tiny_model_config(small_builder)),
            training_config=TrainingConfig(epochs=1, seed=0),
            splitter=GroupedApplicationKFold(2),
        )
        assert len(predictions) == len(samples)
        assert all(0 <= label < 127 for label in predictions.values())


class TestTransfer:
    def test_gnn_weight_roundtrip_preserves_encoder(self, small_builder):
        source = PnPModel(tiny_model_config(small_builder))
        target = PnPModel(tiny_model_config(small_builder, num_classes=64))
        weights = extract_gnn_weights(source)
        loaded = transfer_gnn_weights(weights, target)
        assert loaded == len(weights) > 0
        for name, value in extract_gnn_weights(target).items():
            np.testing.assert_array_equal(value, weights[name])

    def test_transfer_rejects_empty_source(self, small_builder):
        target = PnPModel(tiny_model_config(small_builder))
        with pytest.raises(KeyError):
            transfer_gnn_weights({"head.layers.item0.weight": np.zeros((1, 1))}, target)

    def test_freezing_keeps_gnn_fixed_during_training(self, small_builder):
        samples = small_builder.performance_samples(power_caps=[40.0])
        model = PnPModel(tiny_model_config(small_builder))
        frozen_before = extract_gnn_weights(model)
        dense_params = freeze_gnn_parameters(model)
        assert len(dense_params) > 0
        train_model(model, samples, TrainingConfig(epochs=1, seed=0), parameters=dense_params)
        frozen_after = extract_gnn_weights(model)
        for name in frozen_before:
            np.testing.assert_array_equal(frozen_before[name], frozen_after[name])
