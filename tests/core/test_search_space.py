"""Tests for the Table I search space and its index conventions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.search_space import CHUNK_SIZES, POWER_CAPS, SCHEDULES, THREAD_VALUES, SearchSpace
from repro.openmp.config import OpenMPConfig, ScheduleKind


class TestTableI:
    def test_power_caps_match_paper(self):
        assert POWER_CAPS["skylake"] == (75.0, 100.0, 120.0, 150.0)
        assert POWER_CAPS["haswell"] == (40.0, 60.0, 70.0, 85.0)

    def test_thread_values_match_paper(self):
        assert THREAD_VALUES["skylake"] == (1, 4, 8, 16, 32, 64)
        assert THREAD_VALUES["haswell"] == (1, 2, 4, 8, 16, 32)

    def test_schedules_and_chunks(self):
        assert [s.value for s in SCHEDULES] == ["static", "dynamic", "guided"]
        assert CHUNK_SIZES == (1, 8, 32, 64, 128, 256, 512)

    @pytest.mark.parametrize("system", ["haswell", "skylake"])
    def test_configuration_counts(self, system):
        space = SearchSpace(system)
        assert len(space.omp_configurations()) == 126
        assert space.num_omp_configurations == 127          # + default
        assert space.num_joint_configurations == 508         # paper's 504 + 4 defaults
        assert len(space.candidate_configurations()) == 127

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            SearchSpace("epyc")

    def test_default_configuration_uses_all_hardware_threads(self):
        assert SearchSpace("haswell").default_configuration.num_threads == 32
        assert SearchSpace("skylake").default_configuration.num_threads == 64
        assert SearchSpace("haswell").default_configuration.schedule == ScheduleKind.STATIC


class TestIndexing:
    @pytest.mark.parametrize("system", ["haswell", "skylake"])
    def test_config_index_roundtrip_all(self, system):
        space = SearchSpace(system)
        for index, config in enumerate(space.candidate_configurations()):
            assert space.config_index(config) == index
            assert space.config_from_index(index) == config

    def test_joint_index_roundtrip_all(self):
        space = SearchSpace("haswell")
        for cap in space.power_caps:
            for config in space.candidate_configurations():
                joint = space.joint_index(cap, config)
                back_cap, back_config = space.joint_from_index(joint)
                assert back_cap == cap and back_config == config

    def test_out_of_range_indices(self):
        space = SearchSpace("haswell")
        with pytest.raises(IndexError):
            space.config_from_index(127)
        with pytest.raises(IndexError):
            space.joint_from_index(508)
        with pytest.raises(KeyError):
            space.cap_index(55.0)
        with pytest.raises(KeyError):
            space.config_index(OpenMPConfig(3, ScheduleKind.STATIC, 8))

    def test_normalized_cap(self):
        space = SearchSpace("haswell")
        assert space.normalized_cap(40.0) == 0.0
        assert space.normalized_cap(85.0) == 1.0
        assert 0.0 < space.normalized_cap(60.0) < 1.0

    def test_describe_contents(self):
        info = SearchSpace("skylake").describe()
        assert info["num_joint_configurations"] == 508
        assert info["power_caps"] == [75.0, 100.0, 120.0, 150.0]

    @settings(max_examples=50, deadline=None)
    @given(index=st.integers(min_value=0, max_value=507))
    def test_joint_roundtrip_property(self, index):
        space = SearchSpace("skylake")
        cap, config = space.joint_from_index(index)
        assert space.joint_index(cap, config) == index
