"""Batched multi-region serving: ``PnPTuner.predict_sweep_many``.

The contract under test: batching R regions through one collated encoder
pass and one dense-head product returns exactly the results of R serial
``predict_sweep`` calls — byte-identical at float64 and float32 — while
running the GNN once, filling the same embedding cache, and reusing warm
entries.  Also covers the (region id, content fingerprint, dtype) cache
keys: a region resubmitted under a known id with changed characteristics
must re-encode instead of serving the stale embedding.
"""

import contextlib
from dataclasses import replace

import numpy as np
import pytest

from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner

CAPS = [40.0, 50.0, 60.0, 70.0, 85.0]


@contextlib.contextmanager
def counted_encoder(tuner):
    """Count encoder passes (graphs per pass) on the tuner's serving path.

    Serving runs through the compiled inference program, so the counter
    wraps ``program.encode_pooled`` — the single encoder entry point for
    predict/predict_sweep/predict_sweep_many.
    """
    calls = []
    program = tuner.compile_inference()
    original = program.encode_pooled
    program.encode_pooled = (
        lambda batch: (calls.append(batch.num_graphs), original(batch))[1]
    )
    try:
        yield calls
    finally:
        program.encode_pooled = original


@pytest.fixture(scope="module")
def fleet_tuner(small_database, small_builder):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


@pytest.fixture(scope="module")
def suite_regions(small_builder):
    return small_builder.regions()


class TestBatchedEquivalence:
    @pytest.mark.parametrize("dtype", [None, "float32"])
    def test_byte_identical_to_serial_predict_sweep(
        self, fleet_tuner, suite_regions, dtype
    ):
        fleet_tuner._embedding_cache.clear()
        batched = fleet_tuner.predict_sweep_many(suite_regions, CAPS, dtype=dtype)
        fleet_tuner._embedding_cache.clear()
        serial = [
            fleet_tuner.predict_sweep(region, CAPS, dtype=dtype)
            for region in suite_regions
        ]
        assert batched == serial

    def test_batched_embeddings_byte_identical_to_serial(
        self, fleet_tuner, suite_regions
    ):
        fleet_tuner._embedding_cache.clear()
        fleet_tuner.predict_sweep_many(suite_regions, CAPS)
        keys = [
            fleet_tuner._embedding_key(region, fleet_tuner.model)
            for region in suite_regions
        ]
        batched_rows = [fleet_tuner._embedding_cache.get(key).copy() for key in keys]
        fleet_tuner._embedding_cache.clear()
        for region in suite_regions:
            fleet_tuner.predict_sweep(region, CAPS)
        serial_rows = [fleet_tuner._embedding_cache.get(key) for key in keys]
        for batched, serial in zip(batched_rows, serial_rows):
            assert (batched == serial).all()

    def test_runs_encoder_once_for_all_regions(self, fleet_tuner, suite_regions):
        fleet_tuner._embedding_cache.clear()
        with counted_encoder(fleet_tuner) as calls:
            fleet_tuner.predict_sweep_many(suite_regions, CAPS)
        assert calls == [len(suite_regions)]

    def test_warm_cache_skips_encoding(self, fleet_tuner, suite_regions):
        fleet_tuner._embedding_cache.clear()
        first = fleet_tuner.predict_sweep_many(suite_regions, CAPS)
        with counted_encoder(fleet_tuner) as calls:
            second = fleet_tuner.predict_sweep_many(suite_regions, CAPS)
        assert calls == []
        assert second == first

    def test_mixed_warm_and_cold_regions(self, fleet_tuner, suite_regions):
        fleet_tuner._embedding_cache.clear()
        warm = suite_regions[:3]
        fleet_tuner.predict_sweep_many(warm, CAPS)
        with counted_encoder(fleet_tuner) as calls:
            results = fleet_tuner.predict_sweep_many(suite_regions, CAPS)
        # Only the cold regions hit the encoder, in one batch.
        assert calls == [len(suite_regions) - len(warm)]
        fleet_tuner._embedding_cache.clear()
        serial = [fleet_tuner.predict_sweep(r, CAPS) for r in suite_regions]
        assert results == serial

    def test_duplicate_regions_encoded_once(self, fleet_tuner, suite_regions):
        fleet_tuner._embedding_cache.clear()
        region = suite_regions[0]
        with counted_encoder(fleet_tuner) as calls:
            results = fleet_tuner.predict_sweep_many([region, region, region], CAPS)
        assert calls == [1]
        assert results[0] == results[1] == results[2]

    def test_float32_results_match_serial_float32(self, fleet_tuner, suite_regions):
        fleet_tuner._embedding_cache.clear()
        batched = fleet_tuner.predict_sweep_many(
            suite_regions[:4], CAPS, dtype="float32"
        )
        for region, swept in zip(suite_regions[:4], batched):
            key = (region.region_id, region.fingerprint(), "float32")
            cached = fleet_tuner._embedding_cache.get(key)
            assert cached is not None and cached.dtype == np.float32
            assert [r.power_cap for r in swept] == CAPS

    def test_empty_inputs(self, fleet_tuner, suite_regions):
        assert fleet_tuner.predict_sweep_many([], CAPS) == []
        assert fleet_tuner.predict_sweep_many(suite_regions[:2], []) == [[], []]

    def test_requires_time_objective(self, small_database, small_builder):
        tuner = PnPTuner(
            system="haswell",
            objective="edp",
            training_config=TrainingConfig(epochs=1, optimizer="adam", seed=0),
            database=small_database,
            seed=0,
        )
        tuner.builder = small_builder
        tuner.fit(tuner.build_training_samples())
        with pytest.raises(ValueError):
            tuner.predict_sweep_many(small_builder.regions()[:2], CAPS)


class TestFingerprintedCache:
    """Regression tests for the embedding-cache staleness fix."""

    def _modified(self, region):
        """Same id, different characteristics → different generated graph."""
        return replace(
            region,
            nest_depth=region.nest_depth + 1,
            condition_density=min(1.0, region.condition_density + 0.4),
            calls_external_math=not region.calls_external_math,
        )

    def test_changed_region_misses_the_cache(self, fleet_tuner, suite_regions):
        region = suite_regions[0]
        fleet_tuner._embedding_cache.clear()
        fleet_tuner.predict_sweep(region, CAPS)
        modified = self._modified(region)
        assert modified.region_id == region.region_id
        assert modified.fingerprint() != region.fingerprint()
        with counted_encoder(fleet_tuner) as calls:
            fleet_tuner.predict_sweep(modified, CAPS)
        # The stale embedding must NOT be served: the modified region
        # re-encodes and both variants coexist under distinct keys.
        assert calls == [1]
        old_key = (region.region_id, region.fingerprint(), "float64")
        new_key = (region.region_id, modified.fingerprint(), "float64")
        old_row = fleet_tuner._embedding_cache.get(old_key)
        new_row = fleet_tuner._embedding_cache.get(new_key)
        assert old_row is not None and new_row is not None
        assert not (old_row == new_row).all()
        # Restore the session-scoped builder/database to the suite region.
        fleet_tuner.builder.inference_sample(region, power_cap=60.0)

    def test_builder_rebuilds_graph_for_changed_region(self, fleet_tuner, suite_regions):
        region = suite_regions[1]
        builder = fleet_tuner.builder
        original_graph = builder.region_graphs()[region.region_id]
        modified = self._modified(region)
        sample = builder.inference_sample(modified, power_cap=60.0)
        rebuilt = builder.region_graphs()[region.region_id]
        assert rebuilt is not original_graph
        assert builder._graph_fingerprints[region.region_id] == modified.fingerprint()
        # The database registration follows the new characteristics.
        assert builder.database.region(region.region_id) == modified
        assert sample.sample.region_id == region.region_id
        # Re-submitting the same characteristics reuses the rebuilt graph.
        again = builder.inference_sample(modified, power_cap=60.0)
        assert builder.region_graphs()[region.region_id] is rebuilt
        assert (again.sample.token_ids == sample.sample.token_ids).all()
        # Restore the session-scoped builder for the remaining tests.
        builder.inference_sample(region, power_cap=60.0)
        assert builder._graph_fingerprints[region.region_id] == region.fingerprint()
        assert builder.database.region(region.region_id) == region

    def test_reregistration_drops_stale_measurements(self, fleet_tuner, suite_regions):
        region = suite_regions[2]
        database = fleet_tuner.builder.database
        config = database.search_space.default_configuration
        stale = database.measure(region.region_id, config, 60.0)
        assert database.measure(region.region_id, config, 60.0) is stale  # cached
        modified = self._modified(region)
        database.add_region(modified)
        fresh = database.measure(region.region_id, config, 60.0)
        # Executions measured against the old characteristics must not be
        # served for the new ones.
        assert fresh is not stale
        # Restore the original registration (and purge the modified results).
        database.add_region(region)

    def test_fingerprint_stability_and_sensitivity(self, suite_regions):
        region = suite_regions[0]
        assert region.fingerprint() == region.fingerprint()
        twin = replace(region)
        assert twin.fingerprint() == region.fingerprint()
        assert self._modified(region).fingerprint() != region.fingerprint()
