"""Tests for the evaluation metrics and the PnPTuner public API."""

import numpy as np
import pytest

from repro.core import evaluation
from repro.core.evaluation import EdpRecord, PerformanceRecord
from repro.core.training import TrainingConfig
from repro.core.tuner import (
    PnPTuner,
    labels_to_edp_selections,
    labels_to_performance_selections,
)
from repro.openmp.config import OpenMPConfig, ScheduleKind


def perf_record(region="app/k", cap=40.0, time=1.0, default=2.0, oracle=0.8):
    return PerformanceRecord(
        region_id=region,
        application=region.split("/")[0],
        power_cap=cap,
        config=OpenMPConfig(8, ScheduleKind.STATIC, 64),
        time_s=time,
        default_time_s=default,
        oracle_time_s=oracle,
    )


class TestPerformanceRecord:
    def test_derived_metrics(self):
        record = perf_record()
        assert record.speedup == pytest.approx(2.0)
        assert record.oracle_speedup == pytest.approx(2.5)
        assert record.normalized_speedup == pytest.approx(0.8)

    def test_aggregations(self):
        records = [perf_record(time=1.0), perf_record(region="b/k", time=0.8, oracle=0.8)]
        by_app = evaluation.geomean_by_application(records, "normalized_speedup")
        assert set(by_app) == {"app", "b"}
        assert by_app["b"] == pytest.approx(1.0)
        assert evaluation.overall_geomean(records, "speedup") == pytest.approx(
            np.sqrt(2.0 * 2.5)
        )
        assert evaluation.fraction_within_oracle(records, 0.95) == pytest.approx(0.5)

    def test_fraction_better_than(self):
        a = [perf_record(time=0.8, oracle=0.8), perf_record(region="b/k", time=1.0, oracle=0.5)]
        b = [perf_record(time=1.0, oracle=0.8), perf_record(region="b/k", time=0.5, oracle=0.5)]
        assert evaluation.fraction_better_than(a, b) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            evaluation.fraction_better_than(a, [perf_record(region="zzz/k")])

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            evaluation.fraction_within_oracle([])


class TestEdpRecord:
    def test_derived_metrics(self):
        record = EdpRecord(
            region_id="app/k",
            application="app",
            power_cap=60.0,
            config=OpenMPConfig(8, ScheduleKind.STATIC, 64),
            time_s=1.0,
            energy_j=10.0,
            default_time_s=1.5,
            default_energy_j=30.0,
            oracle_edp=8.0,
        )
        assert record.edp == pytest.approx(10.0)
        assert record.default_edp == pytest.approx(45.0)
        assert record.edp_improvement == pytest.approx(4.5)
        assert record.normalized_edp_improvement == pytest.approx(0.8)
        assert record.speedup == pytest.approx(1.5)
        assert record.greenup == pytest.approx(3.0)


class TestEvaluationAgainstDatabase:
    def test_oracle_selection_evaluates_to_one(self, small_database):
        selections = {}
        for region_id in small_database.region_ids:
            config, _ = small_database.best_by_time(region_id, 40.0)
            selections[(region_id, 40.0)] = config
        records = evaluation.evaluate_power_constrained(small_database, selections)
        for record in records:
            assert record.normalized_speedup == pytest.approx(1.0, abs=1e-9)

    def test_default_selection_normalized_below_one(self, small_database):
        space = small_database.search_space
        selections = {
            (rid, 40.0): space.default_configuration for rid in small_database.region_ids
        }
        records = evaluation.evaluate_power_constrained(small_database, selections)
        assert all(r.speedup == pytest.approx(1.0) for r in records)
        assert all(r.normalized_speedup <= 1.0 + 1e-9 for r in records)

    def test_edp_oracle_selection_evaluates_to_one(self, small_database):
        selections = {}
        for region_id in small_database.region_ids:
            cap, config, _ = small_database.best_by_edp(region_id)
            selections[region_id] = (cap, config)
        records = evaluation.evaluate_edp(small_database, selections)
        for record in records:
            assert record.normalized_edp_improvement == pytest.approx(1.0, abs=1e-9)
            assert record.edp_improvement >= 1.0 - 1e-9


class TestLabelConversion:
    def test_performance_labels_to_selections(self, small_database):
        space = small_database.search_space
        predictions = {("gemm/kernel_gemm", 40.0): 0, ("atax/kernel_atax", 85.0): 126}
        selections = labels_to_performance_selections(predictions, space)
        assert selections[("gemm/kernel_gemm", 40.0)] == space.config_from_index(0)
        assert selections[("atax/kernel_atax", 85.0)] == space.default_configuration
        with pytest.raises(ValueError):
            labels_to_performance_selections({("x", None): 0}, space)

    def test_edp_labels_to_selections(self, small_database):
        space = small_database.search_space
        selections = labels_to_edp_selections({("gemm/kernel_gemm", None): 200}, space)
        cap, config = selections["gemm/kernel_gemm"]
        assert space.joint_index(cap, config) == 200


class TestPnPTunerApi:
    @pytest.fixture(scope="class")
    def fitted_tuner(self, small_database, small_regions_by_app):
        from repro.core.dataset import DatasetBuilder

        tuner = PnPTuner(
            system="haswell",
            objective="time",
            database=small_database,
            model_config=None,
            training_config=TrainingConfig(epochs=2, learning_rate=3e-3, seed=0),
            seed=0,
        )
        # Restrict the builder to the small test suite to keep labelling cheap.
        tuner.builder = DatasetBuilder(small_database, regions_by_app=small_regions_by_app, seed=0)
        tuner.fit()
        return tuner

    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError):
            PnPTuner(system="haswell", objective="throughput")

    def test_predict_requires_fit(self, small_database, small_regions_by_app):
        tuner = PnPTuner(system="haswell", objective="time", database=small_database)
        region = small_regions_by_app["gemm"][0]
        with pytest.raises(RuntimeError):
            tuner.predict(region, power_cap=40.0)

    def test_predict_returns_valid_configuration(self, fitted_tuner, small_regions_by_app):
        region = small_regions_by_app["trisolv"][0]
        result = fitted_tuner.predict(region, power_cap=60.0)
        assert result.power_cap == 60.0
        assert result.config in fitted_tuner.search_space.candidate_configurations()
        assert "trisolv" in result.describe()

    def test_predict_requires_power_cap_for_time_objective(self, fitted_tuner, small_regions_by_app):
        with pytest.raises(ValueError):
            fitted_tuner.predict(small_regions_by_app["gemm"][0], power_cap=None)

    def test_state_dict_roundtrip(self, fitted_tuner, small_database, small_regions_by_app):
        from repro.core.dataset import DatasetBuilder

        clone = PnPTuner(
            system="haswell",
            objective="time",
            database=small_database,
            training_config=TrainingConfig(epochs=1, seed=0),
            seed=0,
        )
        clone.builder = DatasetBuilder(small_database, regions_by_app=small_regions_by_app, seed=0)
        clone.load_state_dict(fitted_tuner.state_dict())
        region = small_regions_by_app["atax"][0]
        assert (
            clone.predict(region, power_cap=40.0).label
            == fitted_tuner.predict(region, power_cap=40.0).label
        )
