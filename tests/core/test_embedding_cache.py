"""LRU embedding-cache eviction and its interplay with cast models.

The tuner holds two weight-derived caches: the pooled-embedding LRU (keyed
by region id, content fingerprint and dtype) and the lazily built
dtype-cast models (``_cast_models``).  They have different lifecycles —
evicting an embedding must never invalidate a cast model (which would force
a full weight re-cast on the next sweep), while a weight change
(``fit``/``load_state_dict``) must clear both.
"""

import pytest

from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.utils.caching import LRUCache

CAPS = [45.0, 65.0]


@pytest.fixture()
def tuner(small_database, small_builder):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=1, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


class TestEvictionCastModelInterplay:
    def test_evicting_float64_embedding_keeps_float32_cast_model(
        self, tuner, small_regions_by_app
    ):
        # Tiny cache so real queries drive evictions.
        tuner._embedding_cache = LRUCache(maxsize=2)
        regions = small_regions_by_app["gemm"] + small_regions_by_app["atax"]
        first = regions[0]
        tuner.predict_sweep(first, CAPS, dtype="float32")
        cast = tuner._cast_models["float32"]
        # Fill the cache with other (float64) regions until the float32
        # embedding of `first` has been evicted.
        for region in regions[:3]:
            tuner.predict_sweep(region, CAPS)
        assert (first.region_id, first.fingerprint(), "float32") not in tuner._embedding_cache
        # The cast model must survive the eviction and be reused as-is.
        assert tuner._cast_models["float32"] is cast
        swept = tuner.predict_sweep(first, CAPS, dtype="float32")
        assert tuner._cast_models["float32"] is cast
        assert [r.power_cap for r in swept] == CAPS

    def test_eviction_only_reencodes_it_does_not_recast(self, tuner, small_regions_by_app):
        tuner._embedding_cache = LRUCache(maxsize=1)
        region_a = small_regions_by_app["gemm"][0]
        region_b = small_regions_by_app["atax"][0]
        tuner.predict_sweep(region_a, CAPS, dtype="float32")
        cast = tuner._cast_models["float32"]
        state_before = {k: v.copy() for k, v in cast.state_dict().items()}
        # Alternate regions through a 1-entry cache: every query evicts the
        # other's embedding, but the cast weights never change.
        for _ in range(2):
            tuner.predict_sweep(region_b, CAPS, dtype="float32")
            tuner.predict_sweep(region_a, CAPS, dtype="float32")
        assert tuner._cast_models["float32"] is cast
        for name, value in cast.state_dict().items():
            assert (value == state_before[name]).all()

    def test_evicted_embedding_is_recomputed_identically(self, tuner, small_regions_by_app):
        tuner._embedding_cache = LRUCache(maxsize=1)
        region_a = small_regions_by_app["gemm"][0]
        region_b = small_regions_by_app["atax"][0]
        key = (region_a.region_id, region_a.fingerprint(), "float64")
        tuner.predict_sweep(region_a, CAPS)
        first = tuner._embedding_cache.get(key).copy()
        tuner.predict_sweep(region_b, CAPS)  # evicts region_a
        assert key not in tuner._embedding_cache
        tuner.predict_sweep(region_a, CAPS)
        assert (tuner._embedding_cache.get(key) == first).all()

    def test_load_state_dict_clears_embeddings_and_cast_models(
        self, tuner, small_regions_by_app
    ):
        region = small_regions_by_app["gemm"][0]
        tuner.predict_sweep(region, CAPS)
        tuner.predict_sweep(region, CAPS, dtype="float32")
        assert len(tuner._embedding_cache) == 2
        assert "float32" in tuner._cast_models
        stale_cast = tuner._cast_models["float32"]
        tuner.load_state_dict(tuner.state_dict())
        assert len(tuner._embedding_cache) == 0
        assert tuner._cast_models == {}
        # The next float32 sweep builds a fresh cast from the new weights.
        tuner.predict_sweep(region, CAPS, dtype="float32")
        assert tuner._cast_models["float32"] is not stale_cast

    def test_fit_clears_embeddings_and_cast_models(self, tuner, small_regions_by_app):
        region = small_regions_by_app["gemm"][0]
        samples = tuner.build_training_samples()
        tuner.predict_sweep(region, CAPS, dtype="float32")
        assert len(tuner._embedding_cache) >= 1 and "float32" in tuner._cast_models
        tuner.fit(samples)
        assert len(tuner._embedding_cache) == 0
        assert tuner._cast_models == {}

    def test_sweep_batch_memo_survives_weight_changes(self, tuner, small_builder):
        regions = small_builder.regions()[:4]
        tuner.predict_sweep_many(regions, CAPS)
        assert len(tuner._sweep_batch_memo) == 1
        tuner.load_state_dict(tuner.state_dict())
        # The memoised collated batch is weight-independent structure; only
        # the embeddings (weight products) are invalidated.
        assert len(tuner._sweep_batch_memo) == 1
        assert len(tuner._embedding_cache) == 0
        fresh = tuner.predict_sweep_many(regions, CAPS)
        serial = [tuner.predict_sweep(region, CAPS) for region in regions]
        assert fresh == serial
