"""Tests for the measurement database (oracle sweeps, labels, caching)."""

import pytest

from repro.core.measurements import MeasurementDatabase, get_measurement_database
from repro.core.search_space import SearchSpace
from repro.hw.machine import Machine
from repro.benchsuite.registry import get_region


class TestMeasurementDatabase:
    def test_rejects_mismatched_machine_and_space(self):
        machine = Machine.named("haswell")
        with pytest.raises(ValueError):
            MeasurementDatabase(machine, SearchSpace("skylake"), [get_region("gemm/kernel_gemm")])

    def test_measure_caches_trial_zero(self, small_database):
        config = small_database.search_space.default_configuration
        before = small_database.execution_count
        a = small_database.measure("gemm/kernel_gemm", config, 60.0)
        mid = small_database.execution_count
        b = small_database.measure("gemm/kernel_gemm", config, 60.0)
        after = small_database.execution_count
        assert a.time_s == b.time_s
        assert mid == before + 1 or mid == before  # may already be cached by other tests
        assert after == mid

    def test_repeated_trials_are_not_cached(self, small_database):
        config = small_database.search_space.default_configuration
        t1 = small_database.measure("gemm/kernel_gemm", config, 60.0, trial=1)
        t2 = small_database.measure("gemm/kernel_gemm", config, 60.0, trial=2)
        assert t1.time_s != t2.time_s

    def test_unknown_region_raises(self, small_database):
        with pytest.raises(KeyError):
            small_database.measure("unknown/kernel", small_database.search_space.default_configuration, 60.0)

    def test_best_by_time_beats_or_ties_default(self, small_database):
        for region_id in small_database.region_ids:
            for cap in small_database.search_space.power_caps:
                _, best = small_database.best_by_time(region_id, cap)
                default = small_database.default_result(region_id, cap)
                assert best.time_s <= default.time_s * 1.0001

    def test_best_by_edp_is_global_minimum(self, small_database):
        region_id = "trisolv/kernel_trisolv"
        cap, config, result = small_database.best_by_edp(region_id)
        assert cap in small_database.search_space.power_caps
        # Check against a few arbitrary points.
        for other_cap in small_database.search_space.power_caps:
            default = small_database.default_result(region_id, other_cap)
            assert result.edp <= default.edp * 1.0001

    def test_labels_are_consistent_with_best(self, small_database):
        space = small_database.search_space
        region_id = "atax/kernel_atax"
        label = small_database.label_by_time(region_id, 40.0)
        best_config, _ = small_database.best_by_time(region_id, 40.0)
        assert space.config_from_index(label) == best_config

        edp_label = small_database.label_by_edp(region_id)
        cap, config, _ = small_database.best_by_edp(region_id)
        assert space.joint_from_index(edp_label) == (cap, config)

    def test_sweep_region_covers_all_candidates(self, small_database):
        results = small_database.sweep_region("gemm/kernel_gemm", 70.0)
        assert len(results) == small_database.search_space.num_omp_configurations

    def test_add_region(self, small_database):
        region = get_region("mvt/kernel_mvt")
        small_database.add_region(region)
        assert "mvt/kernel_mvt" in small_database.region_ids
        result = small_database.default_result("mvt/kernel_mvt", 85.0)
        assert result.time_s > 0


class TestSharedDatabaseFactory:
    def test_same_key_returns_same_instance(self):
        regions = [get_region("gemm/kernel_gemm")]
        a = get_measurement_database("haswell", regions=regions, seed=123)
        b = get_measurement_database("haswell", regions=regions, seed=123)
        assert a is b

    def test_extra_regions_are_added_to_existing_instance(self):
        a = get_measurement_database("haswell", regions=[get_region("gemm/kernel_gemm")], seed=321)
        b = get_measurement_database("haswell", regions=[get_region("atax/kernel_atax")], seed=321)
        assert a is b
        assert "atax/kernel_atax" in a.region_ids
