"""Equivalence and caching tests for split encoder/head inference.

Covers the engine's inference contract:

* plan-driven encoding is bit-identical to the naive reference encoder;
* ``predict_sweep`` selects exactly the labels of per-candidate reference
  predictions and runs the GNN at most once per region (LRU embedding cache);
* grouped ``predict_labels`` agrees with the seed's chunk-collate loop;
* collate-once training reproduces the seed training history exactly.
"""

import numpy as np
import pytest

from repro.core.model import ModelConfig, PnPModel, _GnnEncoder
from repro.core.training import TrainingConfig, predict_labels, train_model
from repro.core.tuner import PnPTuner
from repro.nn import _scatter
from repro.nn.data import GraphDataLoader, collate_graphs


@pytest.fixture(scope="module")
def fitted_time_tuner(small_database, small_builder, small_regions_by_app):
    config = ModelConfig(
        vocabulary_size=len(small_builder.vocabulary),
        num_classes=small_database.search_space.num_omp_configurations,
        aux_dim=1,
        seed=0,
    )
    tuner = PnPTuner(
        system="haswell",
        objective="time",
        model_config=config,
        training_config=TrainingConfig(epochs=2, seed=0),
        database=small_database,
        seed=0,
    )
    tuner.builder = small_builder
    tuner.fit(tuner.build_training_samples())
    return tuner


@pytest.fixture(scope="module")
def perf_samples(small_builder):
    return small_builder.performance_samples()


class TestEncodeHeadSplit:
    def test_planned_encoding_bit_identical_to_naive(self, fitted_time_tuner, perf_samples):
        model = fitted_time_tuner.model
        batch = collate_graphs([s.sample for s in perf_samples[:8]])
        planned = model.encode_pooled(batch)
        try:
            _GnnEncoder.use_edge_plan = False
            with _scatter.reference_kernels():
                naive = model.encode_pooled(batch)
        finally:
            _GnnEncoder.use_edge_plan = True
        assert (planned == naive).all()

    def test_forward_equals_encode_then_head(self, fitted_time_tuner, perf_samples):
        model = fitted_time_tuner.model
        model.eval()
        batch = collate_graphs([s.sample for s in perf_samples[:6]])
        from repro.nn.tensor import no_grad

        with no_grad():
            full = model(batch).data
            split = model.head(model.encode(batch), batch.aux_features).data
        assert (full == split).all()

    def test_predict_from_pooled_matches_predict(self, fitted_time_tuner, perf_samples):
        model = fitted_time_tuner.model
        batch = collate_graphs([s.sample for s in perf_samples[:6]])
        direct = model.predict(batch)
        via_split = model.predict_from_pooled(model.encode_pooled(batch), batch.aux_features)
        assert (direct == via_split).all()


class TestPredictSweep:
    def test_matches_per_candidate_reference_predictions(
        self, fitted_time_tuner, small_regions_by_app
    ):
        region = small_regions_by_app["gemm"][0]
        caps = [40.0, 50.0, 60.0, 70.0, 85.0]
        swept = fitted_time_tuner.predict_sweep(region, caps)
        assert [r.power_cap for r in swept] == caps
        # Reference: naive kernels, no plans, no compiled programs, fresh
        # encoding per candidate.
        fitted_time_tuner._embedding_cache.clear()
        try:
            _GnnEncoder.use_edge_plan = False
            PnPTuner.use_inference_programs = False
            with _scatter.reference_kernels():
                reference_labels = []
                for cap in caps:
                    fitted_time_tuner._embedding_cache.clear()
                    reference_labels.append(
                        fitted_time_tuner.predict(region, power_cap=cap).label
                    )
        finally:
            _GnnEncoder.use_edge_plan = True
            PnPTuner.use_inference_programs = True
            fitted_time_tuner._embedding_cache.clear()
        assert [r.label for r in swept] == reference_labels

    def test_runs_encoder_once_per_region(self, fitted_time_tuner, small_regions_by_app):
        region = small_regions_by_app["atax"][0]
        calls = []
        # Serving is routed through the compiled inference program; count
        # encoder passes there (the Module encoder is no longer on the path).
        program = fitted_time_tuner.compile_inference()
        original = program.encode_pooled
        fitted_time_tuner._embedding_cache.clear()
        program.encode_pooled = lambda batch: (calls.append(1), original(batch))[1]
        try:
            fitted_time_tuner.predict_sweep(region, [40.0, 60.0, 85.0])
            fitted_time_tuner.predict_sweep(region, [45.0, 55.0])
            fitted_time_tuner.predict(region, power_cap=70.0)
        finally:
            program.encode_pooled = original
            fitted_time_tuner._embedding_cache.clear()
        assert len(calls) == 1

    def test_fit_invalidates_embedding_cache(self, small_database, small_builder):
        config = ModelConfig(
            vocabulary_size=len(small_builder.vocabulary),
            num_classes=small_database.search_space.num_omp_configurations,
            aux_dim=1,
            seed=1,
        )
        tuner = PnPTuner(
            system="haswell",
            objective="time",
            model_config=config,
            training_config=TrainingConfig(epochs=1, seed=1),
            database=small_database,
            seed=1,
        )
        tuner.builder = small_builder
        samples = tuner.build_training_samples()
        tuner.fit(samples)
        region = small_builder.regions()[0]
        tuner.predict(region, power_cap=60.0)
        assert len(tuner._embedding_cache) == 1
        tuner.fit(samples)
        assert len(tuner._embedding_cache) == 0

    def test_requires_time_objective(self, small_database, small_builder):
        tuner = PnPTuner(
            system="haswell",
            objective="edp",
            training_config=TrainingConfig(epochs=1, optimizer="adam", seed=0),
            database=small_database,
            seed=0,
        )
        tuner.builder = small_builder
        tuner.fit(tuner.build_training_samples())
        with pytest.raises(ValueError):
            tuner.predict_sweep(small_builder.regions()[0], [40.0, 60.0])

    def test_empty_cap_list(self, fitted_time_tuner, small_regions_by_app):
        assert fitted_time_tuner.predict_sweep(small_regions_by_app["gemm"][0], []) == []


class TestInferenceProgramRouting:
    """Serving goes through cached compiled programs, invalidated with the
    weights; the point-predict warm path reuses the fingerprint-keyed
    embedding cache without rebuilding inference samples."""

    def _edp_tuner(self, small_database, small_builder, seed=0):
        tuner = PnPTuner(
            system="haswell",
            objective="edp",
            training_config=TrainingConfig(epochs=1, optimizer="adam", seed=seed),
            database=small_database,
            seed=seed,
        )
        tuner.builder = small_builder
        tuner.fit(tuner.build_training_samples())
        return tuner

    def test_program_cached_and_reused(self, fitted_time_tuner, small_regions_by_app):
        region = small_regions_by_app["gemm"][0]
        fitted_time_tuner.predict_sweep(region, [40.0, 60.0])
        program = fitted_time_tuner._programs["float64"]
        fitted_time_tuner.predict_sweep(region, [45.0])
        assert fitted_time_tuner._programs["float64"] is program
        assert fitted_time_tuner.compile_inference() is program

    def test_fit_invalidates_program_cache(self, small_database, small_builder):
        tuner = self._edp_tuner(small_database, small_builder)
        region = small_builder.regions()[0]
        tuner.predict(region)
        assert "float64" in tuner._programs
        tuner.fit(tuner.build_training_samples())
        assert tuner._programs == {}

    def test_load_state_dict_invalidates_program_cache(
        self, fitted_time_tuner, small_regions_by_app
    ):
        region = small_regions_by_app["gemm"][0]
        fitted_time_tuner.predict_sweep(region, [40.0])
        stale = fitted_time_tuner._programs["float64"]
        fitted_time_tuner.load_state_dict(fitted_time_tuner.state_dict())
        assert fitted_time_tuner._programs == {}
        fitted_time_tuner.predict_sweep(region, [40.0])
        assert fitted_time_tuner._programs["float64"] is not stale

    def test_direct_model_reload_flushes_serving_caches(
        self, fitted_time_tuner, small_regions_by_app
    ):
        region = small_regions_by_app["atax"][0]
        swept = fitted_time_tuner.predict_sweep(region, [40.0, 60.0])
        fitted_time_tuner.predict_sweep(region, [40.0], dtype="float32")
        stale = fitted_time_tuner._programs["float64"]
        assert len(fitted_time_tuner._embedding_cache) > 0
        # A reload that bypasses the tuner must flush every weights-derived
        # cache on the next query: embeddings, cast models and programs —
        # not just recompile the program (a cached embedding computed with
        # the old encoder must never feed the new head).
        fitted_time_tuner.model.load_state_dict(fitted_time_tuner.model.state_dict())
        again = fitted_time_tuner.predict_sweep(region, [40.0, 60.0])
        assert fitted_time_tuner._programs["float64"] is not stale
        assert "float32" not in fitted_time_tuner._cast_models
        assert [r.label for r in again] == [r.label for r in swept]
        fitted_time_tuner._embedding_cache.clear()

    def test_program_routing_matches_module_routing(
        self, fitted_time_tuner, small_regions_by_app
    ):
        region = small_regions_by_app["trisolv"][0]
        caps = [40.0, 55.0, 70.0, 85.0]
        fitted_time_tuner._embedding_cache.clear()
        routed = fitted_time_tuner.predict_sweep(region, caps)
        try:
            PnPTuner.use_inference_programs = False
            fitted_time_tuner._embedding_cache.clear()
            module = fitted_time_tuner.predict_sweep(region, caps)
        finally:
            PnPTuner.use_inference_programs = True
            fitted_time_tuner._embedding_cache.clear()
        assert routed == module

    def test_float32_sweep_compiles_float32_program(
        self, fitted_time_tuner, small_regions_by_app
    ):
        region = small_regions_by_app["gemm"][0]
        fitted_time_tuner.predict_sweep(region, [40.0], dtype="float32")
        program = fitted_time_tuner._programs["float32"]
        assert program.dtype == np.float32

    def test_warm_predict_skips_sample_construction(
        self, small_database, small_builder
    ):
        tuner = self._edp_tuner(small_database, small_builder, seed=2)
        region = small_builder.regions()[1]
        cold = tuner.predict(region)
        calls = []
        original = tuner.builder.inference_sample

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        tuner.builder.inference_sample = counting
        try:
            warm = tuner.predict(region)
        finally:
            tuner.builder.inference_sample = original
        assert calls == []
        assert warm == cold

    def test_changed_region_rebuilds_sample_on_predict(
        self, small_database, small_builder
    ):
        tuner = self._edp_tuner(small_database, small_builder, seed=3)
        region = small_builder.regions()[2]
        tuner.predict(region)
        from dataclasses import replace as dc_replace

        modified = dc_replace(region, nest_depth=region.nest_depth + 1)
        assert modified.fingerprint() != region.fingerprint()
        calls = []
        original = tuner.builder.inference_sample

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        tuner.builder.inference_sample = counting
        try:
            tuner.predict(modified)
        finally:
            tuner.builder.inference_sample = original
        assert calls == [1]
        # Restore the session-scoped builder/database registration.
        tuner.builder.inference_sample(region, power_cap=60.0)

    def test_training_marks_program_stale(self, small_database, small_builder):
        config = ModelConfig(
            vocabulary_size=len(small_builder.vocabulary),
            num_classes=small_database.search_space.num_omp_configurations,
            aux_dim=1,
            seed=4,
        )
        model = PnPModel(config)
        program = model.compile_inference()
        assert not program.stale()
        train_model(
            model, small_builder.performance_samples()[:16], TrainingConfig(epochs=1, seed=4)
        )
        # The optimizer rebound every parameter array: the pre-training
        # program must report stale so caches recompile.
        assert program.stale()

    def test_counters_predict_rebuilds_sample_on_warm_cache(
        self, small_database, small_builder
    ):
        """The dynamic (counters) variant must not pair a cached embedding
        with counters profiled for a different registration of the id."""
        tuner = PnPTuner(
            system="haswell",
            objective="edp",
            include_counters=True,
            training_config=TrainingConfig(epochs=1, optimizer="adam", seed=5),
            database=small_database,
            seed=5,
        )
        tuner.builder = small_builder
        tuner.fit(tuner.build_training_samples())
        region = small_builder.regions()[0]
        cold = tuner.predict(region)
        calls = []
        original = tuner.builder.inference_sample

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        tuner.builder.inference_sample = counting
        try:
            warm = tuner.predict(region)
        finally:
            tuner.builder.inference_sample = original
        # Warm in the embedding cache, but the sample (and its counters) is
        # rebuilt so the aux row always matches this region version.
        assert calls == [1]
        assert warm == cold

    def test_predict_samples_routes_through_program(self, fitted_time_tuner, perf_samples):
        program = fitted_time_tuner.compile_inference()
        calls = []
        original = program.encode_pooled
        program.encode_pooled = lambda batch: (calls.append(1), original(batch))[1]
        try:
            results = fitted_time_tuner.predict_samples(perf_samples[:8])
        finally:
            program.encode_pooled = original
        assert calls  # the experiments path runs the compiled runtime
        assert [r.label for r in results] == [
            int(lab) for lab in predict_labels(fitted_time_tuner.model, perf_samples[:8])
        ]


class TestGroupedPredictLabels:
    def test_matches_seed_chunked_prediction(self, fitted_time_tuner, perf_samples):
        model = fitted_time_tuner.model
        grouped = predict_labels(model, perf_samples)
        # The seed implementation: collate 32-sample chunks in order and run
        # the full model on each.
        chunked = np.empty(len(perf_samples), dtype=np.int64)
        for start in range(0, len(perf_samples), 32):
            chunk = perf_samples[start : start + 32]
            chunked[start : start + len(chunk)] = model.predict(
                collate_graphs([s.sample for s in chunk])
            )
        assert (grouped == chunked).all()

    def test_empty_input(self, fitted_time_tuner):
        assert predict_labels(fitted_time_tuner.model, []).size == 0


class TestCollateOnceTrainingDeterminism:
    def test_training_history_bit_identical_to_seed_path(self, small_builder, small_database):
        samples = small_builder.performance_samples()[:24]
        config = ModelConfig(
            vocabulary_size=len(small_builder.vocabulary),
            num_classes=small_database.search_space.num_omp_configurations,
            aux_dim=1,
            seed=3,
        )
        training = TrainingConfig(epochs=3, seed=3)

        def run_seed_path():
            model = PnPModel(config)
            original_init = GraphDataLoader.__init__

            def per_epoch_collate(loader, data, **kwargs):
                kwargs["cache_collate"] = False
                original_init(loader, data, **kwargs)

            GraphDataLoader.__init__ = per_epoch_collate
            try:
                _GnnEncoder.use_edge_plan = False
                with _scatter.reference_kernels():
                    history = train_model(model, samples, training)
            finally:
                GraphDataLoader.__init__ = original_init
                _GnnEncoder.use_edge_plan = True
            return history, model

        engine_model = PnPModel(config)
        engine_history = train_model(engine_model, samples, training)
        seed_history, seed_model = run_seed_path()

        assert engine_history.losses == seed_history.losses
        assert engine_history.accuracies == seed_history.accuracies
        engine_state = engine_model.state_dict()
        seed_state = seed_model.state_dict()
        assert all((engine_state[k] == seed_state[k]).all() for k in engine_state)


class TestPrecisionKnobs:
    """dtype= knobs on PnPModel / train_model / predict_sweep."""

    TOL = dict(rtol=5e-4, atol=5e-4)

    def _config(self, small_builder, small_database, **overrides):
        from dataclasses import replace

        base = ModelConfig(
            vocabulary_size=len(small_builder.vocabulary),
            num_classes=small_database.search_space.num_omp_configurations,
            aux_dim=1,
            seed=0,
        )
        return replace(base, **overrides) if overrides else base

    def test_float32_model_trains_and_tracks_float64(self, small_builder, small_database):
        samples = small_builder.performance_samples()[:24]
        training = TrainingConfig(epochs=2, seed=0)
        config64 = self._config(small_builder, small_database)
        config32 = self._config(small_builder, small_database, dtype="float32")
        history64 = train_model(PnPModel(config64), samples, training)
        model32 = PnPModel(config32)
        history32 = train_model(model32, samples, training)
        assert model32.dtype == np.float32
        assert all(p.data.dtype == np.float32 for p in model32.parameters())
        np.testing.assert_allclose(history32.losses, history64.losses, **self.TOL)

    def test_training_config_dtype_casts_the_model(self, small_builder, small_database):
        samples = small_builder.performance_samples()[:16]
        model = PnPModel(self._config(small_builder, small_database))
        assert model.dtype == np.float64
        train_model(model, samples, TrainingConfig(epochs=1, seed=0, dtype="float32"))
        assert model.dtype == np.float32

    def test_training_config_batches_shuffle_mode(self, small_builder, small_database):
        samples = small_builder.performance_samples()[:24]
        model = PnPModel(self._config(small_builder, small_database))
        history = train_model(
            model, samples, TrainingConfig(epochs=2, seed=0, shuffle="batches")
        )
        assert len(history.losses) == 2
        assert all(np.isfinite(history.losses))

    def test_predict_sweep_dtype_override(self, fitted_time_tuner, small_regions_by_app):
        region = small_regions_by_app["gemm"][0]
        caps = [40.0, 50.0, 60.0, 70.0, 85.0]
        fitted_time_tuner._embedding_cache.clear()
        swept64 = fitted_time_tuner.predict_sweep(region, caps)
        swept32 = fitted_time_tuner.predict_sweep(region, caps, dtype="float32")
        assert [r.power_cap for r in swept32] == caps
        # The cast model serves at float32 end to end...
        cast = fitted_time_tuner._cast_models["float32"]
        assert cast.dtype == np.float32
        cached = fitted_time_tuner._embedding_cache.get(
            (region.region_id, region.fingerprint(), "float32")
        )
        assert cached is not None and cached.dtype == np.float32
        # ...from weights that are exact rounded twins of the fitted model's.
        state64 = fitted_time_tuner.model.state_dict()
        for name, value in cast.state_dict().items():
            assert np.array_equal(value, state64[name].astype(np.float32))
        # Label disagreements can only come from near-ties; logits must agree.
        pooled64 = fitted_time_tuner._embedding_cache.get(
            (region.region_id, region.fingerprint(), "float64")
        )
        np.testing.assert_allclose(
            cached, pooled64.astype(np.float32), rtol=1e-4, atol=1e-4
        )
        labels_agree = [a.label == b.label for a, b in zip(swept64, swept32)]
        assert sum(labels_agree) >= len(caps) - 1

    def test_cast_model_reused_and_invalidated(
        self, small_database, small_builder, small_regions_by_app
    ):
        tuner = PnPTuner(
            system="haswell",
            objective="time",
            model_config=self._config(small_builder, small_database),
            training_config=TrainingConfig(epochs=1, seed=0),
            database=small_database,
            seed=0,
        )
        tuner.builder = small_builder
        samples = tuner.build_training_samples()
        tuner.fit(samples)
        region = small_regions_by_app["gemm"][0]
        tuner.predict_sweep(region, [40.0, 60.0], dtype="float32")
        first_cast = tuner._cast_models["float32"]
        tuner.predict_sweep(region, [45.0], dtype="float32")
        assert tuner._cast_models["float32"] is first_cast
        tuner.fit(samples)
        assert tuner._cast_models == {}

    def test_tuner_dtype_argument_builds_float32_model(self, small_database, small_builder):
        tuner = PnPTuner(
            system="haswell",
            objective="time",
            model_config=self._config(small_builder, small_database),
            training_config=TrainingConfig(epochs=1, seed=0),
            database=small_database,
            seed=0,
            dtype="float32",
        )
        assert tuner.model.dtype == np.float32
        assert tuner.model_config.dtype == "float32"

    def test_sweep_with_model_dtype_skips_cast(self, fitted_time_tuner, small_regions_by_app):
        region = small_regions_by_app["atax"][0]
        fitted_time_tuner.predict_sweep(region, [40.0], dtype="float64")
        assert "float64" not in fitted_time_tuner._cast_models


class TestInferenceBufferAccounting:
    def test_stats_populate_after_sweeps(self, fitted_time_tuner, small_regions_by_app):
        regions = [rs[0] for rs in small_regions_by_app.values()]
        fitted_time_tuner.predict_sweep_many(regions, [40.0, 60.0])
        stats = fitted_time_tuner.inference_cache_stats()
        assert stats["programs"] >= 1
        assert stats["sweep_batch_memo_entries"] >= 1
        # The memoised sweep batches pin their plans, so arenas stay live.
        assert stats["bound_plans"] >= 1
        assert 0 < stats["arena_slabs"] <= stats["arena_buffers"]
        assert stats["arena_bytes"] > 0
        assert stats["head_workspaces"] >= 1
        assert stats["head_bytes"] > 0

    def test_clear_sheds_buffers_and_keeps_predictions(
        self, fitted_time_tuner, small_regions_by_app
    ):
        region = small_regions_by_app["gemm"][0]
        caps = [40.0, 60.0]
        before = [p.label for p in fitted_time_tuner.predict_sweep(region, caps)]
        program = fitted_time_tuner.compile_inference()
        fitted_time_tuner.clear_inference_buffers()
        stats = fitted_time_tuner.inference_cache_stats()
        assert stats["programs"] >= 1  # compiled programs survive the clear
        assert fitted_time_tuner.compile_inference() is program
        assert stats["arena_bytes"] == 0
        assert stats["head_workspaces"] == 0
        assert stats["sweep_batch_memo_entries"] == 0
        fitted_time_tuner._embedding_cache.clear()
        after = [p.label for p in fitted_time_tuner.predict_sweep(region, caps)]
        assert after == before
