"""Tests for the execution (time/energy) model under power caps."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchsuite.registry import get_region
from repro.hw.machine import Machine
from repro.openmp.config import OpenMPConfig, ScheduleKind, default_config
from repro.openmp.execution import ExecutionEngine
from repro.openmp.region import ImbalancePattern, RegionCharacteristics


def quiet_engine(system="haswell", seed=0):
    """Engine with measurement noise disabled (for monotonicity checks)."""
    return ExecutionEngine(Machine.named(system, seed=seed, noise_fraction=0.0))


def make_region(**overrides):
    base = dict(
        region_id="synthetic/kernel",
        application="synthetic",
        iterations=500_000,
        flops_per_iteration=60.0,
        int_ops_per_iteration=20.0,
        memory_bytes_per_iteration=8.0,
        working_set_bytes=8 << 20,
        reuse_factor=0.8,
    )
    base.update(overrides)
    return RegionCharacteristics(**base)


class TestExecutionBasics:
    def test_result_fields_positive(self):
        engine = quiet_engine()
        result = engine.run(make_region(), OpenMPConfig(8, ScheduleKind.STATIC, 64), 60.0)
        assert result.time_s > 0
        assert result.energy_joules > 0
        assert result.avg_power_watts > 0
        assert result.edp == pytest.approx(result.time_s * result.energy_joules)
        assert result.imbalance_factor >= 1.0

    def test_power_respects_cap(self):
        engine = quiet_engine()
        for cap in (40.0, 60.0, 70.0, 85.0):
            result = engine.run(make_region(), default_config(32), cap)
            assert result.avg_power_watts <= cap * 1.02

    def test_deeper_cap_slows_compute_bound_kernel(self):
        engine = quiet_engine()
        region = make_region()
        config = default_config(32)
        t_low = engine.run(region, config, 40.0).time_s
        t_high = engine.run(region, config, 85.0).time_s
        assert t_low > t_high

    def test_threads_help_compute_bound_kernel_at_tdp(self):
        engine = quiet_engine()
        region = make_region()
        t1 = engine.run(region, OpenMPConfig(1, ScheduleKind.STATIC, 64), 85.0).time_s
        t16 = engine.run(region, OpenMPConfig(16, ScheduleKind.STATIC, 64), 85.0).time_s
        assert t16 < t1 / 4.0

    def test_memory_bound_kernel_saturates_with_threads(self):
        engine = quiet_engine()
        region = make_region(
            flops_per_iteration=2.0,
            memory_bytes_per_iteration=64.0,
            working_set_bytes=1 << 30,
            reuse_factor=0.05,
        )
        t4 = engine.run(region, OpenMPConfig(4, ScheduleKind.STATIC, 64), 85.0).time_s
        t16 = engine.run(region, OpenMPConfig(16, ScheduleKind.STATIC, 64), 85.0).time_s
        # Far from the 4x scaling a compute-bound kernel would show.
        assert t16 > t4 * 0.55

    def test_tiny_kernel_prefers_few_threads_under_deep_cap(self):
        engine = quiet_engine()
        region = get_region("LULESH/ApplyAccelerationBoundaryConditionsForNodes")
        many = engine.run(region, default_config(32), 40.0).time_s
        few = engine.run(region, OpenMPConfig(2, ScheduleKind.STATIC, 64), 40.0).time_s
        assert few < many

    def test_dynamic_scheduling_overhead_with_tiny_chunks(self):
        engine = quiet_engine()
        region = make_region(iterations=2_000_000, flops_per_iteration=4.0)
        coarse = engine.run(region, OpenMPConfig(16, ScheduleKind.DYNAMIC, 512), 85.0).time_s
        fine = engine.run(region, OpenMPConfig(16, ScheduleKind.DYNAMIC, 1), 85.0).time_s
        assert fine > coarse

    def test_dynamic_fixes_linear_imbalance(self):
        # Coarse-grained iterations (so dispatch overhead is negligible) with a
        # strong linear cost ramp: block-static suffers the ramp, dynamic does not.
        engine = quiet_engine()
        region = make_region(
            flops_per_iteration=600.0,
            iteration_cost_cv=0.55,
            imbalance_pattern=ImbalancePattern.LINEAR,
        )
        static = engine.run(region, OpenMPConfig(16, ScheduleKind.STATIC, None), 85.0)
        dynamic = engine.run(region, OpenMPConfig(16, ScheduleKind.DYNAMIC, 256), 85.0)
        assert static.imbalance_factor > dynamic.imbalance_factor
        assert dynamic.time_s < static.time_s

    def test_serial_fraction_limits_scaling(self):
        engine = quiet_engine()
        amdahl = make_region(serial_fraction=0.3)
        t1 = engine.run(amdahl, OpenMPConfig(1, ScheduleKind.STATIC, 64), 85.0).time_s
        t16 = engine.run(amdahl, OpenMPConfig(16, ScheduleKind.STATIC, 64), 85.0).time_s
        assert t1 / t16 < 3.5  # Amdahl bound for 30% serial is ~3.1x


class TestNoiseAndDeterminism:
    def test_trial_zero_is_deterministic(self):
        engine = ExecutionEngine(Machine.named("haswell", seed=5))
        region = make_region()
        config = OpenMPConfig(8, ScheduleKind.GUIDED, 32)
        a = engine.run(region, config, 60.0)
        b = ExecutionEngine(Machine.named("haswell", seed=5)).run(region, config, 60.0)
        assert a.time_s == b.time_s and a.energy_joules == b.energy_joules

    def test_trials_scatter_but_stay_close(self):
        engine = ExecutionEngine(Machine.named("haswell", seed=5, noise_fraction=0.02))
        region = make_region()
        config = OpenMPConfig(8, ScheduleKind.STATIC, 64)
        times = [engine.run(region, config, 60.0, trial=t).time_s for t in range(5)]
        assert len(set(times)) > 1
        assert max(times) / min(times) < 1.2

    def test_rapl_accounting_hook(self):
        machine = Machine.named("haswell", seed=1)
        engine = ExecutionEngine(machine)
        before = machine.rapl.read_energy_joules()
        result = engine.run(make_region(), default_config(32), 60.0, account_rapl=True)
        after = machine.rapl.read_energy_joules()
        assert after - before == pytest.approx(result.energy_joules, rel=1e-3)

    def test_speedup_and_greenup_helpers(self):
        engine = quiet_engine()
        region = make_region()
        fast = engine.run(region, OpenMPConfig(16, ScheduleKind.STATIC, 64), 85.0)
        slow = engine.run(region, OpenMPConfig(1, ScheduleKind.STATIC, 64), 85.0)
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(fast) < 1.0
        assert fast.greenup_over(slow) > 1.0


class TestExecutionProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        threads=st.sampled_from([1, 2, 4, 8, 16, 32]),
        schedule=st.sampled_from(list(ScheduleKind)),
        chunk=st.sampled_from([1, 32, 256]),
        cap=st.sampled_from([40.0, 60.0, 70.0, 85.0]),
    )
    def test_results_always_finite_and_capped(self, threads, schedule, chunk, cap):
        engine = quiet_engine()
        result = engine.run(make_region(), OpenMPConfig(threads, schedule, chunk), cap)
        assert result.time_s > 0 and result.energy_joules > 0
        assert result.avg_power_watts <= cap * 1.02
        assert result.frequency_ghz <= engine.machine.processor.max_freq_ghz
