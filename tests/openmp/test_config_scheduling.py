"""Tests for OpenMP configurations and the loop-scheduling simulator."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.benchsuite.registry import get_region
from repro.openmp.config import OpenMPConfig, ScheduleKind, default_config
from repro.openmp.region import ImbalancePattern, RegionCharacteristics
from repro.openmp.scheduling import simulate_schedule


def make_region(**overrides):
    base = dict(
        region_id="test/kernel",
        application="test",
        iterations=10_000,
        flops_per_iteration=10.0,
        int_ops_per_iteration=5.0,
        memory_bytes_per_iteration=16.0,
        working_set_bytes=1 << 20,
        reuse_factor=0.5,
    )
    base.update(overrides)
    return RegionCharacteristics(**base)


class TestOpenMPConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OpenMPConfig(0, ScheduleKind.STATIC, 8)
        with pytest.raises(ValueError):
            OpenMPConfig(4, ScheduleKind.STATIC, 0)

    def test_labels_and_tuples_roundtrip(self):
        config = OpenMPConfig(8, ScheduleKind.DYNAMIC, 64)
        assert config.label() == "t8-dynamic-c64"
        assert OpenMPConfig.from_tuple(config.as_tuple()) == config
        default = default_config(32)
        assert default.label() == "t32-static-cdef"
        assert OpenMPConfig.from_tuple(default.as_tuple()) == default

    def test_effective_chunk(self):
        assert OpenMPConfig(4, ScheduleKind.STATIC, None).effective_chunk(100) == 25
        assert OpenMPConfig(4, ScheduleKind.DYNAMIC, None).effective_chunk(100) == 1
        assert OpenMPConfig(4, ScheduleKind.DYNAMIC, 512).effective_chunk(100) == 100

    def test_schedule_from_string(self):
        assert ScheduleKind.from_string(" GUIDED ") == ScheduleKind.GUIDED
        with pytest.raises(ValueError):
            ScheduleKind.from_string("auto")

    def test_default_config_validation(self):
        with pytest.raises(ValueError):
            default_config(0)


class TestScheduleSimulation:
    def test_uniform_static_is_balanced(self):
        # Only chunk-quantisation imbalance remains (10,000 iterations in 64-
        # iteration chunks over 8 threads -> at most one extra chunk per thread).
        outcome = simulate_schedule(make_region(), OpenMPConfig(8, ScheduleKind.STATIC, 64))
        assert outcome.imbalance_factor == pytest.approx(1.0, abs=0.06)
        assert outcome.num_dispatches == 0

    def test_linear_imbalance_hurts_static_block_schedules(self):
        region = make_region(iteration_cost_cv=0.5, imbalance_pattern=ImbalancePattern.LINEAR)
        # Default static: one contiguous block per thread -> strong imbalance.
        static = simulate_schedule(region, OpenMPConfig(8, ScheduleKind.STATIC, None))
        dynamic = simulate_schedule(region, OpenMPConfig(8, ScheduleKind.DYNAMIC, 8))
        assert static.imbalance_factor > 1.2
        assert dynamic.imbalance_factor < static.imbalance_factor

    def test_dynamic_dispatch_count_matches_chunks(self):
        region = make_region(iterations=1000)
        outcome = simulate_schedule(region, OpenMPConfig(4, ScheduleKind.DYNAMIC, 10))
        assert outcome.num_chunks == 100
        assert outcome.num_dispatches == 100

    def test_huge_iteration_counts_are_aggregated_but_counted(self):
        region = make_region(iterations=5_000_000)
        outcome = simulate_schedule(region, OpenMPConfig(16, ScheduleKind.DYNAMIC, 1))
        assert outcome.num_dispatches == 5_000_000
        assert outcome.imbalance_factor >= 1.0

    def test_guided_produces_fewer_chunks_than_dynamic(self):
        region = make_region(iterations=100_000)
        guided = simulate_schedule(region, OpenMPConfig(8, ScheduleKind.GUIDED, 8))
        dynamic = simulate_schedule(region, OpenMPConfig(8, ScheduleKind.DYNAMIC, 8))
        assert guided.num_chunks < dynamic.num_chunks

    def test_deterministic_for_random_pattern(self):
        region = make_region(iteration_cost_cv=0.4, imbalance_pattern=ImbalancePattern.RANDOM)
        config = OpenMPConfig(8, ScheduleKind.STATIC, 32)
        a = simulate_schedule(region, config, seed=1)
        b = simulate_schedule(region, config, seed=1)
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(
        threads=st.sampled_from([1, 2, 4, 8, 16, 32]),
        schedule=st.sampled_from(list(ScheduleKind)),
        chunk=st.sampled_from([1, 8, 32, 64, 128, 256, 512]),
        iterations=st.integers(min_value=64, max_value=2_000_000),
        cv=st.floats(min_value=0.0, max_value=1.0),
        pattern=st.sampled_from(list(ImbalancePattern)),
    )
    def test_invariants(self, threads, schedule, chunk, iterations, cv, pattern):
        region = make_region(iterations=iterations, iteration_cost_cv=cv, imbalance_pattern=pattern)
        outcome = simulate_schedule(region, OpenMPConfig(threads, schedule, chunk))
        assert outcome.imbalance_factor >= 1.0
        # A single thread is always perfectly "balanced".
        if threads == 1:
            assert outcome.imbalance_factor == pytest.approx(1.0, abs=1e-6)
        assert outcome.num_chunks >= 1
        if schedule == ScheduleKind.STATIC:
            assert outcome.num_dispatches == 0
        else:
            assert outcome.num_dispatches == outcome.num_chunks
        assert outcome.chunk_size >= 1


class TestRegionCharacteristics:
    def test_validation_errors(self):
        with pytest.raises(ValueError):
            make_region(iterations=0)
        with pytest.raises(ValueError):
            make_region(reuse_factor=0.0)
        with pytest.raises(ValueError):
            make_region(serial_fraction=1.0)
        with pytest.raises(ValueError):
            make_region(flops_per_iteration=0.0, int_ops_per_iteration=0.0)

    def test_derived_quantities(self):
        region = make_region(serial_fraction=0.2)
        assert region.ops_per_iteration() == pytest.approx(12.5)
        assert region.parallel_ops() == pytest.approx(125_000.0)
        assert region.serial_ops() == pytest.approx(region.parallel_ops() * 0.25)
        assert region.total_ops() == pytest.approx(region.parallel_ops() + region.serial_ops())
        assert region.arithmetic_intensity() == pytest.approx(10.0 / 16.0)

    def test_dram_traffic_fraction_monotone_in_working_set(self):
        small = make_region(working_set_bytes=1 << 20).dram_traffic_fraction(20 * 2**20)
        large = make_region(working_set_bytes=1 << 30).dram_traffic_fraction(20 * 2**20)
        assert 0.0 < small < large <= 1.0

    def test_with_iterations_copy(self):
        region = make_region()
        scaled = region.with_iterations(123)
        assert scaled.iterations == 123 and region.iterations == 10_000

    def test_real_suite_region_lookup(self):
        region = get_region("trisolv/kernel_trisolv")
        assert region.application == "trisolv"
        assert region.summary()["iterations"] > 0
