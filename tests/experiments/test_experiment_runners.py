"""Integration tests of the experiment runners (smoke profile).

These exercise the same code paths as the benchmark harness on a 4-application
subset so that figure regeneration failures are caught by ``pytest tests/``
long before the (much longer) benchmark run.
"""

import pytest

from repro.experiments import (
    fast_profile,
    full_profile,
    run_motivating_example,
    run_power_constrained,
    run_transfer_study,
    smoke_profile,
)
from repro.experiments.power_constrained import DEFAULT, PNP_STATIC
from repro.experiments.reporting import format_per_application_series, format_summary, format_table


class TestProfiles:
    def test_profile_factories(self):
        assert full_profile().loocv is True
        assert fast_profile().loocv is False
        smoke = smoke_profile()
        assert smoke.applications is not None and len(smoke.applications) == 4

    def test_with_overrides(self):
        profile = fast_profile().with_overrides(epochs=3, applications=("gemm",))
        assert profile.epochs == 3 and profile.applications == ("gemm",)
        # The original is unchanged (profiles are frozen).
        assert fast_profile().epochs != 3 or fast_profile().applications is None

    def test_model_and_training_config_derivation(self):
        profile = smoke_profile()
        model_config = profile.model_config(vocabulary_size=100, num_classes=127, aux_dim=1)
        assert model_config.num_rgcn_layers == profile.num_rgcn_layers
        training = profile.training_config("adam")
        assert training.optimizer == "adam"
        assert training.epochs == profile.epochs
        assert training.shuffle is True  # profiles default to sample mixing

    def test_shuffle_knob_threads_into_training_config(self):
        profile = smoke_profile().with_overrides(shuffle="batches")
        assert profile.training_config().shuffle == "batches"
        with pytest.raises(ValueError):
            profile.with_overrides(shuffle="nonsense").training_config()


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1.23456], ["yy", 2.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text and "yy" in text

    def test_format_per_application_series_handles_missing(self):
        text = format_per_application_series(
            {"tuner": {"app1": 0.5}}, applications=["app1", "app2"]
        )
        assert "app2" in text and "nan" in text

    def test_format_summary(self):
        assert "metric" in format_summary({"x": 1})


class TestMotivatingExample:
    def test_structure_matches_section1(self):
        result = run_motivating_example("haswell")
        caps = sorted(result.best_speedups)
        assert caps == [40.0, 60.0, 70.0, 85.0]
        speedups = [result.best_speedups[c][1] for c in caps]
        # Deep caps leave the most room for improvement over the default.
        assert speedups[0] == max(speedups)
        assert all(s >= 1.0 for s in speedups)
        assert result.best_edp_greenup > 1.0
        text = result.format()
        assert "min EDP" in text and "40W" in text


@pytest.fixture(scope="module")
def smoke_power_result():
    return run_power_constrained("haswell", smoke_profile())


class TestPowerConstrainedRunner:
    def test_contains_expected_tuners(self, smoke_power_result):
        assert DEFAULT in smoke_power_result.records
        assert PNP_STATIC in smoke_power_result.records
        assert "BLISS" in smoke_power_result.records
        assert "OpenTuner" in smoke_power_result.records

    def test_record_counts(self, smoke_power_result):
        from repro.benchsuite.registry import regions_by_application

        profile = smoke_profile()
        num_regions = sum(
            len(regions)
            for name, regions in regions_by_application().items()
            if name in profile.applications
        )
        for records in smoke_power_result.records.values():
            assert len(records) == num_regions * 4

    def test_default_speedup_is_one(self, smoke_power_result):
        for cap, value in smoke_power_result.geomean_speedups(DEFAULT).items():
            assert value == pytest.approx(1.0, abs=1e-6)

    def test_normalized_speedups_at_most_one(self, smoke_power_result):
        for records in smoke_power_result.records.values():
            for record in records:
                assert record.normalized_speedup <= 1.0 + 1e-9

    def test_figure_and_summary_render(self, smoke_power_result):
        figure = smoke_power_result.format_figure(40.0)
        assert "gemm" in figure and "LULESH" in figure
        summary = smoke_power_result.summary()
        assert any("BLISS" in key for key in summary)


class TestTransferStudy:
    def test_transfer_is_faster_and_sane(self):
        profile = smoke_profile().with_overrides(epochs=3)
        result = run_transfer_study("haswell", "skylake", profile)
        assert result.transfer_training_seconds < result.scratch_training_seconds
        assert 0.0 < result.transfer_geomean_normalized <= 1.0
        assert 0.0 < result.scratch_geomean_normalized <= 1.0
        assert "training speedup" in result.summary()
