"""Process-sharded experiment plumbing: fold-parallel CV and sharded sweeps.

Sharding is a wall-clock decision only — both paths must return exactly the
selections of their serial counterparts.
"""

import pytest

from repro.core.dataset import TuningScenario
from repro.core.model import ModelConfig
from repro.core.training import TrainingConfig
from repro.core.tuner import PnPTuner
from repro.experiments.common import (
    experiment_builder,
    pnp_cross_validated_selections,
    sharded_performance_selections,
)
from repro.experiments.profiles import smoke_profile
from repro.serve import LocalFleet


@pytest.fixture(scope="module")
def profile():
    return smoke_profile()


@pytest.fixture(scope="module")
def builder(profile):
    return experiment_builder("haswell", profile)


class TestFoldParallelCrossValidation:
    def test_selections_identical_to_serial(self, builder, profile):
        samples = builder.performance_samples()
        serial = pnp_cross_validated_selections(
            builder,
            samples,
            profile,
            TuningScenario.PERFORMANCE,
            include_counters=False,
            optimizer="adamw",
        )
        sharded = pnp_cross_validated_selections(
            builder,
            samples,
            profile,
            TuningScenario.PERFORMANCE,
            include_counters=False,
            optimizer="adamw",
            num_workers=2,
        )
        assert sharded == serial

    def test_train_hook_falls_back_to_serial(self, builder, profile):
        samples = builder.performance_samples()
        hook_calls = []

        def hook(model, train):
            hook_calls.append(len(train))
            return None

        selections = pnp_cross_validated_selections(
            builder,
            samples,
            profile,
            TuningScenario.PERFORMANCE,
            include_counters=False,
            optimizer="adamw",
            train_hook=hook,
            num_workers=4,
        )
        assert hook_calls  # the hook ran → the serial path was taken
        assert selections


class TestShardedRegionLoop:
    def test_selections_identical_to_serial_sweep(self, builder, profile):
        database = builder.database
        config = ModelConfig(
            vocabulary_size=len(builder.vocabulary),
            num_classes=database.search_space.num_omp_configurations,
            aux_dim=1,
            seed=0,
        )
        tuner = PnPTuner(
            system="haswell",
            objective="time",
            model_config=config,
            training_config=TrainingConfig(epochs=2, seed=0),
            database=database,
            seed=0,
        )
        tuner.builder = builder
        tuner.fit(tuner.build_training_samples())
        regions = builder.regions()
        caps = [45.0, 65.0, 85.0]
        sharded = sharded_performance_selections(tuner, regions, caps, num_workers=2)
        expected = {}
        for region in regions:
            for result in tuner.predict_sweep(region, caps):
                expected[(region.region_id, float(result.power_cap))] = result.config
        assert sharded == expected

    def test_fleet_routing_identical_to_serial_sweep(self, builder, profile):
        database = builder.database
        config = ModelConfig(
            vocabulary_size=len(builder.vocabulary),
            num_classes=database.search_space.num_omp_configurations,
            aux_dim=1,
            seed=0,
        )
        tuner = PnPTuner(
            system="haswell",
            objective="time",
            model_config=config,
            training_config=TrainingConfig(epochs=2, seed=0),
            database=database,
            seed=0,
        )
        tuner.builder = builder
        tuner.fit(tuner.build_training_samples())
        regions = builder.regions()
        caps = [45.0, 65.0, 85.0]
        expected = {}
        for region in regions:
            for result in tuner.predict_sweep(region, caps):
                expected[(region.region_id, float(result.power_cap))] = result.config
        with LocalFleet(tuner, num_nodes=2) as fleet:
            selections = sharded_performance_selections(tuner, regions, caps, fleet=fleet)
        assert selections == expected
