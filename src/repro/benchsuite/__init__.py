"""The evaluation benchmark suite: 30 applications, 68 OpenMP regions.

The paper evaluates on 25 PolyBench kernels plus six mini/proxy applications
(XSBench, RSBench, miniFE, miniAMR, Quicksilver, LULESH) with 68 OpenMP
regions in total.  This package describes each of those regions as a
:class:`~repro.openmp.region.RegionCharacteristics` object (the workload
model the execution simulator runs) and generates matching outlined IR for
each region (the static representation the GNN models), so the static and
dynamic views of every region are mutually consistent.

Entry points:

* :func:`~repro.benchsuite.registry.full_suite` — all 30 applications;
* :func:`~repro.benchsuite.registry.all_regions` — all 68 regions;
* :func:`~repro.benchsuite.codegen.generate_application_module` — IR for one
  application, with one outlined function per region.
"""

from repro.benchsuite.registry import (
    BenchmarkApplication,
    full_suite,
    all_regions,
    get_application,
    application_names,
    regions_by_application,
)
from repro.benchsuite.codegen import generate_application_module, generate_region_function
from repro.benchsuite import polybench, proxyapps

__all__ = [
    "BenchmarkApplication",
    "full_suite",
    "all_regions",
    "get_application",
    "application_names",
    "regions_by_application",
    "generate_application_module",
    "generate_region_function",
    "polybench",
    "proxyapps",
]
