"""Mini/proxy applications: XSBench, RSBench, miniFE, miniAMR, Quicksilver, LULESH.

These six applications contribute 25 of the suite's 68 OpenMP regions and
cover behaviours PolyBench lacks: latency-bound random table lookups with
heavy branching (XSBench/RSBench), Monte-Carlo particle tracking with atomic
tallies (Quicksilver), unstructured sparse solves (miniFE), block-structured
AMR sweeps with many small parallel loops (miniAMR), and LULESH's mixture of
large hydrodynamics kernels and tiny boundary-condition loops — including
``ApplyAccelerationBoundaryConditionsForNodes``, the paper's motivating
example.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite.characteristics import (
    amr_block_kernel,
    monte_carlo_lookup,
    small_boundary_kernel,
    sparse_matvec,
    streaming_blas2,
)
from repro.openmp.region import ImbalancePattern, RegionCharacteristics

__all__ = ["proxy_applications", "PROXY_NAMES", "LULESH_MOTIVATING_REGION"]

PROXY_NAMES = ("RSBench", "XSBench", "miniFE", "Quicksilver", "miniAMR", "LULESH")

#: Region id of the paper's Section-I motivating example.
LULESH_MOTIVATING_REGION = "LULESH/ApplyAccelerationBoundaryConditionsForNodes"

_DOUBLE = 8.0


def _lulesh_regions() -> List[RegionCharacteristics]:
    app = "LULESH"
    elems = 90 * 90 * 90          # 45^3 elements per domain scaled up
    nodes = 91 * 91 * 91
    regions = [
        # Large element-centred kernels: compute heavy, some imbalance from EOS branches.
        RegionCharacteristics(
            region_id=f"{app}/CalcKinematicsForElems",
            application=app,
            iterations=elems,
            flops_per_iteration=450.0,
            int_ops_per_iteration=180.0,
            memory_bytes_per_iteration=34.0 * _DOUBLE,
            working_set_bytes=elems * 40.0 * _DOUBLE,
            reuse_factor=0.45,
            serial_fraction=0.0005,
            parallel_loop_count=1,
            nest_depth=2,
            iteration_cost_cv=0.05,
            imbalance_pattern=ImbalancePattern.RANDOM,
            branches_per_iteration=4.0,
            branch_misprediction_rate=0.02,
        ),
        RegionCharacteristics(
            region_id=f"{app}/CalcForceForNodes",
            application=app,
            iterations=elems,
            flops_per_iteration=380.0,
            int_ops_per_iteration=200.0,
            memory_bytes_per_iteration=48.0 * _DOUBLE,
            working_set_bytes=nodes * 25.0 * _DOUBLE,
            reuse_factor=0.35,
            serial_fraction=0.001,
            parallel_loop_count=2,
            nest_depth=2,
            iteration_cost_cv=0.05,
            imbalance_pattern=ImbalancePattern.RANDOM,
            atomics_per_iteration=0.12,
            branches_per_iteration=3.0,
            branch_misprediction_rate=0.02,
        ),
        RegionCharacteristics(
            region_id=f"{app}/CalcMonotonicQGradientsForElems",
            application=app,
            iterations=elems,
            flops_per_iteration=260.0,
            int_ops_per_iteration=120.0,
            memory_bytes_per_iteration=40.0 * _DOUBLE,
            working_set_bytes=elems * 30.0 * _DOUBLE,
            reuse_factor=0.4,
            serial_fraction=0.0005,
            parallel_loop_count=1,
            nest_depth=2,
            iteration_cost_cv=0.03,
            imbalance_pattern=ImbalancePattern.UNIFORM,
            branches_per_iteration=5.0,
            branch_misprediction_rate=0.03,
        ),
        RegionCharacteristics(
            region_id=f"{app}/EvalEOSForElems",
            application=app,
            iterations=elems,
            flops_per_iteration=180.0,
            int_ops_per_iteration=90.0,
            memory_bytes_per_iteration=22.0 * _DOUBLE,
            working_set_bytes=elems * 20.0 * _DOUBLE,
            reuse_factor=0.5,
            serial_fraction=0.002,
            parallel_loop_count=3,
            nest_depth=2,
            iteration_cost_cv=0.3,
            imbalance_pattern=ImbalancePattern.RANDOM,
            branches_per_iteration=8.0,
            branch_misprediction_rate=0.07,
            condition_density=0.3,
            calls_external_math=True,
        ),
        RegionCharacteristics(
            region_id=f"{app}/CalcEnergyForElems",
            application=app,
            iterations=elems,
            flops_per_iteration=120.0,
            int_ops_per_iteration=60.0,
            memory_bytes_per_iteration=26.0 * _DOUBLE,
            working_set_bytes=elems * 22.0 * _DOUBLE,
            reuse_factor=0.45,
            serial_fraction=0.001,
            parallel_loop_count=4,
            nest_depth=1,
            iteration_cost_cv=0.1,
            imbalance_pattern=ImbalancePattern.RANDOM,
            branches_per_iteration=6.0,
            branch_misprediction_rate=0.05,
            condition_density=0.25,
            calls_external_math=True,
        ),
        # Node-centred streaming updates.
        RegionCharacteristics(
            region_id=f"{app}/CalcVelocityForNodes",
            application=app,
            iterations=nodes,
            flops_per_iteration=12.0,
            int_ops_per_iteration=6.0,
            memory_bytes_per_iteration=9.0 * _DOUBLE,
            working_set_bytes=nodes * 9.0 * _DOUBLE,
            reuse_factor=0.15,
            serial_fraction=0.0,
            parallel_loop_count=1,
            nest_depth=1,
            iteration_cost_cv=0.0,
            imbalance_pattern=ImbalancePattern.UNIFORM,
            branches_per_iteration=2.0,
            branch_misprediction_rate=0.02,
        ),
        RegionCharacteristics(
            region_id=f"{app}/CalcPositionForNodes",
            application=app,
            iterations=nodes,
            flops_per_iteration=6.0,
            int_ops_per_iteration=3.0,
            memory_bytes_per_iteration=6.0 * _DOUBLE,
            working_set_bytes=nodes * 6.0 * _DOUBLE,
            reuse_factor=0.15,
            serial_fraction=0.0,
            parallel_loop_count=1,
            nest_depth=1,
            iteration_cost_cv=0.0,
            imbalance_pattern=ImbalancePattern.UNIFORM,
            branches_per_iteration=1.0,
            branch_misprediction_rate=0.01,
        ),
        # The motivating example: a tiny boundary-condition loop over one face.
        small_boundary_kernel(
            app, "ApplyAccelerationBoundaryConditionsForNodes", elements=91 * 91, flops=3.0
        ),
    ]
    return regions


def _miniamr_regions() -> List[RegionCharacteristics]:
    app = "miniAMR"
    return [
        amr_block_kernel(app, "stencil_calc_7pt", blocks=1024, block_cells=4096, loops=2),
        amr_block_kernel(app, "stencil_calc_27pt", blocks=1024, block_cells=4096, loops=2),
        amr_block_kernel(app, "refine_blocks", blocks=512, block_cells=2048, loops=6),
        small_boundary_kernel(app, "comm_pack_faces", elements=16 * 16 * 1024, flops=2.0),
        RegionCharacteristics(
            region_id=f"{app}/checksum",
            application=app,
            iterations=1024 * 4096,
            flops_per_iteration=2.0,
            int_ops_per_iteration=2.0,
            memory_bytes_per_iteration=_DOUBLE,
            working_set_bytes=1024 * 4096 * _DOUBLE,
            reuse_factor=0.05,
            serial_fraction=0.0005,
            parallel_loop_count=1,
            nest_depth=2,
            iteration_cost_cv=0.0,
            imbalance_pattern=ImbalancePattern.UNIFORM,
            atomics_per_iteration=0.01,
            branches_per_iteration=1.0,
            branch_misprediction_rate=0.005,
        ),
    ]


def _quicksilver_regions() -> List[RegionCharacteristics]:
    app = "Quicksilver"
    return [
        monte_carlo_lookup(app, "cycleTracking", lookups=2_000_000, table_mib=96.0,
                           flops_per_lookup=220.0, branchy=True, atomics=0.8),
        monte_carlo_lookup(app, "cycleInit", lookups=1_000_000, table_mib=32.0,
                           flops_per_lookup=60.0, branchy=False, atomics=0.1),
        RegionCharacteristics(
            region_id=f"{app}/populationControl",
            application=app,
            iterations=1_000_000,
            flops_per_iteration=14.0,
            int_ops_per_iteration=20.0,
            memory_bytes_per_iteration=12.0 * _DOUBLE,
            working_set_bytes=1_000_000 * 24.0 * _DOUBLE,
            reuse_factor=0.1,
            serial_fraction=0.003,
            parallel_loop_count=2,
            nest_depth=1,
            iteration_cost_cv=0.25,
            imbalance_pattern=ImbalancePattern.RANDOM,
            atomics_per_iteration=0.2,
            branches_per_iteration=5.0,
            branch_misprediction_rate=0.08,
            condition_density=0.3,
        ),
        small_boundary_kernel(app, "tallyReduction", elements=64 * 1024, flops=4.0),
    ]


def _minife_regions() -> List[RegionCharacteristics]:
    app = "miniFE"
    rows = 1_200_000
    return [
        sparse_matvec(app, "matvec", rows=rows, nnz_per_row=27.0),
        streaming_blas2(app, "waxpby", n=2200, passes=3),
        RegionCharacteristics(
            region_id=f"{app}/dot_product",
            application=app,
            iterations=rows,
            flops_per_iteration=2.0,
            int_ops_per_iteration=2.0,
            memory_bytes_per_iteration=2.0 * _DOUBLE,
            working_set_bytes=rows * 2.0 * _DOUBLE,
            reuse_factor=0.05,
            serial_fraction=0.001,
            parallel_loop_count=1,
            nest_depth=1,
            iteration_cost_cv=0.0,
            imbalance_pattern=ImbalancePattern.UNIFORM,
            atomics_per_iteration=0.02,
            branches_per_iteration=1.0,
            branch_misprediction_rate=0.005,
        ),
        sparse_matvec(app, "diffuse_matrix_assembly", rows=rows // 4, nnz_per_row=64.0, atomics=0.3),
    ]


def _xsbench_regions() -> List[RegionCharacteristics]:
    app = "XSBench"
    return [
        monte_carlo_lookup(app, "macro_xs_lookup", lookups=17_000_000, table_mib=240.0,
                           flops_per_lookup=55.0, branchy=True),
        monte_carlo_lookup(app, "grid_init", lookups=4_000_000, table_mib=240.0,
                           flops_per_lookup=12.0, branchy=False),
    ]


def _rsbench_regions() -> List[RegionCharacteristics]:
    app = "RSBench"
    return [
        monte_carlo_lookup(app, "resonance_xs_lookup", lookups=10_000_000, table_mib=40.0,
                           flops_per_lookup=160.0, branchy=True),
        monte_carlo_lookup(app, "pole_data_init", lookups=2_000_000, table_mib=40.0,
                           flops_per_lookup=25.0, branchy=False),
    ]


def proxy_applications() -> Dict[str, List[RegionCharacteristics]]:
    """All six mini/proxy applications mapped to their 25 OpenMP regions."""
    return {
        "RSBench": _rsbench_regions(),
        "XSBench": _xsbench_regions(),
        "miniFE": _minife_regions(),
        "Quicksilver": _quicksilver_regions(),
        "miniAMR": _miniamr_regions(),
        "LULESH": _lulesh_regions(),
    }
