"""Registry of benchmark applications and their regions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.benchsuite.polybench import polybench_applications
from repro.benchsuite.proxyapps import proxy_applications
from repro.openmp.region import RegionCharacteristics

__all__ = [
    "BenchmarkApplication",
    "full_suite",
    "all_regions",
    "get_application",
    "application_names",
    "regions_by_application",
    "get_region",
]

#: Expected suite shape — used by the self-check and the tests.
EXPECTED_APPLICATIONS = 30
EXPECTED_REGIONS = 68


@dataclass(frozen=True)
class BenchmarkApplication:
    """One benchmark application and its OpenMP regions."""

    name: str
    suite: str  # "polybench" or "proxy"
    regions: Tuple[RegionCharacteristics, ...]

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def region_ids(self) -> List[str]:
        return [r.region_id for r in self.regions]


def full_suite() -> List[BenchmarkApplication]:
    """All 30 applications, proxy apps first (matching the paper's figures)."""
    apps: List[BenchmarkApplication] = []
    for name, regions in proxy_applications().items():
        apps.append(BenchmarkApplication(name=name, suite="proxy", regions=tuple(regions)))
    for name, regions in polybench_applications().items():
        apps.append(BenchmarkApplication(name=name, suite="polybench", regions=tuple(regions)))

    _validate(apps)
    return apps


def _validate(apps: List[BenchmarkApplication]) -> None:
    names = [a.name for a in apps]
    if len(set(names)) != len(names):
        raise RuntimeError("duplicate application names in the benchmark suite")
    total_regions = sum(a.num_regions for a in apps)
    region_ids = [r.region_id for a in apps for r in a.regions]
    if len(set(region_ids)) != len(region_ids):
        raise RuntimeError("duplicate region ids in the benchmark suite")
    if len(apps) != EXPECTED_APPLICATIONS:
        raise RuntimeError(
            f"benchmark suite has {len(apps)} applications, expected {EXPECTED_APPLICATIONS}"
        )
    if total_regions != EXPECTED_REGIONS:
        raise RuntimeError(
            f"benchmark suite has {total_regions} regions, expected {EXPECTED_REGIONS}"
        )


def application_names() -> List[str]:
    """Names of all applications, in figure order."""
    return [a.name for a in full_suite()]


def get_application(name: str) -> BenchmarkApplication:
    """Look up an application by name."""
    for app in full_suite():
        if app.name == name:
            return app
    raise KeyError(f"unknown application {name!r}")


def all_regions() -> List[RegionCharacteristics]:
    """All 68 regions across the suite."""
    return [region for app in full_suite() for region in app.regions]


def get_region(region_id: str) -> RegionCharacteristics:
    """Look up one region by its id (``"<app>/<kernel>"``)."""
    for region in all_regions():
        if region.region_id == region_id:
            return region
    raise KeyError(f"unknown region {region_id!r}")


def regions_by_application() -> Dict[str, List[RegionCharacteristics]]:
    """Mapping application name → its regions."""
    return {app.name: list(app.regions) for app in full_suite()}
