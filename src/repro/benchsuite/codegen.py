"""IR generation for benchmark regions.

The real pipeline compiles each application with Clang and extracts the
outlined parallel-region functions.  Here, the outlined IR is generated
directly from each region's characteristics so that the code structure the
GNN observes (loop-nest depth, balance of loads/stores vs. floating-point
arithmetic, data-dependent branches, atomics, math-library calls) faithfully
reflects the behaviour the execution simulator assigns to that region.

Instruction counts inside the generated loop body are log-scaled so graphs
stay at a few hundred nodes while preserving the *relative* composition of
operations — which is the signal the model needs.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.ir import IRBuilder, Function, Module
from repro.ir import types as irt
from repro.ir.function import OMP_OUTLINED_ATTR
from repro.ir.verifier import verify_module
from repro.openmp.region import ImbalancePattern, RegionCharacteristics
from repro.utils.rng import new_rng

__all__ = [
    "generate_region_function",
    "generate_application_module",
    "region_function_name",
    "scaled_region_counts",
]


def region_function_name(region: RegionCharacteristics) -> str:
    """Symbol name of the outlined function for ``region``."""
    kernel = region.region_id.split("/", 1)[1]
    safe = kernel.replace("/", "_").replace("-", "_").replace("~", "_")
    return f"{region.application}.{safe}.omp_outlined"


def _scaled_count(value: float, scale: float = 2.0, maximum: int = 20) -> int:
    """Log-compress a per-iteration operation count into an IR statement count."""
    if value <= 0:
        return 0
    # Pure-Python clamp: this also runs per-query in the distillation
    # feature extractor's hot path, where numpy scalar ops would allocate.
    return min(max(int(round(math.log2(1.0 + value) * scale)), 1), maximum)


def scaled_region_counts(region: RegionCharacteristics) -> Dict[str, int]:
    """The log-compressed structural counts the generator lowers for ``region``.

    These are exactly the quantities :func:`generate_region_function` turns
    into IR statements — the structural signal the GNN's graphs encode.
    Exposed so the distillation feature extractor
    (:mod:`repro.distill.features`) can present its students with the same
    view of a region the teacher's graphs are built from.
    """
    return {
        "flop_insts": _scaled_count(region.flops_per_iteration),
        "int_insts": _scaled_count(region.int_ops_per_iteration),
        "mem_insts": max(1, _scaled_count(region.memory_bytes_per_iteration / 8.0)),
        "cond_blocks": min(max(int(round(region.condition_density * 4)), 0), 4),
        "atomic_insts": 1 if region.atomics_per_iteration > 0 else 0,
        "math_calls": 1 if region.calls_external_math else 0,
        "triangular": 1 if region.imbalance_pattern == ImbalancePattern.LINEAR else 0,
        "per_dim_trip": max(
            2, int(round(region.iterations ** (1.0 / region.nest_depth)))
        ),
        "nest_depth": int(region.nest_depth),
    }


def generate_region_function(
    module: Module, region: RegionCharacteristics, seed: int = 0
) -> Function:
    """Emit the outlined function of ``region`` into ``module`` and return it.

    The function signature mirrors Clang's outlining convention: a thread-id
    pointer, a bound-thread-id pointer, then captured array arguments.
    """
    rng = new_rng(seed, f"codegen/{region.region_id}")
    name = region_function_name(region)

    double_ptr = irt.ptr(irt.f64())
    function = module.add_function(
        Function(
            name,
            arg_types=[irt.ptr(irt.i32()), irt.ptr(irt.i32()), double_ptr, double_ptr, double_ptr, irt.i64()],
            arg_names=[".global_tid.", ".bound_tid.", "A", "B", "C", "n"],
            return_type=irt.void(),
            attributes={OMP_OUTLINED_ATTR},
        )
    )
    arg_a, arg_b, arg_c = function.arguments[2], function.arguments[3], function.arguments[4]

    # Loop bounds are compile-time constants in the benchmark sources
    # (PolyBench dataset sizes, proxy-app mesh dimensions), so the generated
    # IR compares the induction variable against a literal trip count.  The
    # per-dimension bound is the nest-depth'th root of the region's total
    # iteration count.
    counts = scaled_region_counts(region)
    per_dim_trip = counts["per_dim_trip"]

    builder = IRBuilder(function)
    entry = function.add_block("entry")
    builder.position_at(entry)

    # Work-sharing prologue emitted by the OpenMP lowering.
    tid = builder.load(function.arguments[0], hint="tid")
    builder.call("__kmpc_for_static_init_8", irt.void(), [tid])

    accumulator = builder.alloca(irt.f64(), hint="acc")
    builder.store(builder.const_float(0.0), accumulator)

    flop_insts = counts["flop_insts"]
    int_insts = counts["int_insts"]
    mem_insts = counts["mem_insts"]
    cond_blocks = counts["cond_blocks"]
    atomic_insts = counts["atomic_insts"]
    triangular = bool(counts["triangular"])

    def innermost_body(b: IRBuilder, induction) -> None:
        """The computational statements of the innermost loop."""
        value = b.load(b.gep(arg_a, [induction]), hint="a")
        other = b.load(b.gep(arg_b, [induction]), hint="b")
        # Floating-point arithmetic chain.
        current = value
        for i in range(max(flop_insts, 1)):
            opcode = ("fmul", "fadd", "fsub", "fdiv")[i % 4] if i % 7 != 6 else "fmul"
            current = b.binop(opcode, current, other if i % 2 == 0 else b.const_float(1.0 + i))
        # Integer/address arithmetic chain.
        idx = induction
        for i in range(int_insts):
            opcode = ("add", "mul", "and", "shl")[i % 4]
            idx = b.binop(opcode, idx, b.const_int(1 + (i % 5)))
        # Additional loads/stores reflecting the memory traffic.
        for i in range(mem_insts - 1):
            ptr = b.gep(arg_c if i % 2 == 0 else arg_b, [idx])
            if i % 3 == 2:
                b.store(current, ptr)
            else:
                extra = b.load(ptr, hint="m")
                current = b.fadd(current, extra)
        # Data-dependent control flow (branchy kernels).
        if region.calls_external_math:
            current = b.call("exp", irt.f64(), [current], hint="mathval")
        for c in range(cond_blocks):
            cond = b.fcmp("ogt", current, b.const_float(0.5 * (c + 1)))
            then_block = b.new_block("then")
            else_block = b.new_block("else")
            merge_block = b.new_block("merge")
            b.cond_branch(cond, then_block, else_block)
            b.position_at(then_block)
            then_val = b.fmul(current, b.const_float(1.5))
            b.branch(merge_block)
            b.position_at(else_block)
            else_val = b.fadd(current, b.const_float(0.25))
            b.branch(merge_block)
            b.position_at(merge_block)
            merged = b.phi(irt.f64())
            merged.add_incoming(then_val, then_block)
            merged.add_incoming(else_val, else_block)
            current = merged
        # Atomic tallies / reductions.
        if atomic_insts:
            b.atomic_rmw("fadd", b.gep(arg_c, [induction]), current)
        else:
            b.store(current, b.gep(arg_c, [induction]))
        b.store(current, accumulator)

    def nested(depth: int):
        """Build a body callback that wraps ``innermost_body`` in nested loops."""
        def body(b: IRBuilder, induction) -> None:
            if depth <= 1:
                innermost_body(b, induction)
                return
            trip_const = b.const_int(per_dim_trip)
            inner_trip = b.sub(trip_const, induction) if triangular else trip_const
            b.counted_loop(inner_trip, nested(depth - 1), hint=f"L{depth - 1}")
        return body

    builder.counted_loop(
        builder.const_int(per_dim_trip), nested(region.nest_depth), hint=f"L{region.nest_depth}"
    )

    builder.call("__kmpc_for_static_fini", irt.void(), [tid])
    if region.atomics_per_iteration > 0 or rng.random() < 0.3:
        builder.call("__kmpc_barrier", irt.void(), [tid])
    builder.ret()
    return function


def generate_application_module(
    application_name: str, regions: List[RegionCharacteristics], seed: int = 0
) -> Module:
    """Generate one IR module for an application.

    The module contains, for every region, the outlined region function plus
    a host-side wrapper that forks it through ``__kmpc_fork_call`` — the same
    shape Clang produces, so the outliner and graph builder exercise the real
    call-flow path.
    """
    module = Module(application_name)
    for region in regions:
        if region.application != application_name:
            raise ValueError(
                f"region {region.region_id!r} does not belong to application {application_name!r}"
            )
        outlined = generate_region_function(module, region, seed=seed)

        kernel = region.region_id.split("/", 1)[1].replace("-", "_").replace("~", "_")
        wrapper = module.add_function(
            Function(
                f"{application_name}.{kernel}",
                arg_types=[irt.ptr(irt.f64()), irt.ptr(irt.f64()), irt.ptr(irt.f64()), irt.i64()],
                arg_names=["A", "B", "C", "n"],
                return_type=irt.void(),
            )
        )
        builder = IRBuilder(wrapper)
        builder.position_at(wrapper.add_block("entry"))
        builder.call("__kmpc_fork_call", irt.void(), [wrapper.arguments[3]])
        builder.call(outlined.name, irt.void(), list(wrapper.arguments))
        builder.ret()

    verify_module(module)
    return module
