"""PolyBench applications (24 of the suite's kernels, 43 OpenMP regions).

Each application exposes its computational kernel region(s); the larger
kernels additionally expose their array-initialisation region (a streaming,
bandwidth-bound loop), matching how the paper tunes every OpenMP region in
each benchmark rather than only the hottest one.

Problem sizes follow the PolyBench ``LARGE``/``EXTRALARGE`` datasets scaled
so that kernel runtimes on the simulated machines fall in the paper's
observable range (milliseconds to seconds).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.benchsuite.characteristics import (
    dense_linear_algebra,
    reduction_kernel,
    stencil,
    streaming_blas2,
    triangular_linear_algebra,
)
from repro.openmp.region import ImbalancePattern, RegionCharacteristics

__all__ = ["polybench_applications", "POLYBENCH_NAMES"]

_DOUBLE = 8.0

#: The PolyBench kernels that appear on the paper's evaluation x-axis.
POLYBENCH_NAMES: Tuple[str, ...] = (
    "seidel-2d",
    "adi",
    "jacobi-2d",
    "bicg",
    "atax",
    "gramschmidt",
    "correlation",
    "doitgen",
    "covariance",
    "gemm",
    "syrk",
    "cholesky",
    "gemver",
    "mvt",
    "durbin",
    "trisolv",
    "syr2k",
    "lu",
    "symm",
    "fdtd-2d",
    "fdtd-apml",
    "2mm",
    "gesummv",
    "trmm",
)

#: Applications whose initialisation region is not tuned separately — either
#: the kernels are too small to bother (trisolv, durbin, ...) or the
#: application already contributes several computational regions (2mm).
_SINGLE_REGION: Tuple[str, ...] = ("trisolv", "durbin", "gesummv", "atax", "bicg", "2mm")


def _init_region(application: str, n: int, arrays: int = 2) -> RegionCharacteristics:
    """Array initialisation region: a pure streaming store loop."""
    return RegionCharacteristics(
        region_id=f"{application}/init_array",
        application=application,
        iterations=n * n,
        flops_per_iteration=1.0,
        int_ops_per_iteration=3.0,
        memory_bytes_per_iteration=arrays * _DOUBLE,
        working_set_bytes=arrays * n * n * _DOUBLE,
        reuse_factor=0.05,
        serial_fraction=0.0,
        parallel_loop_count=1,
        nest_depth=2,
        iteration_cost_cv=0.0,
        imbalance_pattern=ImbalancePattern.UNIFORM,
        branches_per_iteration=1.0,
        branch_misprediction_rate=0.005,
    )


def _kernel_regions() -> Dict[str, List[RegionCharacteristics]]:
    """Computational region(s) of every PolyBench application."""
    regions: Dict[str, List[RegionCharacteristics]] = {}

    # --- structured-grid stencils -------------------------------------------
    regions["seidel-2d"] = [stencil("seidel-2d", "kernel_seidel_2d", n=2800, points=9, sweeps=1)]
    regions["jacobi-2d"] = [stencil("jacobi-2d", "kernel_jacobi_2d", n=2800, points=5, sweeps=2)]
    regions["fdtd-2d"] = [stencil("fdtd-2d", "kernel_fdtd_2d", n=2400, points=4, sweeps=3, time_dependent=True)]
    regions["fdtd-apml"] = [stencil("fdtd-apml", "kernel_fdtd_apml", n=1600, points=11, sweeps=3, time_dependent=True)]
    regions["adi"] = [stencil("adi", "kernel_adi", n=2000, points=6, sweeps=4, time_dependent=True)]

    # --- dense linear algebra (BLAS-3 like) ----------------------------------
    regions["gemm"] = [dense_linear_algebra("gemm", "kernel_gemm", n=1100)]
    regions["2mm"] = [
        dense_linear_algebra("2mm", "kernel_2mm_first", n=900),
        dense_linear_algebra("2mm", "kernel_2mm_second", n=900),
    ]
    regions["doitgen"] = [dense_linear_algebra("doitgen", "kernel_doitgen", n=512, inner=160, reuse=0.7)]
    regions["syrk"] = [dense_linear_algebra("syrk", "kernel_syrk", n=1000, triangular=True)]
    regions["syr2k"] = [dense_linear_algebra("syr2k", "kernel_syr2k", n=900, triangular=True)]
    regions["trmm"] = [dense_linear_algebra("trmm", "kernel_trmm", n=1000, triangular=True)]
    regions["symm"] = [dense_linear_algebra("symm", "kernel_symm", n=1000, triangular=True)]

    # --- factorisations / solvers --------------------------------------------
    regions["cholesky"] = [triangular_linear_algebra("cholesky", "kernel_cholesky", n=1300)]
    regions["lu"] = [triangular_linear_algebra("lu", "kernel_lu", n=1300)]
    regions["gramschmidt"] = [triangular_linear_algebra("gramschmidt", "kernel_gramschmidt", n=1100)]
    regions["durbin"] = [triangular_linear_algebra("durbin", "kernel_durbin", n=3000, tiny=True,
                                                   dependence_serial_fraction=0.12)]
    regions["trisolv"] = [triangular_linear_algebra("trisolv", "kernel_trisolv", n=3000, tiny=True,
                                                    dependence_serial_fraction=0.15)]

    # --- BLAS-2 / streaming ---------------------------------------------------
    regions["atax"] = [streaming_blas2("atax", "kernel_atax", n=4200, passes=2)]
    regions["bicg"] = [streaming_blas2("bicg", "kernel_bicg", n=4200, passes=2)]
    regions["mvt"] = [streaming_blas2("mvt", "kernel_mvt", n=4400, passes=2)]
    regions["gemver"] = [streaming_blas2("gemver", "kernel_gemver", n=4000, passes=4)]
    regions["gesummv"] = [streaming_blas2("gesummv", "kernel_gesummv", n=3600, passes=2)]

    # --- data mining ----------------------------------------------------------
    regions["correlation"] = [reduction_kernel("correlation", "kernel_correlation", n=1400, atomics=0.02)]
    regions["covariance"] = [reduction_kernel("covariance", "kernel_covariance", n=1400, atomics=0.02)]

    return regions


def polybench_applications() -> Dict[str, List[RegionCharacteristics]]:
    """All PolyBench applications mapped to their OpenMP regions.

    Applications outside :data:`_SINGLE_REGION` also include their
    initialisation region, for a total of 43 regions over 24 applications.
    """
    kernels = _kernel_regions()
    init_sizes = {
        "seidel-2d": 2800, "adi": 2000, "jacobi-2d": 2800, "gramschmidt": 1100,
        "correlation": 1400, "doitgen": 900, "covariance": 1400, "gemm": 1100,
        "syrk": 1000, "cholesky": 1300, "gemver": 4000, "mvt": 4400,
        "syr2k": 900, "lu": 1300, "symm": 1000, "fdtd-2d": 2400,
        "fdtd-apml": 1600, "2mm": 900, "trmm": 1000,
    }
    apps: Dict[str, List[RegionCharacteristics]] = {}
    for name in POLYBENCH_NAMES:
        regions = list(kernels[name])
        if name not in _SINGLE_REGION:
            regions.append(_init_region(name, init_sizes[name]))
        apps[name] = regions
    return apps
