"""Builders for region characteristics, organised by kernel family.

Rather than hand-writing every field of all 68 regions, each region is
derived from a small set of family templates (dense linear algebra, stencils,
triangular solvers, streaming BLAS-2, Monte-Carlo lookup, ...) plus a problem
size.  The templates encode the qualitative properties that determine which
OpenMP configuration wins: arithmetic intensity, temporal reuse, load
imbalance shape, synchronisation, and region size.
"""

from __future__ import annotations

from typing import Optional

from repro.openmp.region import ImbalancePattern, RegionCharacteristics

__all__ = [
    "dense_linear_algebra",
    "triangular_linear_algebra",
    "stencil",
    "streaming_blas2",
    "reduction_kernel",
    "monte_carlo_lookup",
    "small_boundary_kernel",
    "sparse_matvec",
    "amr_block_kernel",
]

_DOUBLE = 8.0


def _region(
    application: str,
    kernel: str,
    **kwargs,
) -> RegionCharacteristics:
    return RegionCharacteristics(
        region_id=f"{application}/{kernel}",
        application=application,
        **kwargs,
    )


def dense_linear_algebra(
    application: str,
    kernel: str,
    n: int,
    inner: Optional[int] = None,
    triangular: bool = False,
    reuse: float = 0.85,
) -> RegionCharacteristics:
    """GEMM-family kernel: O(n·inner) work per outer iteration, high reuse.

    The parallel loop runs over ``n`` rows; each iteration performs
    ``2·inner`` flops per output element over ``n`` elements.  ``triangular``
    marks kernels whose inner trip count shrinks across the iteration space
    (syrk, trmm, symm), which creates linear load imbalance.
    """
    inner = inner if inner is not None else n
    flops = 2.0 * inner
    return _region(
        application,
        kernel,
        iterations=n * n,
        flops_per_iteration=flops,
        int_ops_per_iteration=flops * 0.4,
        memory_bytes_per_iteration=3.0 * _DOUBLE,
        working_set_bytes=3.0 * n * n * _DOUBLE,
        reuse_factor=reuse,
        serial_fraction=0.001,
        parallel_loop_count=1,
        nest_depth=3,
        iteration_cost_cv=0.55 if triangular else 0.02,
        imbalance_pattern=ImbalancePattern.LINEAR if triangular else ImbalancePattern.UNIFORM,
        branches_per_iteration=2.0,
        branch_misprediction_rate=0.01,
    )


def triangular_linear_algebra(
    application: str,
    kernel: str,
    n: int,
    tiny: bool = False,
    dependence_serial_fraction: float = 0.05,
) -> RegionCharacteristics:
    """Factorisation/solver kernel with strongly triangular work distribution.

    ``tiny=True`` models kernels such as ``trisolv``/``durbin`` whose parallel
    loops are short and dependence-limited — the cases where a single thread
    is the best configuration (the paper's outlier example).
    """
    iterations = n if tiny else n * n // 4
    flops = 4.0 if tiny else 2.0 * n / 2.0
    return _region(
        application,
        kernel,
        iterations=max(iterations, 64),
        flops_per_iteration=flops,
        int_ops_per_iteration=flops * 0.5 + 2.0,
        memory_bytes_per_iteration=2.5 * _DOUBLE,
        working_set_bytes=max(n * n * _DOUBLE, 64 * 1024),
        reuse_factor=0.6,
        serial_fraction=dependence_serial_fraction,
        parallel_loop_count=2 if not tiny else 1,
        nest_depth=2,
        iteration_cost_cv=0.6,
        imbalance_pattern=ImbalancePattern.LINEAR,
        branches_per_iteration=3.0,
        branch_misprediction_rate=0.03,
    )


def stencil(
    application: str,
    kernel: str,
    n: int,
    points: int = 5,
    sweeps: int = 1,
    time_dependent: bool = False,
) -> RegionCharacteristics:
    """Structured-grid stencil: moderate arithmetic intensity, streaming."""
    flops = float(2 * points)
    return _region(
        application,
        kernel,
        iterations=n * n,
        flops_per_iteration=flops,
        int_ops_per_iteration=points * 1.5,
        memory_bytes_per_iteration=(points + 1.0) * _DOUBLE * 0.6,
        working_set_bytes=2.0 * n * n * _DOUBLE,
        reuse_factor=0.35,
        serial_fraction=0.002 if time_dependent else 0.0005,
        parallel_loop_count=sweeps,
        nest_depth=2,
        iteration_cost_cv=0.02,
        imbalance_pattern=ImbalancePattern.UNIFORM,
        branches_per_iteration=2.0,
        branch_misprediction_rate=0.015,
    )


def streaming_blas2(
    application: str,
    kernel: str,
    n: int,
    passes: int = 2,
) -> RegionCharacteristics:
    """Matrix-vector style kernel: bandwidth-bound, essentially no reuse."""
    return _region(
        application,
        kernel,
        iterations=n,
        flops_per_iteration=2.0 * n * passes / 2.0,
        int_ops_per_iteration=n * 0.5,
        memory_bytes_per_iteration=n * _DOUBLE * passes * 0.75,
        working_set_bytes=(passes * n * n + 4 * n) * _DOUBLE,
        reuse_factor=0.1,
        serial_fraction=0.001,
        parallel_loop_count=passes,
        nest_depth=2,
        iteration_cost_cv=0.02,
        imbalance_pattern=ImbalancePattern.UNIFORM,
        branches_per_iteration=1.5,
        branch_misprediction_rate=0.01,
    )


def reduction_kernel(
    application: str,
    kernel: str,
    n: int,
    atomics: float = 0.05,
) -> RegionCharacteristics:
    """Statistics/reduction kernel (correlation, covariance, dot products)."""
    return _region(
        application,
        kernel,
        iterations=n * n,
        flops_per_iteration=6.0,
        int_ops_per_iteration=4.0,
        memory_bytes_per_iteration=2.0 * _DOUBLE,
        working_set_bytes=n * n * _DOUBLE,
        reuse_factor=0.4,
        serial_fraction=0.004,
        parallel_loop_count=2,
        nest_depth=2,
        iteration_cost_cv=0.05,
        imbalance_pattern=ImbalancePattern.RANDOM,
        atomics_per_iteration=atomics,
        branches_per_iteration=2.0,
        branch_misprediction_rate=0.02,
    )


def monte_carlo_lookup(
    application: str,
    kernel: str,
    lookups: int,
    table_mib: float,
    flops_per_lookup: float = 40.0,
    branchy: bool = True,
    atomics: float = 0.0,
) -> RegionCharacteristics:
    """Monte-Carlo cross-section lookup (XSBench/RSBench/Quicksilver style).

    Latency-bound random access over a large table, highly branchy, with
    random per-iteration cost variation — dynamic scheduling and moderate
    thread counts tend to win, especially at low power caps.
    """
    return _region(
        application,
        kernel,
        iterations=lookups,
        flops_per_iteration=flops_per_lookup,
        int_ops_per_iteration=flops_per_lookup * 1.5,
        memory_bytes_per_iteration=20.0 * _DOUBLE,
        working_set_bytes=table_mib * 1024 * 1024,
        reuse_factor=0.15,
        serial_fraction=0.002,
        parallel_loop_count=1,
        nest_depth=2,
        iteration_cost_cv=0.45,
        imbalance_pattern=ImbalancePattern.RANDOM,
        atomics_per_iteration=atomics,
        branches_per_iteration=12.0 if branchy else 4.0,
        branch_misprediction_rate=0.12 if branchy else 0.04,
        condition_density=0.4 if branchy else 0.1,
        calls_external_math=True,
    )


def small_boundary_kernel(
    application: str,
    kernel: str,
    elements: int,
    flops: float = 6.0,
) -> RegionCharacteristics:
    """A tiny per-node/per-element update (LULESH boundary-condition style).

    Work is so small that fork/join overhead dominates; the best thread count
    is far below the machine width, more so at deep power caps.
    """
    return _region(
        application,
        kernel,
        iterations=elements,
        flops_per_iteration=flops,
        int_ops_per_iteration=flops * 0.5,
        memory_bytes_per_iteration=2.0 * _DOUBLE,
        working_set_bytes=max(elements * 3.0 * _DOUBLE, 32 * 1024),
        reuse_factor=0.5,
        serial_fraction=0.0,
        parallel_loop_count=3,
        nest_depth=1,
        iteration_cost_cv=0.0,
        imbalance_pattern=ImbalancePattern.UNIFORM,
        branches_per_iteration=1.0,
        branch_misprediction_rate=0.01,
    )


def sparse_matvec(
    application: str,
    kernel: str,
    rows: int,
    nnz_per_row: float = 27.0,
    atomics: float = 0.0,
) -> RegionCharacteristics:
    """Sparse matrix-vector product (miniFE): bandwidth-bound, mild imbalance."""
    return _region(
        application,
        kernel,
        iterations=rows,
        flops_per_iteration=2.0 * nnz_per_row,
        int_ops_per_iteration=3.0 * nnz_per_row,
        memory_bytes_per_iteration=nnz_per_row * 12.0,
        working_set_bytes=rows * nnz_per_row * 12.0,
        reuse_factor=0.2,
        serial_fraction=0.001,
        parallel_loop_count=1,
        nest_depth=2,
        iteration_cost_cv=0.15,
        imbalance_pattern=ImbalancePattern.RANDOM,
        atomics_per_iteration=atomics,
        branches_per_iteration=nnz_per_row * 0.2,
        branch_misprediction_rate=0.03,
    )


def amr_block_kernel(
    application: str,
    kernel: str,
    blocks: int,
    block_cells: int = 4096,
    loops: int = 4,
) -> RegionCharacteristics:
    """Adaptive-mesh-refinement block sweep (miniAMR): many small parallel loops."""
    return _region(
        application,
        kernel,
        iterations=blocks,
        flops_per_iteration=block_cells * 8.0,
        int_ops_per_iteration=block_cells * 3.0,
        memory_bytes_per_iteration=block_cells * 10.0,
        working_set_bytes=blocks * block_cells * 10.0,
        reuse_factor=0.3,
        serial_fraction=0.01,
        parallel_loop_count=loops,
        nest_depth=3,
        iteration_cost_cv=0.35,
        imbalance_pattern=ImbalancePattern.RANDOM,
        branches_per_iteration=6.0,
        branch_misprediction_rate=0.04,
        condition_density=0.2,
    )
