"""Graph read-out (pooling) operations.

After the RGCN layers produce per-node representations, a whole-graph vector
is obtained by pooling node features per graph in the batch.  The batch
assignment vector follows the PyTorch-Geometric convention: ``batch[i]`` is
the index of the graph that node ``i`` belongs to.

:func:`global_mean_pool` accepts the per-graph node counts precomputed by a
batch's :class:`~repro.nn.data.EdgePlan` so the counts are derived once per
batch instead of once per forward pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn._scatter import count_index
from repro.nn.tensor import Tensor

__all__ = [
    "global_mean_pool",
    "global_sum_pool",
    "global_max_pool",
    "lower_global_mean_pool",
]


def _check_batch(x: Tensor, batch: np.ndarray, num_graphs: int) -> np.ndarray:
    batch = np.asarray(batch, dtype=np.int64)
    if batch.shape[0] != x.shape[0]:
        raise ValueError("batch vector length must equal the number of nodes")
    if batch.size and batch.min() < 0:
        raise ValueError("batch indices must be non-negative")
    if batch.size and batch.max() >= num_graphs:
        raise ValueError("batch indices must be smaller than num_graphs")
    return batch


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node features per graph → ``(num_graphs, channels)``."""
    batch = _check_batch(x, batch, num_graphs)
    return x.scatter_sum(batch, num_graphs)


def global_mean_pool(
    x: Tensor,
    batch: np.ndarray,
    num_graphs: int,
    node_counts: Optional[np.ndarray] = None,
    flat_index: Optional[np.ndarray] = None,
    segments=None,
) -> Tensor:
    """Average node features per graph → ``(num_graphs, channels)``.

    ``node_counts`` may carry the per-graph node counts precomputed by an
    :class:`~repro.nn.data.EdgePlan` (``plan.graph_node_counts``); when
    omitted they are recounted from ``batch``.  ``flat_index`` optionally
    passes the plan's memoised flat scatter bins (``plan.pool_flat``) and
    ``segments`` its sorted-segment schedule (``plan.pool_segments``) for
    the pure-float32 reduceat scatter.
    """
    batch = _check_batch(x, batch, num_graphs)
    sums = x.scatter_sum(batch, num_graphs, flat_index=flat_index, segments=segments)
    counts = node_counts if node_counts is not None else count_index(batch, num_graphs)
    counts = np.maximum(counts, 1.0)
    # Reciprocal counts join at the feature dtype (counts themselves are
    # exact integers in either precision).
    inverse = (1.0 / counts[:, None]).astype(x.data.dtype, copy=False)
    return sums * Tensor(inverse, dtype=inverse.dtype)


def lower_global_mean_pool(in_slot: str, out_slot: str = "pooled"):
    """Lower the mean-pool read-out to its raw-ndarray inference step.

    The returned :class:`~repro.nn.inference.MeanPoolStep` reads the
    per-graph node counts, flat scatter bins and (for float32 under the
    reduceat toggle) sorted-segment schedule from the bound
    :class:`~repro.nn.data.EdgePlan`, precomputing the reciprocal-count
    column once per plan — bit-identical to :func:`global_mean_pool` fed
    the same plan-derived arguments.
    """
    from repro.nn.inference import MeanPoolStep

    return [MeanPoolStep(in_slot, out_slot)]


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph element-wise maximum of node features.

    Implemented as a gather/compare without gradient flow through the argmax
    choice (standard max-pool subgradient): the gradient is routed to the
    first node that attained the maximum in each (graph, channel) slot.
    """
    batch = _check_batch(x, batch, num_graphs)
    num_nodes, channels = x.shape
    maxima = np.full((num_graphs, channels), -np.inf, dtype=x.data.dtype)
    # fmax (not maximum) ignores NaN entries, matching the reference loop's
    # strict ``>`` comparison which never selects a NaN.
    np.fmax.at(maxima, batch, x.data)
    # First node per (graph, channel) attaining the maximum: take the minimum
    # node index among the nodes equal to their graph's maximum.
    attained = x.data == maxima[batch]
    node_ids = np.broadcast_to(np.arange(num_nodes)[:, None], (num_nodes, channels))
    argmax = np.full((num_graphs, channels), num_nodes, dtype=np.int64)
    np.minimum.at(argmax, batch, np.where(attained, node_ids, num_nodes))
    # Graphs with no nodes keep the sentinel; route them to node 0 as the
    # original per-node loop did.
    argmax[argmax == num_nodes] = 0
    # Gather the winning rows channel-by-channel via advanced indexing.
    cols = np.tile(np.arange(channels), (num_graphs, 1))
    return x[argmax, cols]
