"""Graph read-out (pooling) operations.

After the RGCN layers produce per-node representations, a whole-graph vector
is obtained by pooling node features per graph in the batch.  The batch
assignment vector follows the PyTorch-Geometric convention: ``batch[i]`` is
the index of the graph that node ``i`` belongs to.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["global_mean_pool", "global_sum_pool", "global_max_pool"]


def _check_batch(x: Tensor, batch: np.ndarray) -> np.ndarray:
    batch = np.asarray(batch, dtype=np.int64)
    if batch.shape[0] != x.shape[0]:
        raise ValueError("batch vector length must equal the number of nodes")
    if batch.size and batch.min() < 0:
        raise ValueError("batch indices must be non-negative")
    return batch


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node features per graph → ``(num_graphs, channels)``."""
    batch = _check_batch(x, batch)
    return x.scatter_sum(batch, num_graphs)


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Average node features per graph → ``(num_graphs, channels)``."""
    batch = _check_batch(x, batch)
    sums = x.scatter_sum(batch, num_graphs)
    counts = np.zeros(num_graphs, dtype=np.float64)
    np.add.at(counts, batch, 1.0)
    counts = np.maximum(counts, 1.0)
    return sums * Tensor(1.0 / counts[:, None])


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph element-wise maximum of node features.

    Implemented as a gather/compare without gradient flow through the argmax
    choice (standard max-pool subgradient): the gradient is routed to the
    node that attained the maximum in each (graph, channel) slot.
    """
    batch = _check_batch(x, batch)
    num_nodes, channels = x.shape
    # Compute argmax per (graph, channel) with plain NumPy.
    maxima = np.full((num_graphs, channels), -np.inf)
    argmax = np.zeros((num_graphs, channels), dtype=np.int64)
    for node in range(num_nodes):
        graph = batch[node]
        better = x.data[node] > maxima[graph]
        maxima[graph][better] = x.data[node][better]
        argmax[graph][better] = node
    # Gather the winning rows channel-by-channel via advanced indexing.
    cols = np.tile(np.arange(channels), (num_graphs, 1))
    return x[argmax, cols]
