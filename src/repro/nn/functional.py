"""Functional (stateless) neural-network operations.

These mirror the subset of ``torch.nn.functional`` used by the PnP tuner's
architecture: activations, numerically stable softmax/log-softmax, dropout,
cross-entropy, and one-hot encoding.

The trailing-underscore variants (:func:`relu_`, :func:`leaky_relu_`) are
raw-ndarray, in-place kernels for the autograd-free inference runtime
(:mod:`repro.nn.inference`): no :class:`~repro.nn.tensor.Tensor` wrappers,
no output allocation, bit-identical to the corresponding tensor op's
forward values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import precision
from repro.nn.tensor import Tensor

__all__ = [
    "relu",
    "relu_",
    "leaky_relu",
    "leaky_relu_",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "cross_entropy",
    "nll_loss",
    "soft_cross_entropy",
    "mse_loss",
    "one_hot",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def relu_(
    x: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """In-place ReLU on a raw ndarray.

    Bit-identical to :meth:`Tensor.relu`'s forward values (the masked
    multiply ``x * (x > 0)``, including its signed zeros for negative
    inputs); used by the compiled inference runtime where no gradient is
    ever needed.  ``mask`` optionally receives the boolean ``x > 0``
    intermediate (a preallocated ``bool`` buffer of ``x``'s shape);
    ``scratch`` (a float buffer of ``x``'s shape and dtype) additionally
    absorbs the mask's float copy, making the call allocation-free: the
    mixed bool×float multiply buffers its cast through a fresh temporary
    even with ``out=``, while ``np.copyto``'s cast and the same-dtype
    multiply run in place.  Multiplying by the boolean mask rounds
    identically to the float mask, signed zeros included.
    """
    if mask is None:
        mask = x > 0
    else:
        np.greater(x, 0, out=mask)
    if scratch is not None:
        np.copyto(scratch, mask)
        np.multiply(x, scratch, out=x)
    else:
        np.multiply(x, mask, out=x)
    return x


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit (paper uses this inside the RGCN stack)."""
    return x.leaky_relu(negative_slope)


def leaky_relu_(
    x: np.ndarray,
    negative_slope: float = 0.01,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """In-place leaky ReLU on a raw ndarray.

    Bit-identical to :meth:`Tensor.leaky_relu`'s fused engine path
    (``np.maximum(x, x * slope)`` for ``0 < slope <= 1``; the masked
    multiply otherwise).  ``scratch`` optionally receives the ``x * slope``
    intermediate so a preallocated buffer can absorb the only allocation.
    """
    if 0.0 < negative_slope <= 1.0:
        if scratch is None:
            scratch = x * negative_slope
        else:
            np.multiply(x, negative_slope, out=scratch)
        np.maximum(x, scratch, out=x)
    else:
        mask = np.where(x > 0, 1.0, negative_slope).astype(x.dtype, copy=False)
        np.multiply(x, mask, out=x)
    return x


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True), dtype=x.data.dtype)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True), dtype=x.data.dtype)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero each element with probability ``p`` during training."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask, dtype=mask.dtype)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood given log-probabilities and integer targets."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Cross-entropy between raw logits and integer class targets.

    Equivalent to ``nll_loss(log_softmax(logits), targets)``; this is the
    training loss listed in Table II of the paper.
    """
    return nll_loss(log_softmax(logits, axis=-1), targets)


def soft_cross_entropy(logits: Tensor, target_distribution: np.ndarray) -> Tensor:
    """Cross-entropy against a full target distribution per sample.

    Used when training with "near-optimal" soft labels: the target places
    probability mass on every configuration whose measured metric is close to
    the optimum, not only on the single argmin class.
    """
    target = np.asarray(target_distribution, dtype=logits.data.dtype)
    if target.shape != tuple(logits.shape):
        raise ValueError(f"target distribution shape {target.shape} != logits shape {logits.shape}")
    log_probs = log_softmax(logits, axis=-1)
    return -(log_probs * Tensor(target, dtype=target.dtype)).sum(axis=1).mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer array (plain NumPy; no gradient needed).

    The output uses the active policy dtype of :mod:`repro.nn.precision`.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError("index out of range for one_hot")
    out = np.zeros((indices.shape[0], num_classes), dtype=precision.get_default_dtype())
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out
