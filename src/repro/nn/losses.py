"""Loss modules.

Table II lists cross-entropy as the training loss for both tuning scenarios;
an MSE loss is also provided for the auxiliary regressors used by the BLISS
baseline's learning-model pool.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Cross-entropy over raw logits with integer class targets."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError("logits must be 2-D (batch, classes)")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ValueError("targets must be 1-D and match the batch size")
        if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
            raise ValueError("target class out of range")
        return F.cross_entropy(logits, targets)


class MSELoss(Module):
    """Mean squared error between a prediction tensor and a target."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        # Raw targets join at the prediction's dtype so a float32 regressor
        # never promotes through its loss.
        if not isinstance(target, Tensor):
            target = Tensor(target, dtype=prediction.data.dtype)
        if prediction.shape != target.shape:
            raise ValueError("prediction and target shapes must match")
        return F.mse_loss(prediction, target)
