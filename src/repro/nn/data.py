"""Graph datasets, block-diagonal batching, edge plans and the data loader.

A :class:`GraphSample` holds one flow graph in index form (token ids, node
types, relation-typed edges) plus a label and optional auxiliary feature
vector (normalised power cap, PAPI counters for the "dynamic" model variant).
:func:`collate_graphs` merges several samples into one large disconnected
graph (the PyTorch-Geometric batching trick), which lets the RGCN process a
minibatch with a single set of matrix operations.

Two batch-level precomputations back the compiled message-passing engine:

* :class:`EdgePlan` — the per-relation edge grouping (source/destination
  index arrays and the :math:`1/|N_r(i)|` normalisation per edge) together
  with the per-graph node counts used by the pooling read-out.  The plan is
  built lazily, exactly once per batch, via :meth:`GraphBatch.edge_plan`;
  every RGCN layer and the pooling layer then consume the same plan instead
  of re-deriving relation masks, in-degrees and normalisations per layer.
  Plan-driven and naive execution are bit-identical because the per-relation
  edge order and every floating-point operation are preserved.
* **Collate-once batching** — :class:`GraphDataLoader` concatenates the
  whole dataset into flat arrays a single time and materialises each
  minibatch by re-indexing those arrays (shuffling permutes sample indices
  only).  The emitted batches are bit-identical to calling
  :func:`collate_graphs` per epoch, and repeated batch compositions (e.g.
  unshuffled evaluation loaders) are memoised so their edge plans are reused
  across epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import precision
from repro.nn._scatter import (
    SegmentSchedule,
    build_segment_schedule,
    count_index,
    flat_scatter_index,
)
from repro.utils.caching import LRUCache

__all__ = [
    "GraphSample",
    "GraphBatch",
    "EdgePlan",
    "build_edge_plan",
    "collate_graphs",
    "GraphDataLoader",
]


@dataclass(eq=False)
class GraphSample:
    """One code-region graph prepared for the model.

    Attributes
    ----------
    token_ids:
        Vocabulary index of each node's IR token, shape ``(num_nodes,)``.
    node_types:
        Node kind index (instruction / variable / constant), shape
        ``(num_nodes,)``.
    edge_index:
        ``(2, num_edges)`` source/destination node indices.
    edge_type:
        ``(num_edges,)`` relation index (control / data / call).
    label:
        Integer class label (index into the configuration space), or -1 when
        unknown (pure inference).
    aux_features:
        Optional per-graph auxiliary features appended to the pooled graph
        vector before the dense classifier (e.g. normalised power cap and
        performance counters).
    target_distribution:
        Optional soft label: a probability distribution over the classes in
        which every near-optimal configuration receives mass.  When present
        (and enabled in the training configuration) it replaces the hard
        ``label`` in the loss; ``label`` stays the argmin class for accuracy
        reporting.
    region_id:
        Identifier of the OpenMP region this graph was built from.
    """

    token_ids: np.ndarray
    node_types: np.ndarray
    edge_index: np.ndarray
    edge_type: np.ndarray
    label: int = -1
    aux_features: Optional[np.ndarray] = None
    target_distribution: Optional[np.ndarray] = None
    region_id: str = ""

    def __post_init__(self) -> None:
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        self.node_types = np.asarray(self.node_types, dtype=np.int64)
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64)
        self.edge_type = np.asarray(self.edge_type, dtype=np.int64)
        if self.aux_features is not None:
            self.aux_features = np.asarray(
                self.aux_features, dtype=precision.get_default_dtype()
            )
        if self.target_distribution is not None:
            self.target_distribution = np.asarray(
                self.target_distribution, dtype=precision.get_default_dtype()
            )
            total = self.target_distribution.sum()
            if total <= 0:
                raise ValueError("target_distribution must have positive mass")
            self.target_distribution = self.target_distribution / total
        if self.token_ids.shape != self.node_types.shape:
            raise ValueError("token_ids and node_types must have the same length")
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, num_edges)")
        if self.edge_type.shape[0] != self.edge_index.shape[1]:
            raise ValueError("edge_type must have one entry per edge")
        if self.num_nodes == 0:
            raise ValueError("graph must have at least one node")
        if self.edge_index.size and self.edge_index.max() >= self.num_nodes:
            raise ValueError("edge references a non-existent node")

    @property
    def num_nodes(self) -> int:
        return int(self.token_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])


@dataclass(eq=False)
class EdgePlan:
    """Precompiled per-batch message-passing schedule.

    For every relation ``r`` the plan stores the source/destination node
    indices of the relation's edges (in the batch's original edge order, so
    scatter accumulation is bit-identical to the naive masked path) and the
    per-edge normalisation column ``1 / |N_r(dst)|``.  The per-graph node
    counts feed the pooling read-out.  One plan is shared by every RGCN layer
    of a forward pass and, for memoised batches, across epochs.

    ``dtype`` is the precision of the normalisation columns; plans are cached
    per (arity, dtype) on their batch, so a float32 model and a float64 model
    can share the same memoised batches without promoting each other.
    """

    num_nodes: int
    num_relations: int
    relation_src: Tuple[np.ndarray, ...]
    relation_dst: Tuple[np.ndarray, ...]
    relation_norm: Tuple[np.ndarray, ...]
    graph_node_counts: np.ndarray
    batch_vector: np.ndarray
    dtype: np.dtype = np.float64
    _flat_cache: Dict[Tuple[str, int, int], np.ndarray] = field(
        default_factory=dict, repr=False
    )
    _segment_cache: Dict[Tuple[str, int], SegmentSchedule] = field(
        default_factory=dict, repr=False
    )

    def scatter_flat(self, relation: int, channels: int) -> np.ndarray:
        """Memoised flat (node, channel) bins for the relation's dst scatter."""
        key = ("dst", relation, channels)
        flat = self._flat_cache.get(key)
        if flat is None:
            flat = flat_scatter_index(self.relation_dst[relation], channels)
            self._flat_cache[key] = flat
        return flat

    def gather_flat(self, relation: int, channels: int) -> np.ndarray:
        """Memoised flat bins for the relation's src gather backward-scatter."""
        key = ("src", relation, channels)
        flat = self._flat_cache.get(key)
        if flat is None:
            flat = flat_scatter_index(self.relation_src[relation], channels)
            self._flat_cache[key] = flat
        return flat

    def pool_flat(self, channels: int) -> np.ndarray:
        """Memoised flat bins for the per-graph pooling scatter."""
        key = ("pool", 0, channels)
        flat = self._flat_cache.get(key)
        if flat is None:
            flat = flat_scatter_index(self.batch_vector, channels)
            self._flat_cache[key] = flat
        return flat

    def scatter_segments(self, relation: int) -> SegmentSchedule:
        """Memoised sorted-segment schedule of the relation's dst scatter."""
        return self._segments("dst", relation, lambda: self.relation_dst[relation])

    def gather_segments(self, relation: int) -> SegmentSchedule:
        """Memoised schedule of the relation's src gather backward-scatter."""
        return self._segments("src", relation, lambda: self.relation_src[relation])

    def pool_segments(self) -> SegmentSchedule:
        """Memoised schedule of the per-graph pooling scatter."""
        return self._segments("pool", 0, lambda: self.batch_vector)

    def _segments(self, kind: str, relation: int, index_fn) -> SegmentSchedule:
        key = (kind, relation)
        schedule = self._segment_cache.get(key)
        if schedule is None:
            schedule = build_segment_schedule(index_fn())
            self._segment_cache[key] = schedule
        return schedule

    def with_dtype(self, dtype: np.dtype) -> "EdgePlan":
        """A twin plan at ``dtype`` sharing every dtype-independent part.

        The integer schedules (relation src/dst, batch vector) and the flat
        scatter-bin / sorted-segment caches — the plan's largest components —
        are shared by reference; only the normalisation columns and node
        counts are cast.
        Only the narrowing float64→float32 direction is allowed: rounding a
        float64 reciprocal to float32 is exactly the directly computed
        float32 reciprocal (binary64 carries enough bits that the double
        rounding is harmless), whereas upcasting float32 norms would *not*
        reproduce the bit-exact float64 plan the seed-equivalence contract
        requires.
        """
        if dtype == self.dtype:
            return self
        if self.dtype != np.float64:
            raise ValueError(
                f"cannot derive a {dtype} plan from a {self.dtype} one; "
                "build the wider plan from the batch instead"
            )
        return EdgePlan(
            num_nodes=self.num_nodes,
            num_relations=self.num_relations,
            relation_src=self.relation_src,
            relation_dst=self.relation_dst,
            relation_norm=tuple(n.astype(dtype) for n in self.relation_norm),
            graph_node_counts=self.graph_node_counts.astype(dtype),
            batch_vector=self.batch_vector,
            dtype=dtype,
            _flat_cache=self._flat_cache,
            _segment_cache=self._segment_cache,
        )


def build_edge_plan(
    edge_index: np.ndarray,
    edge_type: np.ndarray,
    batch: np.ndarray,
    num_nodes: int,
    num_graphs: int,
    num_relations: int,
    dtype: Optional[np.dtype] = None,
) -> EdgePlan:
    """Group edges by relation and precompute in-degree normalisations.

    ``dtype`` selects the precision of the normalisation columns (default:
    the active policy dtype); the integer schedules are dtype-independent.
    """
    if num_relations <= 0:
        raise ValueError("num_relations must be positive")
    dtype = precision.resolve_dtype(dtype)
    edge_index = np.asarray(edge_index, dtype=np.int64)
    edge_type = np.asarray(edge_type, dtype=np.int64)
    if edge_type.size and (edge_type.min() < 0 or edge_type.max() >= num_relations):
        raise ValueError("edge_type out of range for the requested plan")
    if edge_index.size and (edge_index.min() < 0 or edge_index.max() >= num_nodes):
        raise ValueError("edge_index references a node outside [0, num_nodes)")
    srcs: List[np.ndarray] = []
    dsts: List[np.ndarray] = []
    norms: List[np.ndarray] = []
    for relation in range(num_relations):
        mask = edge_type == relation
        src = edge_index[0, mask]
        dst = edge_index[1, mask]
        if dst.size:
            degree = count_index(dst, num_nodes, dtype=dtype)
            norm = (1.0 / degree[dst])[:, None]
        else:
            norm = np.zeros((0, 1), dtype=dtype)
        srcs.append(src)
        dsts.append(dst)
        norms.append(norm)
    batch = np.asarray(batch, dtype=np.int64)
    counts = count_index(batch, num_graphs, dtype=dtype)
    return EdgePlan(
        num_nodes=num_nodes,
        num_relations=num_relations,
        relation_src=tuple(srcs),
        relation_dst=tuple(dsts),
        relation_norm=tuple(norms),
        graph_node_counts=counts,
        batch_vector=batch,
        dtype=dtype,
    )


@dataclass(eq=False)
class GraphBatch:
    """Several graphs merged into one disconnected graph."""

    token_ids: np.ndarray
    node_types: np.ndarray
    edge_index: np.ndarray
    edge_type: np.ndarray
    batch: np.ndarray
    labels: np.ndarray
    aux_features: Optional[np.ndarray]
    num_graphs: int
    region_ids: List[str] = field(default_factory=list)
    target_distributions: Optional[np.ndarray] = None
    _edge_plans: Dict[Tuple[int, np.dtype], EdgePlan] = field(
        default_factory=dict, repr=False
    )

    @property
    def num_nodes(self) -> int:
        return int(self.token_ids.shape[0])

    def edge_plan(self, num_relations: int, dtype: Optional[np.dtype] = None) -> EdgePlan:
        """The batch's :class:`EdgePlan`, built lazily, cached per (arity, dtype).

        Plans for a second dtype are derived from an existing plan of the
        same arity (:meth:`EdgePlan.with_dtype`), sharing the integer
        schedules and flat scatter-bin caches instead of rebuilding them.
        """
        dtype = precision.resolve_dtype(dtype)
        key = (num_relations, dtype)
        plan = self._edge_plans.get(key)
        if plan is None:
            # Narrower plans derive from a cached float64 sibling of the same
            # arity (shared schedules, exactly-rounded norms); wider ones are
            # rebuilt so float64 norms stay bit-identical to the seed's.
            sibling = self._edge_plans.get((num_relations, np.dtype(np.float64)))
            if sibling is not None:
                plan = sibling.with_dtype(dtype)
            else:
                plan = build_edge_plan(
                    self.edge_index,
                    self.edge_type,
                    self.batch,
                    self.num_nodes,
                    self.num_graphs,
                    num_relations,
                    dtype=dtype,
                )
            self._edge_plans[key] = plan
        return plan


def collate_graphs(samples: Sequence[GraphSample]) -> GraphBatch:
    """Merge samples into a :class:`GraphBatch` with shifted node indices."""
    if not samples:
        raise ValueError("cannot collate an empty list of graphs")
    token_ids, node_types, edge_indices, edge_types, batch_vec = [], [], [], [], []
    labels, aux, region_ids, targets = [], [], [], []
    offset = 0
    has_aux = samples[0].aux_features is not None
    has_targets = samples[0].target_distribution is not None
    for graph_idx, sample in enumerate(samples):
        if (sample.aux_features is not None) != has_aux:
            raise ValueError("all samples must consistently have or lack aux_features")
        if (sample.target_distribution is not None) != has_targets:
            raise ValueError("all samples must consistently have or lack target_distribution")
        token_ids.append(sample.token_ids)
        node_types.append(sample.node_types)
        edge_indices.append(sample.edge_index + offset)
        edge_types.append(sample.edge_type)
        batch_vec.append(np.full(sample.num_nodes, graph_idx, dtype=np.int64))
        labels.append(sample.label)
        region_ids.append(sample.region_id)
        if has_aux:
            aux.append(sample.aux_features)
        if has_targets:
            targets.append(sample.target_distribution)
        offset += sample.num_nodes

    return GraphBatch(
        token_ids=np.concatenate(token_ids),
        node_types=np.concatenate(node_types),
        edge_index=np.concatenate(edge_indices, axis=1),
        edge_type=np.concatenate(edge_types),
        batch=np.concatenate(batch_vec),
        labels=np.asarray(labels, dtype=np.int64),
        aux_features=np.stack(aux) if has_aux else None,
        num_graphs=len(samples),
        region_ids=region_ids,
        target_distributions=np.stack(targets) if has_targets else None,
    )


class _CollatedDataset:
    """Dataset-wide flat arrays enabling collate-once minibatching.

    All samples are concatenated a single time; a minibatch for an arbitrary
    tuple of sample indices is then materialised with pure re-indexing
    (gathers and integer offset arithmetic), which is bit-identical to
    :func:`collate_graphs` over the same samples.
    """

    def __init__(self, samples: Sequence[GraphSample]) -> None:
        if not samples:
            raise ValueError("cannot index an empty list of graphs")
        self.samples = list(samples)
        has_aux = self.samples[0].aux_features is not None
        has_targets = self.samples[0].target_distribution is not None
        for sample in self.samples:
            if (sample.aux_features is not None) != has_aux:
                raise ValueError("all samples must consistently have or lack aux_features")
            if (sample.target_distribution is not None) != has_targets:
                raise ValueError(
                    "all samples must consistently have or lack target_distribution"
                )
        self.node_counts = np.array([s.num_nodes for s in self.samples], dtype=np.int64)
        self.edge_counts = np.array([s.num_edges for s in self.samples], dtype=np.int64)
        self.node_starts = np.concatenate(([0], np.cumsum(self.node_counts)))
        self.edge_starts = np.concatenate(([0], np.cumsum(self.edge_counts)))
        self.token_ids = np.concatenate([s.token_ids for s in self.samples])
        self.node_types = np.concatenate([s.node_types for s in self.samples])
        # Edge endpoints kept in *local* (per-sample) node coordinates; the
        # per-batch offsets are added at materialisation time.
        self.local_edge_index = np.concatenate([s.edge_index for s in self.samples], axis=1)
        self.edge_type = np.concatenate([s.edge_type for s in self.samples])
        self.labels = np.array([s.label for s in self.samples], dtype=np.int64)
        self.region_ids = [s.region_id for s in self.samples]
        self.aux = (
            np.stack([s.aux_features for s in self.samples]) if has_aux else None
        )
        self.targets = (
            np.stack([s.target_distribution for s in self.samples]) if has_targets else None
        )

    def gather(self, chunk: Sequence[int]) -> GraphBatch:
        """Materialise the batch for ``chunk`` (sample indices, in order)."""
        chunk = np.asarray(chunk, dtype=np.int64)
        counts = self.node_counts[chunk]
        edge_counts = self.edge_counts[chunk]
        node_sel = np.concatenate(
            [np.arange(self.node_starts[i], self.node_starts[i + 1]) for i in chunk]
        )
        edge_sel = np.concatenate(
            [np.arange(self.edge_starts[i], self.edge_starts[i + 1]) for i in chunk]
        )
        graph_ids = np.arange(len(chunk), dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
        edge_index = self.local_edge_index[:, edge_sel] + np.repeat(offsets, edge_counts)
        return GraphBatch(
            token_ids=self.token_ids[node_sel],
            node_types=self.node_types[node_sel],
            edge_index=edge_index,
            edge_type=self.edge_type[edge_sel],
            batch=np.repeat(graph_ids, counts),
            labels=self.labels[chunk],
            aux_features=self.aux[chunk] if self.aux is not None else None,
            num_graphs=len(chunk),
            region_ids=[self.region_ids[i] for i in chunk],
            target_distributions=self.targets[chunk] if self.targets is not None else None,
        )


class GraphDataLoader:
    """Minibatch iterator over :class:`GraphSample` lists.

    The loader collates the dataset **once** into flat arrays and materialises
    every minibatch by re-indexing them; shuffling only permutes sample
    indices, and the pre-existing shuffle RNG stream is consumed exactly as
    before, so training trajectories are bit-identical to per-epoch collation.
    For ``shuffle=False`` loaders (whose compositions repeat every epoch)
    batches are additionally memoised so their cached :class:`EdgePlan` is
    reused across epochs.

    ``shuffle="batches"`` shuffles *batches, not samples*: the dataset is
    partitioned into fixed contiguous batch compositions once, and each epoch
    permutes the order in which those batches are visited.  Every composition
    repeats every epoch, so all batches (and their cached edge plans) are
    memoised and reused across the whole training run — full cross-epoch plan
    reuse at the cost of never re-mixing which samples share a batch.

    Parameters
    ----------
    samples:
        The dataset.
    batch_size:
        Number of graphs per batch (Table II: 16).
    shuffle:
        ``True`` reshuffles sample order every epoch; ``False`` keeps dataset
        order; ``"batches"`` permutes fixed batch compositions every epoch.
    rng:
        Generator used for shuffling (keeps epochs reproducible).
    cache_collate:
        Enable collate-once re-indexing and composition memoisation.  With
        ``False`` the loader collates from the Python sample list every epoch
        (the seed behaviour, retained as a benchmark/equivalence reference).
    """

    #: Bound on memoised batch compositions (LRU-evicted beyond this).
    MEMO_CAPACITY = 256

    def __init__(
        self,
        samples: Sequence[GraphSample],
        batch_size: int = 16,
        shuffle: Union[bool, str] = True,
        rng: Optional[np.random.Generator] = None,
        cache_collate: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not isinstance(shuffle, bool) and shuffle != "batches":
            raise ValueError(
                f"shuffle must be True, False or 'batches', got {shuffle!r}"
            )
        self.samples = list(samples)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.cache_collate = cache_collate
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._collated: Optional[_CollatedDataset] = None
        self._batch_memo: LRUCache = LRUCache(self.MEMO_CAPACITY)

    def __len__(self) -> int:
        return (len(self.samples) + self.batch_size - 1) // self.batch_size

    def _materialize(self, chunk: Sequence[int]) -> GraphBatch:
        if not self.cache_collate:
            return collate_graphs([self.samples[i] for i in chunk])
        if self._collated is None:
            self._collated = _CollatedDataset(self.samples)
        if self.shuffle is True or len(self) > self.MEMO_CAPACITY:
            # Sample-shuffled compositions essentially never repeat, and a
            # cyclic scan over more batches than the LRU holds evicts every
            # entry just before reuse — memoising would pin batches (and
            # their EdgePlans) with ~0% hit rate.  shuffle=False and
            # shuffle="batches" compositions repeat every epoch and are
            # memoised.
            return self._collated.gather(chunk)
        key = tuple(int(i) for i in chunk)
        batch = self._batch_memo.get(key)
        if batch is None:
            batch = self._collated.gather(chunk)
            self._batch_memo.put(key, batch)
        return batch

    def __iter__(self) -> Iterator[GraphBatch]:
        order = np.arange(len(self.samples))
        if self.shuffle == "batches":
            # Fixed contiguous compositions, visited in a fresh random order
            # each epoch; one rng draw per epoch mirrors shuffle=True.
            batch_order = np.arange(len(self))
            self._rng.shuffle(batch_order)
            for index in batch_order:
                start = int(index) * self.batch_size
                yield self._materialize(order[start : start + self.batch_size])
            return
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            yield self._materialize(order[start : start + self.batch_size])
