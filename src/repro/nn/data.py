"""Graph datasets, block-diagonal batching and the data loader.

A :class:`GraphSample` holds one flow graph in index form (token ids, node
types, relation-typed edges) plus a label and optional auxiliary feature
vector (normalised power cap, PAPI counters for the "dynamic" model variant).
:func:`collate_graphs` merges several samples into one large disconnected
graph (the PyTorch-Geometric batching trick), which lets the RGCN process a
minibatch with a single set of matrix operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["GraphSample", "GraphBatch", "collate_graphs", "GraphDataLoader"]


@dataclass(eq=False)
class GraphSample:
    """One code-region graph prepared for the model.

    Attributes
    ----------
    token_ids:
        Vocabulary index of each node's IR token, shape ``(num_nodes,)``.
    node_types:
        Node kind index (instruction / variable / constant), shape
        ``(num_nodes,)``.
    edge_index:
        ``(2, num_edges)`` source/destination node indices.
    edge_type:
        ``(num_edges,)`` relation index (control / data / call).
    label:
        Integer class label (index into the configuration space), or -1 when
        unknown (pure inference).
    aux_features:
        Optional per-graph auxiliary features appended to the pooled graph
        vector before the dense classifier (e.g. normalised power cap and
        performance counters).
    target_distribution:
        Optional soft label: a probability distribution over the classes in
        which every near-optimal configuration receives mass.  When present
        (and enabled in the training configuration) it replaces the hard
        ``label`` in the loss; ``label`` stays the argmin class for accuracy
        reporting.
    region_id:
        Identifier of the OpenMP region this graph was built from.
    """

    token_ids: np.ndarray
    node_types: np.ndarray
    edge_index: np.ndarray
    edge_type: np.ndarray
    label: int = -1
    aux_features: Optional[np.ndarray] = None
    target_distribution: Optional[np.ndarray] = None
    region_id: str = ""

    def __post_init__(self) -> None:
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        self.node_types = np.asarray(self.node_types, dtype=np.int64)
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64)
        self.edge_type = np.asarray(self.edge_type, dtype=np.int64)
        if self.aux_features is not None:
            self.aux_features = np.asarray(self.aux_features, dtype=np.float64)
        if self.target_distribution is not None:
            self.target_distribution = np.asarray(self.target_distribution, dtype=np.float64)
            total = self.target_distribution.sum()
            if total <= 0:
                raise ValueError("target_distribution must have positive mass")
            self.target_distribution = self.target_distribution / total
        if self.token_ids.shape != self.node_types.shape:
            raise ValueError("token_ids and node_types must have the same length")
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, num_edges)")
        if self.edge_type.shape[0] != self.edge_index.shape[1]:
            raise ValueError("edge_type must have one entry per edge")
        if self.num_nodes == 0:
            raise ValueError("graph must have at least one node")
        if self.edge_index.size and self.edge_index.max() >= self.num_nodes:
            raise ValueError("edge references a non-existent node")

    @property
    def num_nodes(self) -> int:
        return int(self.token_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])


@dataclass(eq=False)
class GraphBatch:
    """Several graphs merged into one disconnected graph."""

    token_ids: np.ndarray
    node_types: np.ndarray
    edge_index: np.ndarray
    edge_type: np.ndarray
    batch: np.ndarray
    labels: np.ndarray
    aux_features: Optional[np.ndarray]
    num_graphs: int
    region_ids: List[str] = field(default_factory=list)
    target_distributions: Optional[np.ndarray] = None

    @property
    def num_nodes(self) -> int:
        return int(self.token_ids.shape[0])


def collate_graphs(samples: Sequence[GraphSample]) -> GraphBatch:
    """Merge samples into a :class:`GraphBatch` with shifted node indices."""
    if not samples:
        raise ValueError("cannot collate an empty list of graphs")
    token_ids, node_types, edge_indices, edge_types, batch_vec = [], [], [], [], []
    labels, aux, region_ids, targets = [], [], [], []
    offset = 0
    has_aux = samples[0].aux_features is not None
    has_targets = samples[0].target_distribution is not None
    for graph_idx, sample in enumerate(samples):
        if (sample.aux_features is not None) != has_aux:
            raise ValueError("all samples must consistently have or lack aux_features")
        if (sample.target_distribution is not None) != has_targets:
            raise ValueError("all samples must consistently have or lack target_distribution")
        token_ids.append(sample.token_ids)
        node_types.append(sample.node_types)
        edge_indices.append(sample.edge_index + offset)
        edge_types.append(sample.edge_type)
        batch_vec.append(np.full(sample.num_nodes, graph_idx, dtype=np.int64))
        labels.append(sample.label)
        region_ids.append(sample.region_id)
        if has_aux:
            aux.append(sample.aux_features)
        if has_targets:
            targets.append(sample.target_distribution)
        offset += sample.num_nodes

    return GraphBatch(
        token_ids=np.concatenate(token_ids),
        node_types=np.concatenate(node_types),
        edge_index=np.concatenate(edge_indices, axis=1)
        if edge_indices
        else np.zeros((2, 0), dtype=np.int64),
        edge_type=np.concatenate(edge_types),
        batch=np.concatenate(batch_vec),
        labels=np.asarray(labels, dtype=np.int64),
        aux_features=np.stack(aux) if has_aux else None,
        num_graphs=len(samples),
        region_ids=region_ids,
        target_distributions=np.stack(targets) if has_targets else None,
    )


class GraphDataLoader:
    """Minibatch iterator over :class:`GraphSample` lists.

    Parameters
    ----------
    samples:
        The dataset.
    batch_size:
        Number of graphs per batch (Table II: 16).
    shuffle:
        Whether to reshuffle sample order every epoch.
    rng:
        Generator used for shuffling (keeps epochs reproducible).
    """

    def __init__(
        self,
        samples: Sequence[GraphSample],
        batch_size: int = 16,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.samples = list(samples)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        return (len(self.samples) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[GraphBatch]:
        order = np.arange(len(self.samples))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = [self.samples[i] for i in order[start : start + self.batch_size]]
            yield collate_graphs(chunk)
