"""First-order optimisers: SGD, Adam, and AdamW (with optional AMSGrad).

Table II of the paper specifies AdamW with ``amsgrad`` for the power-
constrained tuning experiments and plain Adam for the EDP experiments, both
at a learning rate of 1e-3.

Precision: every state buffer (momentum velocity, Adam first/second moments,
AMSGrad maxima) is derived from the parameter gradients with scalar
arithmetic only, so it carries the parameters' dtype — a ``float32`` model
trains with ``float32`` optimizer state and updates, with no hidden
``float64`` copies (asserted by the strict-mode tests in
``tests/nn/test_precision.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base class holding a parameter list and providing ``zero_grad``."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear the gradient of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            update = param.grad
            if self.momentum > 0.0:
                vel = self._velocity.get(id(param))
                if vel is not None and vel.dtype != update.dtype:
                    # The model was re-cast mid-training (Module.astype):
                    # carry the state over at the new precision instead of
                    # promoting every subsequent update back to the old one.
                    vel = vel.astype(update.dtype)
                vel = self.momentum * vel + update if vel is not None else update.copy()
                self._velocity[id(param)] = vel
                update = vel
            param.data = param.data - self.lr * update


class _AdamBase(Optimizer):
    """Shared machinery of Adam/AdamW."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        amsgrad: bool = False,
        decoupled_weight_decay: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.amsgrad = amsgrad
        self.decoupled = decoupled_weight_decay
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._vmax: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias_correction1 = 1.0 - self.beta1**t
        bias_correction2 = 1.0 - self.beta2**t
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0 and not self.decoupled:
                grad = grad + self.weight_decay * param.data

            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is not None and m.dtype != grad.dtype:
                # The model was re-cast mid-training (Module.astype): carry
                # the moments over at the new precision instead of promoting
                # every subsequent update back to the old dtype.
                m = m.astype(grad.dtype)
                v = v.astype(grad.dtype)
            m = self.beta1 * m + (1 - self.beta1) * grad if m is not None else (1 - self.beta1) * grad
            v = (
                self.beta2 * v + (1 - self.beta2) * grad * grad
                if v is not None
                else (1 - self.beta2) * grad * grad
            )
            self._m[key], self._v[key] = m, v

            if self.amsgrad:
                vmax = self._vmax.get(key)
                if vmax is not None and vmax.dtype != v.dtype:
                    vmax = vmax.astype(v.dtype)
                vmax = np.maximum(vmax, v) if vmax is not None else v.copy()
                self._vmax[key] = vmax
                denom = np.sqrt(vmax / bias_correction2) + self.eps
            else:
                denom = np.sqrt(v / bias_correction2) + self.eps

            step_size = self.lr / bias_correction1
            if self.weight_decay > 0.0 and self.decoupled:
                param.data = param.data - self.lr * self.weight_decay * param.data
            param.data = param.data - step_size * (m / denom)


class Adam(_AdamBase):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        amsgrad: bool = False,
    ) -> None:
        super().__init__(
            parameters, lr, betas, eps, weight_decay, amsgrad, decoupled_weight_decay=False
        )


class AdamW(_AdamBase):
    """AdamW: Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-2,
        amsgrad: bool = False,
    ) -> None:
        super().__init__(
            parameters, lr, betas, eps, weight_decay, amsgrad, decoupled_weight_decay=True
        )
