"""Fast, bit-identical scatter/segment kernels for the message-passing engine.

``np.add.at`` is the natural NumPy spelling of "sum rows into buckets" but its
unbuffered fancy-indexing loop is several times slower than a per-channel
``np.bincount`` sweep.  Both process the input strictly in index order, so for
any duplicate destination the partial sums are accumulated in exactly the same
sequence — the two spellings are **bit-identical**, which the equivalence
tests in ``tests/nn/test_edge_plan.py`` assert.

``reference_kernels()`` switches the module back to the ``np.add.at`` path;
``benchmarks/bench_engine.py`` uses it to time the seed implementation
without keeping a second copy of the code.

Precision: the kernels accept ``float32`` as well as ``float64`` input and
always return the input dtype.  ``np.bincount`` accumulates in double
precision internally, so the ``float32`` path is summed in ``float64`` and
cast back once — at least as accurate as native single-precision
accumulation, and it never leaks ``float64`` arrays into a ``float32``
forward/backward step (see :mod:`repro.nn.precision`).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

import numpy as np

__all__ = [
    "scatter_rows_sum",
    "count_index",
    "flat_scatter_index",
    "reference_kernels",
    "fast_kernels_enabled",
]

_USE_FAST = True

_FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


@contextlib.contextmanager
def reference_kernels() -> Iterator[None]:
    """Run the enclosed block with the original ``np.add.at`` kernels."""
    global _USE_FAST
    previous = _USE_FAST
    _USE_FAST = False
    try:
        yield
    finally:
        _USE_FAST = previous


def fast_kernels_enabled() -> bool:
    return _USE_FAST


def flat_scatter_index(index: np.ndarray, channels: int) -> np.ndarray:
    """Flattened (bucket, channel) bins for :func:`scatter_rows_sum`.

    Precompute once per (index array, channel count) — e.g. per
    :class:`~repro.nn.data.EdgePlan` relation — and pass as ``flat`` to
    amortise the index expansion across layers and training steps.
    """
    return (index[:, None] * channels + np.arange(channels)).ravel()


def scatter_rows_sum(
    data: np.ndarray,
    index: np.ndarray,
    dim_size: int,
    flat: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``out[j] = sum_{i : index[i] == j} data[i]`` for 2-D float ``data``.

    Falls back to ``np.add.at`` for non-2-D inputs (and under
    :func:`reference_kernels`); the fast path runs one flat ``np.bincount``
    over (bucket, channel) bins: ``data.ravel()`` walks rows in index order
    and channels in order within a row, so duplicates of any bin accumulate
    in exactly ``np.add.at``'s order — the ``float64`` results are
    bit-identical.  The output always carries ``data``'s dtype.
    """
    if not _USE_FAST or data.ndim != 2 or data.dtype not in _FLOAT_DTYPES:
        out_dtype = data.dtype if data.dtype in _FLOAT_DTYPES else np.float64
        out = np.zeros((dim_size,) + data.shape[1:], dtype=out_dtype)
        np.add.at(out, index, data)
        return out
    channels = data.shape[1]
    if channels == 0 or index.size == 0:
        return np.zeros((dim_size, channels), dtype=data.dtype)
    if flat is None:
        flat = flat_scatter_index(index, channels)
    summed = np.bincount(flat, weights=data.ravel(), minlength=dim_size * channels)
    return summed.reshape(dim_size, channels).astype(data.dtype, copy=False)


def count_index(
    index: np.ndarray, dim_size: int, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Occurrences of each bucket in ``index`` as ``dtype`` (in-degree counts).

    Counts are integers, so they are exact in either supported precision;
    callers building :class:`~repro.nn.data.EdgePlan` normalisations pass the
    plan dtype to keep the ``1 / degree`` columns promotion-free.
    """
    if not _USE_FAST:
        counts = np.zeros(dim_size, dtype=dtype)
        np.add.at(counts, index, 1.0)
        return counts
    return np.bincount(index, minlength=dim_size).astype(dtype)
