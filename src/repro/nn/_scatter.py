"""Fast, bit-identical scatter/segment kernels for the message-passing engine.

``np.add.at`` is the natural NumPy spelling of "sum rows into buckets" but its
unbuffered fancy-indexing loop is several times slower than a per-channel
``np.bincount`` sweep.  Both process the input strictly in index order, so for
any duplicate destination the partial sums are accumulated in exactly the same
sequence — the two spellings are **bit-identical**, which the equivalence
tests in ``tests/nn/test_edge_plan.py`` assert.

``reference_kernels()`` switches the module back to the ``np.add.at`` path;
``benchmarks/bench_engine.py`` uses it to time the seed implementation
without keeping a second copy of the code.

Precision: the kernels accept ``float32`` as well as ``float64`` input and
always return the input dtype.  ``np.bincount`` accumulates in double
precision internally, so the default ``float32`` path is summed in
``float64`` and cast back once — at least as accurate as native
single-precision accumulation, and it never leaks ``float64`` arrays into a
``float32`` forward/backward step (see :mod:`repro.nn.precision`).

For bandwidth-bound ``float32`` scatters there is a second, pure
single-precision schedule: a :class:`SegmentSchedule` (stable sort of the
destination indices + segment boundaries) lets ``np.add.reduceat``
accumulate each bucket natively in ``float32`` — no ``float64`` round trip,
half the accumulator traffic.  The schedule is precomputed once per index
array (an :class:`~repro.nn.data.EdgePlan` memoises one per relation) and
the path is toggled with :func:`set_reduceat_scatter` /
:func:`reduceat_scatter`; ``float64`` data always keeps the bit-identical
bincount path regardless of the toggle.  On this NumPy build the reduceat
schedule does **not** beat the bincount round trip (see the module switch
below), so it ships disabled by default and ``bench_engine`` keeps
measuring both.  ``set_reduceat_scatter("auto")`` runs a one-shot cached
microcalibration and flips to whichever schedule wins on the running
build, so no build's answer needs hardcoding.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

__all__ = [
    "scatter_rows_sum",
    "count_index",
    "flat_scatter_index",
    "SegmentSchedule",
    "build_segment_schedule",
    "reference_kernels",
    "fast_kernels_enabled",
    "reduceat_scatter",
    "set_reduceat_scatter",
    "reduceat_scatter_enabled",
]

_USE_FAST = True

#: Use the sorted-segment ``np.add.reduceat`` schedule for float32 scatters
#: when the caller supplies a :class:`SegmentSchedule`.  Default **off**:
#: profiled on this NumPy/OpenBLAS build (``bench_engine``'s ``scatter_mp``
#: reduceat axis), the pure single-precision accumulation only ties the
#: bincount float64 round trip at 32 channels and loses at 64 — bincount's
#: fused one-pass double accumulation is cheaper than reduceat's strided
#: per-segment loop plus the stable-sort permutation gather.  The schedule
#: is kept behind this switch for genuinely bandwidth-starved builds.
_USE_REDUCEAT = False

#: Cached verdict of the one-shot reduceat-vs-bincount microcalibration
#: (``set_reduceat_scatter("auto")``): ``None`` until first measured.
_AUTO_REDUCEAT: Optional[bool] = None

_FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


@contextlib.contextmanager
def reference_kernels() -> Iterator[None]:
    """Run the enclosed block with the original ``np.add.at`` kernels."""
    global _USE_FAST
    previous = _USE_FAST
    _USE_FAST = False
    try:
        yield
    finally:
        _USE_FAST = previous


def fast_kernels_enabled() -> bool:
    return _USE_FAST


@contextlib.contextmanager
def reduceat_scatter(enabled: bool = True) -> Iterator[None]:
    """Scope the float32 sorted-segment reduceat scatter path on or off."""
    global _USE_REDUCEAT
    previous = _USE_REDUCEAT
    _USE_REDUCEAT = enabled
    try:
        yield
    finally:
        _USE_REDUCEAT = previous


def _calibrate_reduceat(
    num_rows: int = 80_000,
    num_buckets: int = 16_000,
    channels: int = 32,
    repeats: int = 3,
) -> bool:
    """One-shot microcalibration: does reduceat beat bincount *here*?

    Times the two float32 scatter schedules on a synthetic workload shaped
    like the message-passing hot loop (many rows, moderate channel count,
    ~5 rows per bucket) and returns whether the pure single-precision
    sorted-segment ``np.add.reduceat`` path wins over the flat-bincount
    float64 round trip on this NumPy build.  Best-of-``repeats`` so
    scheduler noise cannot flip the verdict; the result is cached for the
    process (ROADMAP: "flip the default where it wins" without hardcoding
    any particular build's answer).
    """
    global _AUTO_REDUCEAT
    if _AUTO_REDUCEAT is not None:
        return _AUTO_REDUCEAT
    rng = np.random.default_rng(0)
    index = rng.integers(0, num_buckets, size=num_rows)
    data = rng.standard_normal((num_rows, channels)).astype(np.float32)
    flat = flat_scatter_index(index, channels)
    segments = build_segment_schedule(index)

    # Time the *shipped* kernel under each toggle state (not inline copies
    # of its branches), so the calibration cannot drift from the code it
    # chooses between.
    def bincount_path() -> np.ndarray:
        with reduceat_scatter(False):
            return scatter_rows_sum(data, index, num_buckets, flat=flat)

    def reduceat_path() -> np.ndarray:
        with reduceat_scatter(True):
            return scatter_rows_sum(data, index, num_buckets, segments=segments)

    bincount_path(), reduceat_path()  # warm allocator/caches before timing
    best = {"bincount": float("inf"), "reduceat": float("inf")}
    for _ in range(repeats):
        for name, path in (("bincount", bincount_path), ("reduceat", reduceat_path)):
            start = time.perf_counter()
            path()
            best[name] = min(best[name], time.perf_counter() - start)
    _AUTO_REDUCEAT = best["reduceat"] < best["bincount"]
    return _AUTO_REDUCEAT


def set_reduceat_scatter(enabled: Union[bool, str]) -> bool:
    """Process-wide toggle for the reduceat path; returns the previous value.

    ``enabled`` may be the string ``"auto"``: the schedule choice is then
    measured once per process (:func:`_calibrate_reduceat`, cached) and the
    winner on *this* NumPy build becomes the default — bincount keeps the
    float64 accuracy edge either way, since float64 data never takes the
    reduceat path.
    """
    global _USE_REDUCEAT
    previous = _USE_REDUCEAT
    if isinstance(enabled, str):
        if enabled != "auto":
            raise ValueError(
                f"set_reduceat_scatter accepts True, False or 'auto', got {enabled!r}"
            )
        enabled = _calibrate_reduceat()
    _USE_REDUCEAT = bool(enabled)
    return previous


def reduceat_scatter_enabled() -> bool:
    return _USE_REDUCEAT


@dataclass(frozen=True)
class SegmentSchedule:
    """Sorted-segment schedule for a pure single-precision scatter.

    ``perm`` is the *stable* argsort of the scatter index array, ``starts``
    the first permuted position of each occupied bucket and ``buckets`` the
    bucket id of each segment.  ``np.add.reduceat(data[perm], starts)`` then
    sums every bucket natively in the data dtype; stability means rows of a
    bucket are accumulated in their original index order (the same order as
    ``np.add.at``).
    """

    perm: np.ndarray
    starts: np.ndarray
    buckets: np.ndarray


def build_segment_schedule(index: np.ndarray) -> SegmentSchedule:
    """Precompute the :class:`SegmentSchedule` of a scatter index array."""
    index = np.asarray(index, dtype=np.int64)
    perm = np.argsort(index, kind="stable")
    sorted_index = index[perm]
    if sorted_index.size:
        starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_index)) + 1))
        buckets = sorted_index[starts]
    else:
        starts = np.zeros(0, dtype=np.int64)
        buckets = np.zeros(0, dtype=np.int64)
    return SegmentSchedule(perm=perm, starts=starts, buckets=buckets)


def flat_scatter_index(index: np.ndarray, channels: int) -> np.ndarray:
    """Flattened (bucket, channel) bins for :func:`scatter_rows_sum`.

    Precompute once per (index array, channel count) — e.g. per
    :class:`~repro.nn.data.EdgePlan` relation — and pass as ``flat`` to
    amortise the index expansion across layers and training steps.
    """
    return (index[:, None] * channels + np.arange(channels)).ravel()


def scatter_rows_sum(
    data: np.ndarray,
    index: np.ndarray,
    dim_size: int,
    flat: Optional[np.ndarray] = None,
    segments: Optional[SegmentSchedule] = None,
) -> np.ndarray:
    """``out[j] = sum_{i : index[i] == j} data[i]`` for 2-D float ``data``.

    Falls back to ``np.add.at`` for non-2-D inputs (and under
    :func:`reference_kernels`); the fast path runs one flat ``np.bincount``
    over (bucket, channel) bins: ``data.ravel()`` walks rows in index order
    and channels in order within a row, so duplicates of any bin accumulate
    in exactly ``np.add.at``'s order — the ``float64`` results are
    bit-identical.  The output always carries ``data``'s dtype.

    ``float32`` data with a precomputed ``segments`` schedule additionally
    selects the pure single-precision ``np.add.reduceat`` path (when enabled
    — see :func:`reduceat_scatter`): no float64 accumulator round trip, at
    the cost of ``float32``-native rounding per partial sum.  ``float64``
    data ignores ``segments`` so the default precision stays bit-identical
    to the seed kernels.
    """
    if not _USE_FAST or data.ndim != 2 or data.dtype not in _FLOAT_DTYPES:
        out_dtype = data.dtype if data.dtype in _FLOAT_DTYPES else np.float64
        out = np.zeros((dim_size,) + data.shape[1:], dtype=out_dtype)
        np.add.at(out, index, data)
        return out
    channels = data.shape[1]
    if channels == 0 or index.size == 0:
        return np.zeros((dim_size, channels), dtype=data.dtype)
    if (
        _USE_REDUCEAT
        and segments is not None
        and data.dtype == np.float32
        and segments.starts.size
    ):
        out = np.zeros((dim_size, channels), dtype=np.float32)
        out[segments.buckets] = np.add.reduceat(
            data[segments.perm], segments.starts, axis=0
        )
        return out
    if flat is None:
        flat = flat_scatter_index(index, channels)
    summed = np.bincount(flat, weights=data.ravel(), minlength=dim_size * channels)
    return summed.reshape(dim_size, channels).astype(data.dtype, copy=False)


def count_index(
    index: np.ndarray, dim_size: int, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Occurrences of each bucket in ``index`` as ``dtype`` (in-degree counts).

    Counts are integers, so they are exact in either supported precision;
    callers building :class:`~repro.nn.data.EdgePlan` normalisations pass the
    plan dtype to keep the ``1 / degree`` columns promotion-free.
    """
    if not _USE_FAST:
        counts = np.zeros(dim_size, dtype=dtype)
        np.add.at(counts, index, 1.0)
        return counts
    return np.bincount(index, minlength=dim_size).astype(dtype)
