"""Fast, bit-identical scatter/segment kernels for the message-passing engine.

``np.add.at`` is the natural NumPy spelling of "sum rows into buckets" but its
unbuffered fancy-indexing loop is several times slower than a per-channel
``np.bincount`` sweep.  Both process the input strictly in index order, so for
any duplicate destination the partial sums are accumulated in exactly the same
sequence — the two spellings are **bit-identical**, which the equivalence
tests in ``tests/nn/test_edge_plan.py`` assert.

``reference_kernels()`` switches the module back to the ``np.add.at`` path;
``benchmarks/bench_engine.py`` uses it to time the seed implementation
without keeping a second copy of the code.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

import numpy as np

__all__ = [
    "scatter_rows_sum",
    "count_index",
    "flat_scatter_index",
    "reference_kernels",
    "fast_kernels_enabled",
]

_USE_FAST = True


@contextlib.contextmanager
def reference_kernels() -> Iterator[None]:
    """Run the enclosed block with the original ``np.add.at`` kernels."""
    global _USE_FAST
    previous = _USE_FAST
    _USE_FAST = False
    try:
        yield
    finally:
        _USE_FAST = previous


def fast_kernels_enabled() -> bool:
    return _USE_FAST


def flat_scatter_index(index: np.ndarray, channels: int) -> np.ndarray:
    """Flattened (bucket, channel) bins for :func:`scatter_rows_sum`.

    Precompute once per (index array, channel count) — e.g. per
    :class:`~repro.nn.data.EdgePlan` relation — and pass as ``flat`` to
    amortise the index expansion across layers and training steps.
    """
    return (index[:, None] * channels + np.arange(channels)).ravel()


def scatter_rows_sum(
    data: np.ndarray,
    index: np.ndarray,
    dim_size: int,
    flat: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``out[j] = sum_{i : index[i] == j} data[i]`` for 2-D float ``data``.

    Falls back to ``np.add.at`` for non-2-D inputs (and under
    :func:`reference_kernels`); the fast path runs one flat ``np.bincount``
    over (bucket, channel) bins: ``data.ravel()`` walks rows in index order
    and channels in order within a row, so duplicates of any bin accumulate
    in exactly ``np.add.at``'s order — the results are bit-identical.
    """
    if not _USE_FAST or data.ndim != 2 or data.dtype != np.float64:
        out = np.zeros((dim_size,) + data.shape[1:], dtype=np.float64)
        np.add.at(out, index, data)
        return out
    channels = data.shape[1]
    if channels == 0 or index.size == 0:
        return np.zeros((dim_size, channels), dtype=np.float64)
    if flat is None:
        flat = flat_scatter_index(index, channels)
    summed = np.bincount(flat, weights=data.ravel(), minlength=dim_size * channels)
    return summed.reshape(dim_size, channels)


def count_index(index: np.ndarray, dim_size: int) -> np.ndarray:
    """Occurrences of each bucket in ``index`` as float64 (in-degree counts)."""
    if not _USE_FAST:
        counts = np.zeros(dim_size, dtype=np.float64)
        np.add.at(counts, index, 1.0)
        return counts
    return np.bincount(index, minlength=dim_size).astype(np.float64)
