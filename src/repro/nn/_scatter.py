"""Fast, bit-identical scatter/segment kernels for the message-passing engine.

``np.add.at`` is the natural NumPy spelling of "sum rows into buckets" but its
unbuffered fancy-indexing loop is several times slower than the vectorised
schedules below.  Three interchangeable backends ship, selected process-wide
with :func:`set_scatter_backend` (or scoped with :func:`scatter_backend`):

``"bincount"`` (default)
    One flat ``np.bincount`` over (bucket, channel) bins.  ``data.ravel()``
    walks rows in index order and channels in order within a row, so
    duplicates of any bin accumulate in exactly ``np.add.at``'s order — the
    ``float64`` results are **bit-identical** to the seed kernels.
    ``float32`` data is accumulated through bincount's internal ``float64``
    and cast back once.  Allocates its output (and, for ``float32``, a
    weights cast) on every call.

``"reduceat"``
    The PR-3 pure single-precision schedule: a :class:`SegmentSchedule`
    (stable sort of the destination indices + segment boundaries) lets
    ``np.add.reduceat`` sum every bucket natively in ``float32`` — no
    ``float64`` round trip.  ``np.add.reduceat`` reduces each segment in a
    pairwise (not index) order, so this backend is *within tolerance* of the
    others at ``float32`` and is never applied to ``float64`` data, which
    silently keeps the bit-identical bincount path.

``"prealloc"``
    The allocation-free backend: :func:`scatter_rows_sum_into` accumulates
    into a **caller-owned** output buffer through a :class:`RoundSchedule` —
    segments sorted by descending length, one rounds-ordered gather, then
    one contiguous ``np.add`` slice per round, and a strided copy-out into
    ``out``.  Round ``r`` adds the ``(r+1)``-th element of every still-live
    segment, so each bucket accumulates strictly in original index order:
    **bit-identical to ``np.add.at`` (and bincount) at float64**, and at
    ``float32`` it matches native single-precision sequential accumulation
    (within tolerance of bincount's double round trip).  Degenerate indices
    (one bucket receiving more than ``_ROUNDS_CAP`` rows) fall back to a
    zeroed ``np.add.at`` — still allocation-free, still bit-identical.
    With a :class:`ScatterWorkspace` supplied, the kernel performs **zero**
    array allocations; the compiled inference runtime
    (:mod:`repro.nn.inference`) plans those workspaces into its arena.

``set_scatter_backend("auto")`` runs a one-shot cached microcalibration of
all three backends on a message-passing-shaped workload and adopts whichever
wins on the running build, so no build's answer needs hardcoding.  The older
two-way API (:func:`set_reduceat_scatter`, :func:`reduceat_scatter`,
``set_reduceat_scatter("auto")``) is kept and maps onto the backend switch.

``reference_kernels()`` switches the module back to the ``np.add.at`` path;
``benchmarks/bench_engine.py`` uses it to time the seed implementation
without keeping a second copy of the code (and its ``scatter_mp`` axis
times all three backends against each other).
"""

from __future__ import annotations

import contextlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Union

import numpy as np

__all__ = [
    "scatter_rows_sum",
    "scatter_rows_sum_into",
    "count_index",
    "flat_scatter_index",
    "SegmentSchedule",
    "RoundSchedule",
    "ScatterWorkspace",
    "build_segment_schedule",
    "build_round_schedule",
    "reference_kernels",
    "fast_kernels_enabled",
    "scatter_backend",
    "set_scatter_backend",
    "scatter_backend_name",
    "segments_active",
    "reduceat_scatter",
    "set_reduceat_scatter",
    "reduceat_scatter_enabled",
]

_USE_FAST = True

#: The registered scatter backends (see the module docstring).
SCATTER_BACKENDS = ("bincount", "reduceat", "prealloc")

#: Active backend.  Default ``"bincount"``: profiled on this NumPy/OpenBLAS
#: build (``bench_engine``'s ``scatter_mp`` axis), the fused one-pass double
#: accumulation is the strongest allocating schedule at small/medium sizes,
#: and it is the seed-history bit-exact reference.  ``"prealloc"`` wins once
#: callers own the buffers (the compiled runtime) or at large float32 sizes;
#: ``set_scatter_backend("auto")`` measures and picks per build.
_BACKEND = "bincount"

#: Cached verdict of the one-shot three-way microcalibration
#: (``set_scatter_backend("auto")``): ``None`` until first measured.
_AUTO_BACKEND: Optional[str] = None

#: Cached verdict of the legacy two-way reduceat-vs-bincount calibration
#: (``set_reduceat_scatter("auto")``): ``None`` until first measured.
_AUTO_REDUCEAT: Optional[bool] = None

#: Above this many rounds (= max rows landing in one bucket) the rounds
#: kernel's per-round dispatch overhead loses to ``np.add.at``;
#: :func:`scatter_rows_sum_into` falls back (still allocation-free and
#: bit-identical, just slower).
_ROUNDS_CAP = 4096

_FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


@contextlib.contextmanager
def reference_kernels() -> Iterator[None]:
    """Run the enclosed block with the original ``np.add.at`` kernels."""
    global _USE_FAST
    previous = _USE_FAST
    _USE_FAST = False
    try:
        yield
    finally:
        _USE_FAST = previous


def fast_kernels_enabled() -> bool:
    return _USE_FAST


# --------------------------------------------------------------------------
# Backend selection
# --------------------------------------------------------------------------
def set_scatter_backend(backend: str) -> str:
    """Select the process-wide scatter backend; returns the previous name.

    ``backend`` is one of ``SCATTER_BACKENDS`` or ``"auto"``, which runs the
    one-shot cached three-way microcalibration (:func:`_calibrate_backend`)
    and adopts the winner on *this* NumPy build.  ``float64`` data keeps
    bit-identical results under every backend (``"reduceat"`` simply does
    not apply to it); ``float32`` results differ across backends within
    accumulation-order tolerance.
    """
    global _BACKEND
    previous = _BACKEND
    if backend == "auto":
        backend = _calibrate_backend()
    if backend not in SCATTER_BACKENDS:
        raise ValueError(
            f"set_scatter_backend accepts {SCATTER_BACKENDS} or 'auto', "
            f"got {backend!r}"
        )
    _BACKEND = backend
    return previous


def scatter_backend_name() -> str:
    """The currently active scatter backend name."""
    return _BACKEND


@contextlib.contextmanager
def scatter_backend(backend: str) -> Iterator[None]:
    """Scope the scatter backend (``SCATTER_BACKENDS`` or ``"auto"``)."""
    previous = set_scatter_backend(backend)
    try:
        yield
    finally:
        set_scatter_backend(previous)


def segments_active(dtype) -> bool:
    """Whether callers should pass sorted-segment schedules for ``dtype``.

    True under ``"prealloc"`` for either float dtype (the rounds kernel is
    bit-identical at float64) and under ``"reduceat"`` for ``float32`` only
    (its pairwise segment sums would break float64 bit-identity).
    """
    if _BACKEND == "prealloc":
        return np.dtype(dtype) in _FLOAT_DTYPES
    return _BACKEND == "reduceat" and np.dtype(dtype) == np.float32


def _warn_reduceat_deprecated(name: str) -> None:
    warnings.warn(
        f"{name} is deprecated; use set_scatter_backend / scatter_backend / "
        "scatter_backend_name (exported from repro.nn) — the two-way reduceat "
        "toggle collapsed onto the three-way backend switch in PR 9",
        DeprecationWarning,
        stacklevel=3,
    )


@contextlib.contextmanager
def reduceat_scatter(enabled: bool = True) -> Iterator[None]:
    """Scope the float32 sorted-segment reduceat scatter path on or off.

    .. deprecated:: PR 10
        Legacy two-way switch kept from PR 3; use
        ``scatter_backend("reduceat")`` / ``scatter_backend("bincount")``.
        ``True`` selects the ``"reduceat"`` backend, ``False`` the
        ``"bincount"`` backend; the previously active backend (whichever of
        the three) is restored on exit.
    """
    _warn_reduceat_deprecated("reduceat_scatter")
    previous = set_scatter_backend("reduceat" if enabled else "bincount")
    try:
        yield
    finally:
        set_scatter_backend(previous)


def set_reduceat_scatter(enabled: Union[bool, str]) -> bool:
    """Process-wide toggle for the reduceat path; returns the previous value.

    .. deprecated:: PR 10
        Use :func:`set_scatter_backend` — this API predates the three-way
        backend switch and collapses onto it (the returned "previous value"
        is whether the ``"reduceat"`` backend was active).

    ``enabled`` may be the string ``"auto"``: the schedule choice is then
    measured once per process (:func:`_calibrate_reduceat`, cached) and the
    winner on *this* NumPy build becomes the default — bincount keeps the
    float64 accuracy edge either way, since float64 data never takes the
    reduceat path.
    """
    _warn_reduceat_deprecated("set_reduceat_scatter")
    if isinstance(enabled, str):
        if enabled != "auto":
            raise ValueError(
                f"set_reduceat_scatter accepts True, False or 'auto', got {enabled!r}"
            )
        enabled = _calibrate_reduceat()
    previous = set_scatter_backend("reduceat" if enabled else "bincount")
    return previous == "reduceat"


def reduceat_scatter_enabled() -> bool:
    """Whether the ``"reduceat"`` backend is active.

    .. deprecated:: PR 10
        Use ``scatter_backend_name() == "reduceat"``.
    """
    return _BACKEND == "reduceat"


# --------------------------------------------------------------------------
# Schedules
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class RoundSchedule:
    """Round-major schedule for the allocation-free sequential segment sum.

    Derived from a :class:`SegmentSchedule` by sorting segments by
    descending length (stable, so equal-length segments keep their bucket
    order).  Round ``r`` processes the ``(r+1)``-th row of every segment
    still longer than ``r`` — because segments are length-sorted, those
    form the contiguous prefix ``[0, counts[r])`` of the segment list.

    ``src`` concatenates, round by round, the *original data row* feeding
    each (round, segment) slot, so one ``np.take`` materialises every
    round's rows contiguously; ``offsets[r] : offsets[r] + counts[r]``
    slices round ``r``.  ``buckets`` maps segment slots back to output rows
    for the final strided copy-out.  Each bucket therefore accumulates its
    rows strictly in original index order — the ``np.add.at`` order.
    """

    src: np.ndarray
    counts: np.ndarray
    offsets: np.ndarray
    buckets: np.ndarray
    _take: Dict[int, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def num_rounds(self) -> int:
        return self.counts.shape[0]

    @property
    def num_segments(self) -> int:
        return self.buckets.shape[0]

    @property
    def num_rows(self) -> int:
        return self.src.shape[0]

    def take_index(self, dim_size: int) -> np.ndarray:
        """Memoised copy-out gather: output row → segment slot (or the pad).

        Maps every output row to its segment's position in the length-sorted
        segment list, and rows with no incoming segment to ``num_segments``
        — the zeroed pad row of the workspace's ``seg`` buffer — so the
        whole copy-out is one ``np.take`` instead of a zero-fill plus a
        fancy-index assignment.
        """
        cached = self._take.get(dim_size)
        if cached is None:
            cached = np.full(dim_size, self.num_segments, dtype=np.intp)
            cached[self.buckets] = np.arange(self.num_segments, dtype=np.intp)
            self._take[dim_size] = cached
        return cached


@dataclass(frozen=True)
class SegmentSchedule:
    """Sorted-segment schedule for a pure single-precision scatter.

    ``perm`` is the *stable* argsort of the scatter index array, ``starts``
    the first permuted position of each occupied bucket and ``buckets`` the
    bucket id of each segment.  ``np.add.reduceat(data[perm], starts)`` then
    sums every bucket natively in the data dtype; stability means rows of a
    bucket are accumulated in their original index order, though
    ``np.add.reduceat`` itself reassociates each segment's partial sums
    (pairwise), which is why the reduceat backend is float32-only.  The
    strictly index-ordered :class:`RoundSchedule` derived by
    :meth:`rounds` (memoised here, so every
    :class:`~repro.nn.data.EdgePlan` relation builds it at most once) is
    what the bit-identical ``"prealloc"`` backend consumes.
    """

    perm: np.ndarray
    starts: np.ndarray
    buckets: np.ndarray
    #: True when the index array was already segment-sorted (``perm`` is the
    #: identity) — e.g. single-graph pooling — so ordered kernels can read
    #: ``data`` directly instead of gathering through ``perm``.
    presorted: bool = False
    _rounds: Optional[RoundSchedule] = field(
        default=None, repr=False, compare=False
    )

    def rounds(self) -> RoundSchedule:
        """The memoised :class:`RoundSchedule` of this segment schedule."""
        if self._rounds is None:
            object.__setattr__(self, "_rounds", build_round_schedule(self))
        return self._rounds


def build_segment_schedule(index: np.ndarray) -> SegmentSchedule:
    """Precompute the :class:`SegmentSchedule` of a scatter index array."""
    index = np.asarray(index, dtype=np.int64)
    perm = np.argsort(index, kind="stable")
    sorted_index = index[perm]
    if sorted_index.size:
        starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_index)) + 1))
        buckets = sorted_index[starts]
        # A strictly increasing permutation is the identity permutation.
        presorted = bool(np.all(perm[1:] > perm[:-1]))
    else:
        starts = np.zeros(0, dtype=np.int64)
        buckets = np.zeros(0, dtype=np.int64)
        presorted = True
    return SegmentSchedule(
        perm=perm, starts=starts, buckets=buckets, presorted=presorted
    )


def build_round_schedule(segments: SegmentSchedule) -> RoundSchedule:
    """Derive the round-major :class:`RoundSchedule` from a segment schedule."""
    perm, starts, buckets = segments.perm, segments.starts, segments.buckets
    num_rows = perm.shape[0]
    num_segments = starts.shape[0]
    empty = np.zeros(0, dtype=np.int64)
    if num_segments == 0:
        return RoundSchedule(
            src=empty, counts=empty, offsets=np.zeros(1, dtype=np.int64), buckets=empty
        )
    lengths = np.diff(np.append(starts, num_rows))
    order = np.argsort(-lengths, kind="stable")
    sorted_starts = starts[order]
    num_rounds = int(lengths[order[0]])
    # counts[r] = segments longer than r rows = the live prefix of round r.
    histogram = np.bincount(lengths, minlength=num_rounds + 1)
    counts = (num_segments - np.cumsum(histogram)[:num_rounds]).astype(np.int64)
    src = np.concatenate(
        [perm[sorted_starts[: counts[r]] + r] for r in range(num_rounds)]
    )
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return RoundSchedule(
        src=src, counts=counts, offsets=offsets, buckets=buckets[order]
    )


class ScatterWorkspace:
    """Caller-owned scratch for the allocation-free ``"prealloc"`` backend.

    ``gathered`` holds the schedule-ordered gather of the input rows plus
    one trailing pad row (``(num_rows + 1) × channels``).  The rounds
    kernel accumulates segment sums *in place* in the leading
    ``num_segments`` rows (round 0's gather already lands every segment's
    first row there; later rounds' source rows all sit past that prefix,
    so the in-place adds never alias), and the pad row — zeroed per call,
    the buffer may be arena-shared — feeds bucket-less output rows of the
    copy-out ``np.take``.  The compiled runtime carves the buffer out of
    its arena (sized to the largest relation) and hands per-relation
    slices here; :func:`scatter_rows_sum_into` allocates a private one
    only when the caller does not supply it.
    """

    __slots__ = ("gathered",)

    def __init__(self, gathered: np.ndarray) -> None:
        self.gathered = gathered

    @classmethod
    def for_rounds(
        cls, rounds: RoundSchedule, channels: int, dtype
    ) -> "ScatterWorkspace":
        return cls(gathered=np.empty((rounds.num_rows + 1, channels), dtype=dtype))

    @property
    def nbytes(self) -> int:
        return self.gathered.nbytes


def flat_scatter_index(index: np.ndarray, channels: int) -> np.ndarray:
    """Flattened (bucket, channel) bins for :func:`scatter_rows_sum`.

    Precompute once per (index array, channel count) — e.g. per
    :class:`~repro.nn.data.EdgePlan` relation — and pass as ``flat`` to
    amortise the index expansion across layers and training steps.
    """
    return (index[:, None] * channels + np.arange(channels)).ravel()


# --------------------------------------------------------------------------
# Kernels
# --------------------------------------------------------------------------
def scatter_rows_sum_into(
    out: np.ndarray,
    data: np.ndarray,
    index: np.ndarray,
    segments: Optional[SegmentSchedule] = None,
    workspace: Optional[ScatterWorkspace] = None,
) -> np.ndarray:
    """``out[j] = sum_{i : index[i] == j} data[i]`` into a caller-owned buffer.

    The ``"prealloc"`` backend kernel: ``out`` (shape ``(dim_size,
    channels)``, ``data``'s dtype) is overwritten, never allocated.  With a
    ``segments`` schedule it picks, per call, whichever of two strictly
    index-ordered sub-kernels has the shorter Python loop:

    * **rounds** (many short segments — relation scatters): one fused
      schedule-ordered gather plus one contiguous ``np.add`` per round,
      then a single padded ``np.take`` copy-out.
    * **segment reduce** (few long segments — pooling, where the rounds
      loop would degenerate to one tiny add per row): one sorted gather,
      then ``np.add.reduce`` per segment straight into its output row.
      (``np.add.reduce`` along axis 0 accumulates rows in order — unlike
      ``np.add.reduceat``, which pairwise-reassociates.)

    Both accumulate every bucket strictly in original index order:
    bit-identical to ``np.add.at`` at **both** dtypes (hence to bincount at
    float64).  Without ``segments`` (or for degenerate indices, non-2-D
    data, or under :func:`reference_kernels`) it falls back to a zeroed
    ``np.add.at`` — slower, still allocation-free, same bits.

    Supplying a :class:`ScatterWorkspace` makes the call perform **zero**
    array allocations; otherwise a private workspace is allocated.
    """
    if (
        _USE_FAST
        and segments is not None
        and data.ndim == 2
        and data.dtype in _FLOAT_DTYPES
        and segments.starts.size
    ):
        rounds = segments.rounds()
        num_segments = rounds.num_segments
        num_rounds = rounds.num_rounds
        channels = data.shape[1]
        if workspace is None:
            workspace = ScatterWorkspace.for_rounds(rounds, channels, data.dtype)
        # Schedule indices are in-bounds by construction, so every take may
        # use mode="clip" and skip NumPy's bounds pre-pass.
        if num_segments < num_rounds or num_rounds > _ROUNDS_CAP:
            # Few long segments: sorted gather, one ordered reduce each.
            starts, buckets = segments.starts, segments.buckets
            num_rows = segments.perm.shape[0]
            if segments.presorted:
                gathered = data
            else:
                gathered = workspace.gathered[:num_rows]
                data.take(segments.perm, axis=0, out=gathered, mode="clip")
            out.fill(0)
            for i in range(num_segments):
                begin = starts[i]
                end = starts[i + 1] if i + 1 < num_segments else num_rows
                np.add.reduce(gathered[begin:end], axis=0, out=out[buckets[i]])
            return out
        buffer = workspace.gathered
        gathered = buffer[: rounds.num_rows]
        data.take(rounds.src, axis=0, out=gathered, mode="clip")
        counts, offsets = rounds.counts, rounds.offsets
        # Round 0's gather already placed every segment's first row in the
        # leading prefix; later rounds' source rows all sit past it
        # (offsets[r] >= counts[0] >= live), so these adds never alias.
        for r in range(1, num_rounds):
            live = counts[r]
            start = offsets[r]
            np.add(gathered[:live], gathered[start : start + live], out=gathered[:live])
        # Pad row feeds bucket-less output rows; the buffer may be shared
        # (arena slab), so it cannot be assumed still zero from last call.
        buffer[num_segments].fill(0)
        np.take(buffer, rounds.take_index(out.shape[0]), axis=0, out=out, mode="clip")
        return out
    out.fill(0)
    np.add.at(out, index, data)
    return out


def scatter_rows_sum(
    data: np.ndarray,
    index: np.ndarray,
    dim_size: int,
    flat: Optional[np.ndarray] = None,
    segments: Optional[SegmentSchedule] = None,
) -> np.ndarray:
    """``out[j] = sum_{i : index[i] == j} data[i]`` for 2-D float ``data``.

    Falls back to ``np.add.at`` for non-2-D inputs (and under
    :func:`reference_kernels`); otherwise dispatches on the active backend
    (see the module docstring).  The default flat-bincount path runs one
    ``np.bincount`` over (bucket, channel) bins: ``data.ravel()`` walks rows
    in index order and channels in order within a row, so duplicates of any
    bin accumulate in exactly ``np.add.at``'s order — the ``float64``
    results are bit-identical.  The output always carries ``data``'s dtype.

    A precomputed ``segments`` schedule additionally enables the
    ``"reduceat"`` backend for ``float32`` data (pure single-precision
    ``np.add.reduceat``, no float64 round trip, pairwise-order tolerance)
    and the ``"prealloc"`` backend for either dtype (the index-ordered
    rounds kernel of :func:`scatter_rows_sum_into`, bit-identical at
    float64).  ``float64`` data under ``"bincount"``/``"reduceat"`` ignores
    ``segments`` so the default precision stays bit-identical to the seed
    kernels.
    """
    if not _USE_FAST or data.ndim != 2 or data.dtype not in _FLOAT_DTYPES:
        out_dtype = data.dtype if data.dtype in _FLOAT_DTYPES else np.float64
        out = np.zeros((dim_size,) + data.shape[1:], dtype=out_dtype)
        np.add.at(out, index, data)
        return out
    channels = data.shape[1]
    if channels == 0 or index.size == 0:
        return np.zeros((dim_size, channels), dtype=data.dtype)
    if _BACKEND == "prealloc" and segments is not None and segments.starts.size:
        out = np.empty((dim_size, channels), dtype=data.dtype)
        return scatter_rows_sum_into(out, data, index, segments=segments)
    if (
        _BACKEND == "reduceat"
        and segments is not None
        and data.dtype == np.float32
        and segments.starts.size
    ):
        out = np.zeros((dim_size, channels), dtype=np.float32)
        out[segments.buckets] = np.add.reduceat(
            data[segments.perm], segments.starts, axis=0
        )
        return out
    if flat is None:
        flat = flat_scatter_index(index, channels)
    summed = np.bincount(flat, weights=data.ravel(), minlength=dim_size * channels)
    return summed.reshape(dim_size, channels).astype(data.dtype, copy=False)


def count_index(
    index: np.ndarray, dim_size: int, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Occurrences of each bucket in ``index`` as ``dtype`` (in-degree counts).

    Counts are integers, so they are exact in either supported precision;
    callers building :class:`~repro.nn.data.EdgePlan` normalisations pass the
    plan dtype to keep the ``1 / degree`` columns promotion-free.
    """
    if not _USE_FAST:
        counts = np.zeros(dim_size, dtype=dtype)
        np.add.at(counts, index, 1.0)
        return counts
    return np.bincount(index, minlength=dim_size).astype(dtype)


# --------------------------------------------------------------------------
# Calibration
# --------------------------------------------------------------------------
def _calibration_workload(num_rows: int, num_buckets: int, channels: int):
    rng = np.random.default_rng(0)
    index = rng.integers(0, num_buckets, size=num_rows)
    data = rng.standard_normal((num_rows, channels)).astype(np.float32)
    flat = flat_scatter_index(index, channels)
    segments = build_segment_schedule(index)
    return index, data, flat, segments


def _time_backends(
    backends,
    num_rows: int = 80_000,
    num_buckets: int = 16_000,
    channels: int = 32,
    repeats: int = 3,
):
    """Best-of-``repeats`` seconds per backend on the synthetic workload.

    Times the *shipped* :func:`scatter_rows_sum` under each backend (not
    inline copies of its branches), so calibration cannot drift from the
    code it chooses between.  The workload is shaped like the
    message-passing hot loop: many rows, moderate channel count, ~5 rows
    per bucket, ``float32`` (the serving precision where the backends
    genuinely diverge — at ``float64`` all selectable paths are
    bit-identical anyway).
    """
    index, data, flat, segments = _calibration_workload(
        num_rows, num_buckets, channels
    )

    def run(name: str) -> np.ndarray:
        with scatter_backend(name):
            return scatter_rows_sum(
                data, index, num_buckets, flat=flat, segments=segments
            )

    best = {}
    for name in backends:
        run(name)  # warm allocator/schedule caches before timing
        best[name] = float("inf")
    for _ in range(repeats):
        for name in backends:
            start = time.perf_counter()
            run(name)
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def _calibrate_backend() -> str:
    """One-shot three-way microcalibration: which backend wins *here*?

    Best-of-repeats over the shipped kernel under each backend; the verdict
    is cached for the process (ROADMAP: "flip the default where it wins"
    without hardcoding any particular build's answer).
    """
    global _AUTO_BACKEND
    if _AUTO_BACKEND is None:
        best = _time_backends(SCATTER_BACKENDS)
        _AUTO_BACKEND = min(best, key=best.get)
    return _AUTO_BACKEND


def _calibrate_reduceat(
    num_rows: int = 80_000,
    num_buckets: int = 16_000,
    channels: int = 32,
    repeats: int = 3,
) -> bool:
    """Legacy two-way microcalibration: does reduceat beat bincount *here*?

    Kept for ``set_reduceat_scatter("auto")`` compatibility; the three-way
    :func:`_calibrate_backend` supersedes it.  Cached per process.
    """
    global _AUTO_REDUCEAT
    if _AUTO_REDUCEAT is None:
        best = _time_backends(
            ("bincount", "reduceat"), num_rows, num_buckets, channels, repeats
        )
        _AUTO_REDUCEAT = best["reduceat"] < best["bincount"]
    return _AUTO_REDUCEAT
