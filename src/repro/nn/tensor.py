"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class records a dynamic computation graph as operations
are applied and computes gradients with a single reverse topological sweep
(:meth:`Tensor.backward`).  Only the operations required by the PnP tuner's
RGCN + dense classifier are implemented, but each is implemented with full
broadcasting support so the layers above can be written naturally.

Gradient conventions
--------------------
* Gradients are accumulated (summed) into ``Tensor.grad`` as plain NumPy
  arrays; call :meth:`Tensor.zero_grad` (or ``Optimizer.zero_grad``) between
  steps.
* Broadcasting in the forward pass is undone in the backward pass by summing
  the incoming gradient over the broadcast axes (``_unbroadcast``).
* Operations on tensors with ``requires_grad=False`` propagate data only; no
  graph is recorded for them, so inference under :func:`no_grad` allocates no
  backward closures.
* ``Tensor.grad`` arrays may be **shared** between tensors (accumulation
  stores the incoming array without copying; equal-shape backward paths hand
  the same array to several parents).  Never mutate a gradient in place —
  e.g. ``param.grad *= scale`` for clipping — rebind instead
  (``param.grad = param.grad * scale``); nothing in this package mutates
  gradients in place, which is what makes the no-copy accumulation safe.

Precision policy
----------------
Raw data entering a tensor is converted to the active policy dtype of
:mod:`repro.nn.precision` (``float64`` by default) unless an explicit
``dtype=`` is given.  Operation *results* keep their operands' dtype — a
``float32`` graph stays ``float32`` through forward and backward (scalar
operands are lifted at the tensor's own dtype, masks are built in it, and
the seed gradient is cast to it), which the strict
:func:`repro.nn.precision.dtype_checks` mode asserts.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import precision
from repro.nn._scatter import fast_kernels_enabled, scatter_rows_sum

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype: Optional[np.dtype] = None) -> np.ndarray:
    arr = np.asarray(value, dtype=dtype if dtype is not None else precision._ACTIVE)
    return arr


class Tensor:
    """A NumPy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like initial value (converted to ``dtype``).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    dtype:
        Target dtype; defaults to the active policy dtype of
        :mod:`repro.nn.precision` (``float64`` unless switched).
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100  # ensure ndarray.__mul__ defers to Tensor.__rmul__

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
        dtype: Optional[np.dtype] = None,
    ):
        self.data: np.ndarray = _as_array(data, dtype)
        if precision._STRICT:
            precision._check_tensor(self.data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ utils
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the sole element as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # ------------------------------------------------------------- graph glue
    @staticmethod
    def _lift(
        value: Union["Tensor", ArrayLike], dtype: Optional[np.dtype] = None
    ) -> "Tensor":
        """Wrap ``value`` as a tensor; non-tensors convert at ``dtype``.

        Binary operations pass their own dtype so scalar/array operands join
        the graph without promoting it (``float32_tensor * 2.0`` stays
        ``float32``); lifted tensors are never recast.
        """
        return value if isinstance(value, Tensor) else Tensor(value, dtype=dtype)

    @staticmethod
    def _lift_all(values: Sequence[Union["Tensor", ArrayLike]]) -> List["Tensor"]:
        """Lift a sequence, anchoring raw elements to the first tensor's dtype."""
        anchor = next(
            (v.data.dtype for v in values if isinstance(v, Tensor)), None
        )
        return [Tensor._lift(v, dtype=anchor) for v in values]

    def _make(
        self,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the autograd graph."""
        parents = tuple(parents)
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        # Results keep the dtype the operation produced (operand-following);
        # only raw-data boundaries convert to the policy dtype.
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._prev = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        # No copy: gradient arrays are never mutated in place anywhere in the
        # framework (accumulation rebinds to a fresh sum), so sharing the
        # incoming array is safe and avoids one allocation per graph node.
        # (reference_kernels() restores the seed's defensive copy so the
        # engine benchmarks measure against the original behaviour.)
        if precision._STRICT:
            precision._check_grad(grad, self.data)
        if self.grad is None:
            self.grad = grad if fast_kernels_enabled() else np.array(grad, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1.0 and may only be omitted for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        # Copy the seed gradient so a caller-owned array can never alias the
        # accumulated gradients (internal backward closures always hand over
        # freshly computed arrays).
        grad = np.array(grad, dtype=self.data.dtype, copy=True)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        # Topological order over the dynamic graph.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._lift(other, self.data.dtype))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._lift(other, self.data.dtype) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._lift(other, self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    grad_a = np.outer(grad, b) if a.ndim == 2 else grad * b
                else:
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(np.asarray(grad_a), a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    grad_b = np.outer(a, grad) if b.ndim == 2 else grad * a
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(_unbroadcast(np.asarray(grad_b), b.shape))

        return self._make(out_data, (self, other), backward)

    # ----------------------------------------------------------- reductions
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                g = np.expand_dims(g, axis=axes)
            self._accumulate(np.broadcast_to(g, self.data.shape).astype(self.data.dtype))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            denom = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            denom = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded_max = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded_max).astype(self.data.dtype)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(mask * g)

        return self._make(out_data, (self,), backward)

    # ---------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        # For 0 < slope <= 1, max(x, slope*x) selects x for positives and
        # slope*x otherwise — bit-identical to the masked multiply but one
        # pass cheaper; the subgradient mask is only built when backward runs
        # (never under no_grad inference).
        if fast_kernels_enabled() and 0.0 < negative_slope <= 1.0:
            out_data = np.maximum(self.data, self.data * negative_slope)
            mask: Optional[np.ndarray] = None
        else:
            # Seed path: build the mask eagerly and reuse it in backward.
            mask = np.where(self.data > 0, 1.0, negative_slope).astype(
                self.data.dtype, copy=False
            )
            out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                subgradient = (
                    mask
                    if mask is not None
                    else np.where(self.data > 0, 1.0, negative_slope).astype(
                        self.data.dtype, copy=False
                    )
                )
                self._accumulate(grad * subgradient)

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    # --------------------------------------------------------------- shapes
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(np.array(out_data, copy=True), (self,), backward)

    @staticmethod
    def add_n(tensors: Sequence["Tensor"]) -> "Tensor":
        """Sum equally-shaped tensors left to right in one fused op.

        Bit-identical to the chained ``t0 + t1 + ... + tn`` (same left-
        associative elementwise addition order) but with a single output
        allocation and one autograd node instead of ``n``.
        """
        tensors = Tensor._lift_all(tensors)
        if not tensors:
            raise ValueError("add_n needs at least one tensor")
        shape = tensors[0].data.shape
        if any(t.data.shape != shape for t in tensors[1:]):
            raise ValueError("add_n requires equally-shaped tensors")
        out_data = tensors[0].data.copy()
        for tensor in tensors[1:]:
            out_data += tensor.data

        def backward(grad: np.ndarray) -> None:
            for tensor in tensors:
                if tensor.requires_grad:
                    tensor._accumulate(grad)

        return tensors[0]._make(out_data, tensors, backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = Tensor._lift_all(tensors)
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        # Use the first tensor's _make machinery (any would do).
        return tensors[0]._make(out_data, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = Tensor._lift_all(tensors)
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, slices):
                if tensor.requires_grad:
                    tensor._accumulate(piece)

        return tensors[0]._make(out_data, tensors, backward)

    # --------------------------------------------------------- graph kernels
    def gather_rows(
        self,
        index: np.ndarray,
        backward_flat: Optional[np.ndarray] = None,
        backward_segments=None,
    ) -> "Tensor":
        """Select rows ``self[index]`` (autograd-aware gather along axis 0).

        ``backward_flat`` optionally carries the precomputed
        :func:`repro.nn._scatter.flat_scatter_index` of ``index`` for the
        gathered row width, reused by the backward scatter (an
        :class:`~repro.nn.data.EdgePlan` provides it per relation).
        ``backward_segments`` likewise passes the index's precomputed
        :class:`~repro.nn._scatter.SegmentSchedule` so a float32 backward
        scatter can use the pure single-precision reduceat path.
        """
        index = np.asarray(index, dtype=np.int64)
        # Fancy indexing with an integer array already returns a fresh copy
        # (the seed's extra np.array copy is re-enabled under
        # reference_kernels() for faithful before/after benchmarks).
        out_data = self.data[index]
        if not fast_kernels_enabled():
            out_data = np.array(out_data, copy=True)
        num_rows = self.data.shape[0]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if grad.ndim == 2 and self.data.ndim == 2:
                    self._accumulate(
                        scatter_rows_sum(
                            grad,
                            index,
                            num_rows,
                            flat=backward_flat,
                            segments=backward_segments,
                        )
                    )
                else:
                    full = np.zeros_like(self.data)
                    np.add.at(full, index, grad)
                    self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def scatter_sum(
        self,
        index: np.ndarray,
        dim_size: int,
        flat_index: Optional[np.ndarray] = None,
        segments=None,
    ) -> "Tensor":
        """Sum rows of ``self`` into ``dim_size`` buckets given by ``index``.

        ``out[j] = sum_{i : index[i] == j} self[i]`` — the core aggregation
        primitive for graph convolutions and global pooling.  ``flat_index``
        optionally passes the precomputed flat (bucket, channel) bins of
        ``index`` (see :func:`repro.nn._scatter.flat_scatter_index`);
        ``segments`` the index's :class:`~repro.nn._scatter.SegmentSchedule`
        enabling the pure-float32 reduceat accumulation.
        """
        index = np.asarray(index, dtype=np.int64)
        if index.shape[0] != self.data.shape[0]:
            raise ValueError("index length must match the leading dimension")
        out_data = scatter_rows_sum(
            self.data, index, dim_size, flat=flat_index, segments=segments
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[index])

        return self._make(out_data, (self,), backward)
