"""Saving and loading model weights.

State dictionaries (flat name → array mappings produced by
:meth:`repro.nn.layers.Module.state_dict`) are stored as ``.npz`` archives.
The transfer-learning experiment (Section IV-B of the paper) saves the GNN
weights trained on the Haswell dataset and reloads only those weights before
re-training the dense layers on Skylake data.

Archives preserve the parameters' dtype exactly: a ``float32`` model round-
trips as ``float32`` (half the checkpoint size) and a ``float64`` model as
``float64``.  :func:`load_state_dict` can optionally cast on read for
cross-precision transfer, and :meth:`Module.load_state_dict` casts to each
parameter's dtype anyway, so precision is always explicit, never implied by
the file.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["save_state_dict", "load_state_dict", "filter_state_dict"]


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dictionary to ``path`` (``.npz`` appended if missing).

    Array dtypes are stored as-is (``np.savez`` is dtype-faithful).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path if path.endswith(".npz") else path + ".npz", **state)


def load_state_dict(path: str, dtype: Optional[np.dtype] = None) -> Dict[str, np.ndarray]:
    """Read a state dictionary previously written by :func:`save_state_dict`.

    With ``dtype=None`` (default) the stored dtypes are preserved; passing a
    dtype casts every array on read (e.g. load a ``float64`` checkpoint
    straight into a ``float32`` serving configuration).
    """
    resolved = path if path.endswith(".npz") else path + ".npz"
    if not os.path.exists(resolved):
        raise FileNotFoundError(resolved)
    if dtype is not None:
        from repro.nn import precision

        dtype = precision.resolve_dtype(dtype)
    with np.load(resolved) as archive:
        return {
            key: np.array(archive[key], dtype=dtype) if dtype is not None else np.array(archive[key])
            for key in archive.files
        }


def filter_state_dict(
    state: Dict[str, np.ndarray],
    include_prefixes: Optional[Iterable[str]] = None,
    exclude_prefixes: Optional[Iterable[str]] = None,
) -> Dict[str, np.ndarray]:
    """Select a subset of a state dictionary by parameter-name prefix.

    Used to extract only the GNN-layer weights ("gnn.") for transfer learning
    while discarding the dense-classifier head.
    """
    include = tuple(include_prefixes) if include_prefixes else None
    exclude = tuple(exclude_prefixes) if exclude_prefixes else ()
    out = {}
    for name, value in state.items():
        if include is not None and not name.startswith(include):
            continue
        if exclude and name.startswith(exclude):
            continue
        out[name] = value
    return out
