"""Process- and context-scoped floating-point precision policy.

The tensor engine historically hardwired ``float64`` everywhere — every
``np.asarray`` call, initializer, mask and moment buffer.  This module turns
that constant into a *policy*: a process-wide default dtype that can be
switched globally (:func:`set_default_dtype`) or for a dynamic scope
(:func:`autocast`).  ``float64`` remains the default, so gradient checks and
seed-equivalence tests are untouched; ``float32`` is a first-class fast path
that roughly halves memory traffic on the scatter/gather hot loops and
unlocks single-precision BLAS.

The policy governs **tensor creation boundaries**: converting raw data
(Python lists, scalars, ``float64`` ingest arrays) into
:class:`~repro.nn.tensor.Tensor` data, parameter initialisation, and
:class:`~repro.nn.data.EdgePlan` normalisation columns.  Once tensors exist,
every operation follows its operands' dtype — a ``float32`` forward/backward
step never silently promotes to ``float64`` (scalar arithmetic keeps the
array dtype under NumPy's NEP-50 rules, and every mask/normalisation array
the engine builds is cast to the operand dtype).

Debug assertion mode
--------------------
:func:`dtype_checks` enables a strict mode in which every tensor created
while the scope is active must match the active policy dtype, and every
gradient accumulated in backward must match its tensor's dtype; a violation
raises :class:`DtypePromotionError` naming the offending dtype.  Use it in
tests (and when touching kernels) to prove a ``float32`` step stays
``float32`` end to end::

    with autocast("float32"), dtype_checks():
        loss = model(batch)
        loss.backward()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "SUPPORTED_DTYPES",
    "DtypePromotionError",
    "resolve_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "autocast",
    "dtype_checks",
    "dtype_checks_enabled",
]

DtypeLike = Union[str, type, np.dtype, None]

#: The engine-wide default: float64 keeps gradient checks tight.
DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)

#: Precisions the engine supports end to end (kernels, optimisers, I/O).
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_ACTIVE: np.dtype = DEFAULT_DTYPE
_STRICT: bool = False


class DtypePromotionError(TypeError):
    """A tensor or gradient escaped the active precision policy."""


def resolve_dtype(dtype: DtypeLike = None) -> np.dtype:
    """Normalise ``dtype`` to a supported ``np.dtype``.

    ``None`` resolves to the active policy dtype; strings (``"float32"`` /
    ``"float64"``), NumPy scalar types and ``np.dtype`` instances are all
    accepted.  Unsupported precisions raise ``ValueError``.
    """
    if dtype is None:
        return _ACTIVE
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(f"unsupported dtype {resolved.name!r}; supported: {supported}")
    return resolved


def get_default_dtype() -> np.dtype:
    """Return the active policy dtype."""
    return _ACTIVE


def set_default_dtype(dtype: DtypeLike) -> np.dtype:
    """Set the process-wide policy dtype; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolve_dtype(dtype)
    return previous


@contextlib.contextmanager
def autocast(dtype: DtypeLike) -> Iterator[np.dtype]:
    """Run the enclosed block under ``dtype`` as the policy dtype."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolve_dtype(dtype)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def dtype_checks_enabled() -> bool:
    """Return whether the strict dtype assertion mode is active."""
    return _STRICT


@contextlib.contextmanager
def dtype_checks(enabled: bool = True) -> Iterator[None]:
    """Enable (or disable) the strict dtype assertion mode for a scope."""
    global _STRICT
    previous = _STRICT
    _STRICT = bool(enabled)
    try:
        yield
    finally:
        _STRICT = previous


def _check_tensor(data: np.ndarray) -> None:
    """Strict-mode hook: a freshly created tensor must match the policy."""
    if data.dtype != _ACTIVE:
        raise DtypePromotionError(
            f"tensor created with dtype {data.dtype.name} under an active "
            f"{_ACTIVE.name} policy (silent promotion?)"
        )


def _check_grad(grad: np.ndarray, data: np.ndarray) -> None:
    """Strict-mode hook: an accumulated gradient must match its tensor."""
    if grad.dtype != data.dtype:
        raise DtypePromotionError(
            f"gradient of dtype {grad.dtype.name} accumulated into a "
            f"{data.dtype.name} tensor (silent promotion in backward?)"
        )
