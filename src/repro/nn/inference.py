"""Autograd-free compiled inference runtime over raw ndarrays.

Training runs through :class:`~repro.nn.tensor.Tensor` — every op allocates
a result tensor, records a backward closure and participates in the dynamic
graph.  Serving never needs any of that: the tuner is trained once and then
queried constantly, so the per-op ``Tensor`` wrapper, the graph bookkeeping
and the per-op output allocations are pure overhead on the hot path.

This module lowers a model into an :class:`InferenceProgram`: a **flat,
ordered list of raw-ndarray kernel steps** (embedding lookup, per-relation
planned RGCN message passing through the existing
:mod:`repro.nn._scatter` kernels, mean pooling, dense head) that

* references the model's parameter arrays directly (no ``Tensor`` wrappers,
  no autograd graph, no ``no_grad`` bookkeeping),
* owns **one memory-planned arena per** ``(EdgePlan, dtype)``: a liveness
  pass over the flat step list records every buffer's first/last-use step,
  then disjoint-lifetime buffers share reusable slabs (the per-plan
  :class:`Arena` is held in a :class:`weakref.WeakKeyDictionary`, so
  buffers die with their plan),
* performs **zero NumPy array allocations** on the warm path under the
  ``"prealloc"`` scatter backend — every kernel runs in its out-parameter
  form (gathers, matmuls, normalisation, the rounds scatter of
  :func:`~repro.nn._scatter.scatter_rows_sum_into`, masked in-place
  activations, the dense head product, even the final ``argmax``) into
  arena views or per-row-count head workspaces, and
* is **bit-identical** to the ``Module`` forward at float64 *and* float32
  under every scatter backend: every step performs exactly the same
  floating-point operations in the same order as the tensor op it replaces
  (in-place/``out=`` variants are used only where NumPy guarantees the
  identical result).

Lowering is owned by the modules themselves — :meth:`Embedding.lower`,
:meth:`Linear.lower`, :meth:`RGCNConv.lower`,
:func:`repro.nn.pooling.lower_global_mean_pool` and
``PnPModel.compile_inference()`` compose the step classes defined here.

Programs snapshot parameter *references* at compile time; anything that
rebinds parameter data (training/optimizer steps, ``load_state_dict``,
``astype``) makes a program stale.  :meth:`InferenceProgram.stale` detects
this by comparing the captured arrays against the source model's current
parameters by identity, and :class:`repro.core.tuner.PnPTuner` recompiles
automatically.  Long-lived servers shed the accumulated arenas with
:meth:`InferenceProgram.clear_buffers` (surfaced as
``PnPTuner.clear_inference_buffers``) and observe them via
:meth:`InferenceProgram.buffer_stats`.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import _scatter
from repro.nn import functional as F
from repro.nn._scatter import ScatterWorkspace, scatter_rows_sum, scatter_rows_sum_into
from repro.nn.data import EdgePlan, GraphBatch

__all__ = [
    "KernelStep",
    "GatherRowsStep",
    "RGCNStep",
    "LeakyReLUStep",
    "MeanPoolStep",
    "DenseStep",
    "DenseHeadProgram",
    "InferenceProgram",
    "Arena",
]

#: Name of the slot every encoder lowering must end in.
POOLED_SLOT = "pooled"

#: Most per-row-count head workspaces a program keeps before resetting the
#: pool (sweep batch sizes are few and recurring; this only guards servers
#: fed adversarially varied row counts).
_MAX_HEAD_WORKSPACES = 64


class _EncoderInputs:
    """Per-call integer inputs of an encoder run (set before the thunks)."""

    __slots__ = ("token_ids", "node_types")

    def __init__(self) -> None:
        self.token_ids: Optional[np.ndarray] = None
        self.node_types: Optional[np.ndarray] = None


def _buffer(buffers, key: object, shape, dtype: np.dtype) -> np.ndarray:
    """Fetch-or-request a named buffer of exactly ``shape``/``dtype``.

    ``buffers`` is either the :class:`_BufferPlanner` (liveness pass — the
    request is recorded and a zero-backed dummy of the right shape comes
    back) or the built :class:`Arena` (binding pass — the planned slab view
    comes back).  Steps call this identically in both passes.
    """
    return buffers.ensure(key, tuple(shape), np.dtype(dtype))


class _BufferRequest:
    """One planned buffer: its shape and live [first, last] step interval."""

    __slots__ = ("key", "shape", "elements", "first", "last")

    def __init__(self, key: object, shape: Tuple[int, ...], step: int) -> None:
        self.key = key
        self.shape = shape
        self.elements = int(np.prod(shape)) if shape else 1
        self.first = step
        self.last = step


class _BufferPlanner:
    """Liveness pass over the flat step list (phase one of binding).

    Steps are bound once against this recorder: every ``ensure``/``get``
    extends the touched buffer's live interval to the current step, and the
    thunks produced (closing over read-only zero-stride dummies) are
    discarded.  :meth:`build_arena` then assigns buffers with disjoint
    intervals to shared slabs — first-fit onto the largest free slab, so a
    later small buffer slips into an earlier big one instead of growing a
    fresh slab.
    """

    def __init__(self, dtype: np.dtype) -> None:
        self.dtype = np.dtype(dtype)
        self._requests: Dict[object, _BufferRequest] = {}
        self._step = 0

    def begin_step(self) -> None:
        self._step += 1

    def _dummy(self, shape: Tuple[int, ...]) -> np.ndarray:
        return np.broadcast_to(np.zeros((), dtype=self.dtype), shape)

    def get(self, key: object) -> Optional[np.ndarray]:
        request = self._requests.get(key)
        if request is None:
            return None
        request.last = self._step
        return self._dummy(request.shape)

    def ensure(self, key: object, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        request = self._requests.get(key)
        if request is not None:
            if request.shape != shape or dtype != self.dtype:
                raise ValueError(
                    f"buffer {key!r} already bound with shape {request.shape} "
                    f"({self.dtype}), requested {shape} ({dtype})"
                )
            request.last = self._step
        else:
            if dtype != self.dtype:
                raise ValueError(
                    f"buffer {key!r} requested as {dtype}, arena is {self.dtype}"
                )
            self._requests[key] = _BufferRequest(key, shape, self._step)
        return self._dummy(shape)

    def pin(self, key: object) -> None:
        """Keep ``key`` live past the last step (it is the program output)."""
        self._requests[key].last = self._step + 1

    def build_arena(self) -> "Arena":
        slab_capacity: List[int] = []
        slab_last: List[int] = []
        placements: Dict[object, Tuple[int, Tuple[int, ...], int]] = {}
        ordered = sorted(
            self._requests.values(), key=lambda r: (r.first, -r.elements)
        )
        for request in ordered:
            chosen = -1
            for slab in range(len(slab_capacity)):
                if slab_last[slab] < request.first and (
                    chosen < 0 or slab_capacity[slab] > slab_capacity[chosen]
                ):
                    chosen = slab
            if chosen < 0:
                chosen = len(slab_capacity)
                slab_capacity.append(0)
                slab_last.append(request.first)
            slab_capacity[chosen] = max(slab_capacity[chosen], request.elements)
            slab_last[chosen] = max(slab_last[chosen], request.last)
            placements[request.key] = (chosen, request.shape, request.elements)
        return Arena(self.dtype, slab_capacity, placements)


class Arena:
    """Slab-backed buffer pool of one ``(EdgePlan, dtype)`` binding.

    One flat ``np.empty`` per planned slab; every buffer is a leading view
    (``slab[:elements].reshape(shape)``) of its assigned slab, so buffers
    whose live step intervals were disjoint share the same memory.
    """

    __slots__ = ("dtype", "_slabs", "_views")

    def __init__(
        self,
        dtype: np.dtype,
        slab_capacity: Sequence[int],
        placements: Dict[object, Tuple[int, Tuple[int, ...], int]],
    ) -> None:
        self.dtype = np.dtype(dtype)
        self._slabs = [np.empty(capacity, dtype=dtype) for capacity in slab_capacity]
        self._views = {
            key: self._slabs[slab][:elements].reshape(shape)
            for key, (slab, shape, elements) in placements.items()
        }

    def get(self, key: object) -> Optional[np.ndarray]:
        return self._views.get(key)

    def ensure(self, key: object, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        view = self._views.get(key)
        if view is None:
            raise ValueError(f"buffer {key!r} was not planned for this arena")
        if view.shape != shape or view.dtype != dtype:
            raise ValueError(
                f"buffer {key!r} already bound with shape {view.shape} "
                f"({view.dtype}), requested {shape} ({dtype})"
            )
        return view

    @property
    def num_slabs(self) -> int:
        return len(self._slabs)

    @property
    def num_buffers(self) -> int:
        return len(self._views)

    @property
    def nbytes(self) -> int:
        return sum(slab.nbytes for slab in self._slabs)


class KernelStep:
    """One raw-ndarray step of a lowered encoder.

    A step is *unbound* at lowering time (it knows its weights and slot
    names, not the batch); :meth:`bind` specialises it to one
    ``(EdgePlan, dtype)``.  Binding runs twice per plan: once against the
    :class:`_BufferPlanner` (recording buffer shapes and liveness) and once
    against the built :class:`Arena`, whose thunks — zero-argument
    callables closing over the bound views — feed the flat execution loop.
    """

    def bind(
        self,
        plan: EdgePlan,
        buffers,
        dtype: np.dtype,
        inputs: _EncoderInputs,
    ) -> List[Callable[[], None]]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class GatherRowsStep(KernelStep):
    """Embedding lookup: gather ``table[ids]`` into a slot.

    With ``accumulate=True`` the gathered rows are added to the slot in
    place (the encoder sums token and node-kind embeddings) — bit-identical
    to the tensor path's ``token_emb + kind_emb``.
    """

    def __init__(
        self, table: np.ndarray, ids_input: str, out_slot: str, accumulate: bool = False
    ) -> None:
        if ids_input not in ("token_ids", "node_types"):
            raise ValueError(f"unknown encoder input {ids_input!r}")
        self.table = table
        self.ids_input = ids_input
        self.out_slot = out_slot
        self.accumulate = accumulate

    def bind(self, plan, buffers, dtype, inputs):
        if self.table.dtype != dtype:
            raise ValueError(
                f"embedding table is {self.table.dtype}, program expects {dtype}"
            )
        channels = self.table.shape[1]
        out = _buffer(buffers, self.out_slot, (plan.num_nodes, channels), dtype)
        table, ids_input = self.table, self.ids_input

        if self.accumulate:
            scratch = _buffer(
                buffers, ("gather_scratch", channels), (plan.num_nodes, channels), dtype
            )

            # mode="clip" skips numpy's bounds pre-pass, which buffers the
            # whole gather through a fresh temporary under mode="raise";
            # ids are validated against the table at encode time.
            def run() -> None:
                np.take(table, getattr(inputs, ids_input), axis=0, out=scratch, mode="clip")
                np.add(out, scratch, out=out)

        else:

            def run() -> None:
                np.take(table, getattr(inputs, ids_input), axis=0, out=out, mode="clip")

        return [run]

    def describe(self) -> str:
        op = "+=" if self.accumulate else "="
        return f"{self.out_slot} {op} gather({self.ids_input})"


class RGCNStep(KernelStep):
    """One planned relational graph convolution over raw ndarrays.

    Mirrors ``RGCNConv._forward_planned`` exactly: root transform, then per
    relation gather → matmul → normalise → scatter, accumulated in relation
    order (the ``Tensor.add_n`` order), then the bias — with the matmuls and
    the normalisation running in place on preallocated buffers.  Under the
    ``"prealloc"`` backend the scatter also lands in an arena buffer
    (:func:`~repro.nn._scatter.scatter_rows_sum_into` with a planned
    workspace), making the whole step allocation-free; the accumulation
    ``out += scattered`` is the same dense add in every backend, so the
    float64 bits never depend on the backend choice.
    """

    def __init__(
        self,
        weight: np.ndarray,
        root: np.ndarray,
        bias: Optional[np.ndarray],
        num_relations: int,
        in_slot: str,
        out_slot: str,
    ) -> None:
        self.weight = weight
        self.root = root
        self.bias = bias
        self.num_relations = num_relations
        self.in_slot = in_slot
        self.out_slot = out_slot

    def bind(self, plan, buffers, dtype, inputs):
        if plan.num_relations != self.num_relations:
            raise ValueError(
                f"edge plan was built for {plan.num_relations} relations, "
                f"step has {self.num_relations}"
            )
        if plan.dtype != dtype:
            raise ValueError(
                f"edge plan carries {plan.dtype} normalisations, program "
                f"expects {dtype}"
            )
        x = buffers.get(self.in_slot)
        if x is None:
            raise ValueError(f"input slot {self.in_slot!r} has no producer")
        in_ch, out_ch = self.weight.shape[1], self.weight.shape[2]
        if x.shape != (plan.num_nodes, in_ch):
            raise ValueError(
                f"slot {self.in_slot!r} has shape {x.shape}, layer expects "
                f"{(plan.num_nodes, in_ch)}"
            )
        out = _buffer(buffers, self.out_slot, (plan.num_nodes, out_ch), dtype)
        num_nodes = plan.num_nodes
        root = self.root
        # Tiled to (num_nodes, out_ch) at bind time — the (out_ch,) broadcast
        # add buffers the whole sum through a temporary even with ``out=``;
        # the same-shape add is in place and bit-identical.
        bias = (
            np.ascontiguousarray(np.broadcast_to(self.bias, (num_nodes, out_ch)))
            if self.bias is not None
            else None
        )
        is_f32 = dtype == np.float32

        # Note the thunk captures the plan's *arrays and schedules*, never
        # the plan object itself: bound thunks live in a WeakKeyDictionary
        # keyed by the plan, and a strong reference from value to key would
        # pin the entry (and its arena) forever.
        active = [
            relation
            for relation in range(self.num_relations)
            if plan.relation_src[relation].size
        ]
        schedules = {r: plan.scatter_segments(r) for r in active}
        rows_ws = max(
            (schedules[r].rounds().num_rows + 1 for r in active), default=0
        )
        # Scatter accumulator + rounds workspace, shared across this step's
        # relations (they run sequentially) and, via the arena's liveness
        # assignment, across every RGCN step of the program.
        scattered = _buffer(buffers, ("rgcn_scattered", out_ch), (num_nodes, out_ch), dtype)
        ws_gather = _buffer(buffers, ("rgcn_ws_gather", out_ch), (rows_ws, out_ch), dtype)

        relations = []
        for relation in active:
            src = plan.relation_src[relation]
            segments = schedules[relation]
            rounds = segments.rounds()
            workspace = ScatterWorkspace(gathered=ws_gather[: rounds.num_rows + 1])
            # The plan's (E, 1) norm column is expanded to a contiguous
            # (E, out_ch) constant once at bind time: numpy's broadcasting
            # multiply buffers the whole product through a fresh temporary
            # even with ``out=``, while the same-shape multiply runs truly
            # in place.  Same factors, so the bits don't move.
            norm_full = np.ascontiguousarray(
                np.broadcast_to(plan.relation_norm[relation], (src.size, out_ch))
            )
            relations.append(
                (
                    src,
                    plan.relation_dst[relation],
                    norm_full,
                    self.weight[relation],
                    _buffer(buffers, ("gather", relation, in_ch), (src.size, in_ch), dtype),
                    _buffer(buffers, ("msg", relation, out_ch), (src.size, out_ch), dtype),
                    plan.scatter_flat(relation, out_ch),
                    segments,
                    workspace,
                )
            )

        def run() -> None:
            np.matmul(x, root, out=out)
            backend = _scatter.scatter_backend_name()
            prealloc = backend == "prealloc"
            use_segments = is_f32 and backend == "reduceat"
            for src, dst, norm, w, gathered, messages, flat, segments, ws in relations:
                # clip mode: no bounds pre-pass, no buffered temporary
                # (src indices come from the validated EdgePlan).
                np.take(x, src, axis=0, out=gathered, mode="clip")
                np.matmul(gathered, w, out=messages)
                np.multiply(messages, norm, out=messages)
                if prealloc:
                    scatter_rows_sum_into(
                        scattered, messages, dst, segments=segments, workspace=ws
                    )
                    np.add(out, scattered, out=out)
                else:
                    fresh = scatter_rows_sum(
                        messages,
                        dst,
                        num_nodes,
                        flat=flat,
                        segments=segments if use_segments else None,
                    )
                    np.add(out, fresh, out=out)
            if bias is not None:
                np.add(out, bias, out=out)

        return [run]

    def describe(self) -> str:
        return f"{self.out_slot} = rgcn({self.in_slot})"


class LeakyReLUStep(KernelStep):
    """In-place leaky ReLU on a slot (:func:`repro.nn.functional.leaky_relu_`)."""

    def __init__(self, slot: str, negative_slope: float) -> None:
        self.slot = slot
        self.negative_slope = negative_slope

    def bind(self, plan, buffers, dtype, inputs):
        x = buffers.get(self.slot)
        if x is None:
            raise ValueError(f"activation slot {self.slot!r} has no producer")
        scratch = _buffer(buffers, ("act_scratch", x.shape[1]), x.shape, dtype)
        slope = self.negative_slope

        def run() -> None:
            F.leaky_relu_(x, slope, scratch=scratch)

        return [run]

    def describe(self) -> str:
        return f"{self.slot} = leaky_relu({self.slot})"


class MeanPoolStep(KernelStep):
    """Per-graph mean pooling into the ``pooled`` slot.

    The reciprocal node counts are precomputed per plan at bind time
    (``(1 / max(counts, 1))`` in the feature dtype — exactly the column
    :func:`repro.nn.pooling.global_mean_pool` rebuilds per forward).  Under
    the ``"prealloc"`` backend the per-graph sums land in a planned arena
    buffer instead of a fresh allocation.
    """

    def __init__(self, in_slot: str, out_slot: str = POOLED_SLOT) -> None:
        self.in_slot = in_slot
        self.out_slot = out_slot

    def bind(self, plan, buffers, dtype, inputs):
        x = buffers.get(self.in_slot)
        if x is None:
            raise ValueError(f"input slot {self.in_slot!r} has no producer")
        channels = x.shape[1]
        num_graphs = plan.graph_node_counts.shape[0]
        pooled = _buffer(buffers, self.out_slot, (num_graphs, channels), dtype)
        counts = np.maximum(plan.graph_node_counts, 1.0)
        # Expanded to full width for the same reason as the RGCN norm: the
        # (G, 1) broadcast multiply allocates a temporary even with ``out=``.
        inverse = np.ascontiguousarray(
            np.broadcast_to(
                (1.0 / counts[:, None]).astype(dtype, copy=False),
                (num_graphs, channels),
            )
        )
        flat = plan.pool_flat(channels)
        batch_vector = plan.batch_vector
        is_f32 = dtype == np.float32
        segments = plan.pool_segments()
        rounds = segments.rounds()
        sums = _buffer(buffers, ("pool_sums", channels), (num_graphs, channels), dtype)
        ws_gather = _buffer(
            buffers, ("pool_ws_gather", channels), (rounds.num_rows + 1, channels), dtype
        )
        workspace = ScatterWorkspace(gathered=ws_gather)

        def run() -> None:
            backend = _scatter.scatter_backend_name()
            if backend == "prealloc":
                scatter_rows_sum_into(
                    sums, x, batch_vector, segments=segments, workspace=workspace
                )
                np.multiply(sums, inverse, out=pooled)
                return
            use_segments = is_f32 and backend == "reduceat"
            fresh = scatter_rows_sum(
                x,
                batch_vector,
                num_graphs,
                flat=flat,
                segments=segments if use_segments else None,
            )
            np.multiply(fresh, inverse, out=pooled)

        return [run]

    def describe(self) -> str:
        return f"{self.out_slot} = mean_pool({self.in_slot})"


class _BoundEncoder:
    """An encoder program specialised to one ``(EdgePlan, dtype)``.

    Construction is the two-pass bind: a liveness pass over the steps
    records every buffer request into a :class:`_BufferPlanner`, the
    planner packs disjoint-lifetime buffers into shared slabs
    (:class:`Arena`), and a second pass binds the real thunks against the
    arena views.  :meth:`run` is just "set the two integer inputs, execute
    the flat list".
    """

    __slots__ = ("_thunks", "_inputs", "_pooled", "_num_nodes", "arena")

    def __init__(
        self, steps: Sequence[KernelStep], plan: EdgePlan, dtype: np.dtype
    ) -> None:
        planner = _BufferPlanner(dtype)
        self._inputs = _EncoderInputs()
        for step in steps:
            planner.begin_step()
            step.bind(plan, planner, dtype, self._inputs)
        if planner.get(POOLED_SLOT) is None:
            raise ValueError("encoder lowering produced no 'pooled' slot")
        planner.pin(POOLED_SLOT)
        self.arena = planner.build_arena()
        self._thunks: List[Callable[[], None]] = []
        for step in steps:
            self._thunks.extend(step.bind(plan, self.arena, dtype, self._inputs))
        self._pooled = self.arena.get(POOLED_SLOT)
        self._num_nodes = plan.num_nodes

    def run(self, token_ids: np.ndarray, node_types: np.ndarray) -> np.ndarray:
        if token_ids.shape[0] != self._num_nodes:
            raise ValueError(
                f"batch has {token_ids.shape[0]} nodes, bound program expects "
                f"{self._num_nodes}"
            )
        inputs = self._inputs
        inputs.token_ids = token_ids
        inputs.node_types = node_types
        for thunk in self._thunks:
            thunk()
        return self._pooled


class DenseStep:
    """One affine layer of the lowered dense head (``y = x @ W (+ b)``).

    The head binds per *row count* rather than per plan (batch sizes vary
    per query: R regions × C caps), writing the product into a
    :class:`_HeadWorkspace` output with the bias added in place — same
    values as the tensor path.  :meth:`apply` keeps the allocating
    single-layer form for callers outside the workspace loop.
    """

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray]) -> None:
        self.weight = weight
        self.bias = bias

    def apply(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight
        if self.bias is not None:
            out += self.bias
        return out

    def apply_into(
        self, x: np.ndarray, out: np.ndarray, bias_full: Optional[np.ndarray] = None
    ) -> np.ndarray:
        np.matmul(x, self.weight, out=out)
        if bias_full is not None:
            # Same-shape add: the (C,) broadcast form buffers the whole sum
            # through a temporary even with ``out=`` (see _HeadWorkspace).
            np.add(out, bias_full, out=out)
        elif self.bias is not None:
            np.add(out, self.bias, out=out)
        return out


class _HeadWorkspace:
    """Preallocated head buffers for one batch row count.

    ``concat`` absorbs the pooled/aux concatenation (assignment casts the
    aux columns exactly like the ``np.asarray`` it replaces), ``outs`` the
    per-layer affine results, ``masks``/``scratches`` the boolean ReLU
    masks and their float copies, ``biases`` the per-layer bias rows tiled
    to full batch shape, and ``labels`` the final ``argmax`` — so a warm
    head invocation allocates nothing.  The tiled biases and float mask
    copies exist because numpy's broadcasting (and dtype-mixing) ufuncs
    buffer through fresh temporaries even with ``out=``; the same-shape
    same-dtype forms run truly in place with identical bits.

    With ``standardize=(mean, scale)`` the workspace additionally carries
    the input-standardization buffers (``std`` plus the mean/scale rows
    tiled to batch shape) used by the distilled micro-model programs,
    whose raw feature inputs are normalised before the first affine layer.
    """

    __slots__ = (
        "concat",
        "outs",
        "masks",
        "scratches",
        "biases",
        "labels",
        "std",
        "std_mean",
        "std_scale",
    )

    def __init__(
        self,
        steps: Sequence[DenseStep],
        aux_dim: int,
        rows: int,
        dtype: np.dtype,
        standardize: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        self.concat = (
            np.empty((rows, steps[0].weight.shape[0]), dtype=dtype)
            if aux_dim > 0
            else None
        )
        if standardize is not None:
            mean, scale = standardize
            in_features = steps[0].weight.shape[0]
            self.std = np.empty((rows, in_features), dtype=dtype)
            self.std_mean = np.ascontiguousarray(
                np.broadcast_to(np.asarray(mean, dtype=dtype), (rows, in_features))
            )
            self.std_scale = np.ascontiguousarray(
                np.broadcast_to(np.asarray(scale, dtype=dtype), (rows, in_features))
            )
        else:
            self.std = None
            self.std_mean = None
            self.std_scale = None
        self.outs = [
            np.empty((rows, step.weight.shape[1]), dtype=dtype) for step in steps
        ]
        self.masks = [
            np.empty((rows, step.weight.shape[1]), dtype=bool) for step in steps[:-1]
        ]
        self.scratches = [
            np.empty((rows, step.weight.shape[1]), dtype=dtype) for step in steps[:-1]
        ]
        self.biases = [
            np.ascontiguousarray(
                np.broadcast_to(step.bias, (rows, step.weight.shape[1]))
            )
            if step.bias is not None
            else None
            for step in steps
        ]
        self.labels = np.empty(rows, dtype=np.intp)

    @property
    def nbytes(self) -> int:
        total = sum(out.nbytes for out in self.outs)
        total += sum(mask.nbytes for mask in self.masks)
        total += sum(scratch.nbytes for scratch in self.scratches)
        total += sum(bias.nbytes for bias in self.biases if bias is not None)
        total += self.labels.nbytes
        if self.concat is not None:
            total += self.concat.nbytes
        if self.std is not None:
            total += self.std.nbytes + self.std_mean.nbytes + self.std_scale.nbytes
        return total


class DenseHeadProgram:
    """Lowered dense classifier: affine steps with in-place ReLU between.

    Mirrors ``_DenseHead.forward`` in eval mode (dropout is the identity)
    bit for bit, including the dtype casts at the pooled/aux boundary.
    Warm calls are allocation-free: all intermediates live in a memoised
    per-row-count :class:`_HeadWorkspace`, so :meth:`logits` (and the
    ``labels`` of :meth:`predict_labels`) return views into reused buffers
    — consume or copy them before the next call with the same row count.
    """

    def __init__(
        self,
        steps: Sequence[DenseStep],
        aux_dim: int,
        dtype: np.dtype,
        standardize: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        if standardize is not None and aux_dim > 0:
            raise ValueError("input standardization requires aux_dim == 0")
        self.steps = list(steps)
        self.aux_dim = aux_dim
        self.dtype = dtype
        self.standardize = standardize
        self._workspaces: Dict[int, _HeadWorkspace] = {}

    def _workspace(self, rows: int) -> _HeadWorkspace:
        workspace = self._workspaces.get(rows)
        if workspace is None:
            if len(self._workspaces) >= _MAX_HEAD_WORKSPACES:
                self._workspaces.clear()
            workspace = _HeadWorkspace(
                self.steps, self.aux_dim, rows, self.dtype, self.standardize
            )
            self._workspaces[rows] = workspace
        return workspace

    def logits(self, pooled: np.ndarray, aux: Optional[np.ndarray]) -> np.ndarray:
        x = np.asarray(pooled, dtype=self.dtype)
        workspace = self._workspace(x.shape[0])
        if self.standardize is not None:
            # (x - mean) * scale through same-shape same-dtype ufuncs: the
            # tiled mean/scale rows keep the warm path temporary-free.
            np.subtract(x, workspace.std_mean, out=workspace.std)
            np.multiply(workspace.std, workspace.std_scale, out=workspace.std)
            x = workspace.std
        if self.aux_dim > 0:
            if aux is None:
                raise ValueError(
                    f"head expects {self.aux_dim} auxiliary features but got none"
                )
            aux = np.asarray(aux)  # no-op for ndarrays; the copy below casts
            if aux.ndim != 2 or aux.shape[1] != self.aux_dim:
                raise ValueError(
                    f"auxiliary features must have shape (batch, {self.aux_dim}), "
                    f"got {aux.shape}"
                )
            concat = workspace.concat
            concat[:, : x.shape[1]] = x
            concat[:, x.shape[1] :] = aux
            x = concat
        last = len(self.steps) - 1
        for index, step in enumerate(self.steps):
            x = step.apply_into(x, workspace.outs[index], workspace.biases[index])
            if index != last:
                F.relu_(
                    x,
                    mask=workspace.masks[index],
                    scratch=workspace.scratches[index],
                )
        return x

    def predict_labels(self, pooled: np.ndarray, aux: Optional[np.ndarray]) -> np.ndarray:
        """Per-row argmax of :meth:`logits`, into the workspace label buffer."""
        logits = self.logits(pooled, aux)
        labels = self._workspaces[logits.shape[0]].labels
        np.argmax(logits, axis=1, out=labels)
        return labels

    # ------------------------------------------------------------- buffers
    @property
    def num_workspaces(self) -> int:
        return len(self._workspaces)

    @property
    def workspace_nbytes(self) -> int:
        return sum(ws.nbytes for ws in self._workspaces.values())

    def clear_buffers(self) -> None:
        self._workspaces.clear()


class InferenceProgram:
    """A model lowered to the autograd-free serving runtime.

    Construct via ``PnPModel.compile_inference()``.  The program shares the
    model's parameter arrays by reference and reproduces the ``Module``
    inference path bit for bit (both dtypes); arenas are planned lazily per
    ``(EdgePlan, dtype)`` and reused across calls, so interleaving batches
    of different sizes is safe — each plan owns its own arena.
    """

    def __init__(
        self,
        encoder_steps: Sequence[KernelStep],
        head: DenseHeadProgram,
        num_relations: int,
        dtype: np.dtype,
        source=None,
    ) -> None:
        self.encoder_steps = list(encoder_steps)
        self.head = head
        self.num_relations = num_relations
        self.dtype = np.dtype(dtype)
        self._bound: "weakref.WeakKeyDictionary[EdgePlan, _BoundEncoder]" = (
            weakref.WeakKeyDictionary()
        )
        self._source = weakref.ref(source) if source is not None else None
        # The parameter arrays this program serves, in named_parameters
        # order.  The program's steps hold them anyway; keeping the ordered
        # list lets stale() compare them against the model's *current*
        # arrays by identity.
        self._source_arrays = (
            [param.data for param in source.parameters()] if source is not None else None
        )

    # ------------------------------------------------------------- lifetime
    def stale(self) -> bool:
        """Whether the source model's weights were rebound since compile.

        Every weight-changing path — optimizer steps during training,
        ``load_state_dict`` (on the model *or* any sub-module), ``astype``,
        direct ``param.data`` assignment — rebinds parameter arrays, so the
        program compiled earlier would keep serving the old arrays.  This
        compares the captured arrays against the model's current parameters
        by identity; callers (e.g. the tuner's program cache) recompile
        when it returns True.
        """
        if self._source is None:
            return False
        model = self._source()
        if model is None:
            return True
        current = [param.data for param in model.parameters()]
        if len(current) != len(self._source_arrays):
            return True
        return any(
            captured is not array
            for captured, array in zip(self._source_arrays, current)
        )

    @property
    def num_bound_plans(self) -> int:
        """How many ``(EdgePlan, dtype)`` arena bindings are currently live."""
        return len(self._bound)

    def buffer_stats(self) -> Dict[str, int]:
        """Live buffer accounting: arena and head-workspace sizes in bytes.

        Arenas are keyed by weakly-referenced plans, so entries vanish when
        their plans are garbage collected; anything that memoises batches
        (sweep memos, embedding caches) keeps plans — and therefore arenas
        — alive.  ``PnPTuner.stats`` surfaces this and
        :meth:`clear_buffers` sheds it.
        """
        encoders = list(self._bound.values())
        return {
            "bound_plans": len(encoders),
            "arena_slabs": sum(encoder.arena.num_slabs for encoder in encoders),
            "arena_buffers": sum(encoder.arena.num_buffers for encoder in encoders),
            "arena_bytes": sum(encoder.arena.nbytes for encoder in encoders),
            "head_workspaces": self.head.num_workspaces,
            "head_bytes": self.head.workspace_nbytes,
        }

    def clear_buffers(self) -> None:
        """Drop every bound arena and head workspace (rebuilt on next use)."""
        self._bound.clear()
        self.head.clear_buffers()

    def describe(self) -> List[str]:
        """The flat, ordered kernel-step listing (for docs/tests)."""
        return [step.describe() for step in self.encoder_steps] + [
            f"logits = dense_head({POOLED_SLOT}, aux)"
        ]

    # ------------------------------------------------------------- encoding
    def _bound_encoder(self, plan: EdgePlan) -> _BoundEncoder:
        bound = self._bound.get(plan)
        if bound is None:
            bound = _BoundEncoder(self.encoder_steps, plan, self.dtype)
            self._bound[plan] = bound
        return bound

    def _encode_view(self, batch: GraphBatch) -> np.ndarray:
        """Pooled embedding as a view into the arena (reused across calls)."""
        plan = batch.edge_plan(self.num_relations, dtype=self.dtype)
        return self._bound_encoder(plan).run(batch.token_ids, batch.node_types)

    def encode_pooled(self, batch: GraphBatch) -> np.ndarray:
        """Pooled per-graph embedding, bit-identical to ``model.encode_pooled``.

        Returns a fresh copy (the internal pooled buffer is reused across
        calls), so callers may cache the result like the ``Module`` path's.
        """
        return self._encode_view(batch).copy()

    # -------------------------------------------------------------- serving
    def head_logits(self, pooled: np.ndarray, aux: Optional[np.ndarray]) -> np.ndarray:
        """Dense-head logits from a (possibly cached) pooled embedding.

        Returns a view into the head's per-row-count workspace — consume or
        copy before the next same-sized head call.
        """
        return self.head.logits(pooled, aux)

    def predict_from_pooled(
        self, pooled: np.ndarray, aux: Optional[np.ndarray]
    ) -> np.ndarray:
        """Predicted class per row — ``model.predict_from_pooled`` twin.

        The labels land in (and return a view of) the head workspace's
        ``argmax`` buffer, keeping the warm path allocation-free.
        """
        return self.head.predict_labels(pooled, aux)

    def forward_logits(self, batch: GraphBatch) -> np.ndarray:
        """Raw class logits for a batch (encode + head, one call).

        Allocation-free when warm (a view into reused head buffers).
        """
        return self.head.logits(self._encode_view(batch), batch.aux_features)

    def predict(self, batch: GraphBatch) -> np.ndarray:
        """Predicted class per graph — ``model.predict`` twin.

        Warm calls perform zero array allocations under the ``"prealloc"``
        scatter backend; the returned labels are a view into the head
        workspace, reused by the next same-sized call.
        """
        return self.head.predict_labels(self._encode_view(batch), batch.aux_features)
