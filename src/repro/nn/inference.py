"""Autograd-free compiled inference runtime over raw ndarrays.

Training runs through :class:`~repro.nn.tensor.Tensor` — every op allocates
a result tensor, records a backward closure and participates in the dynamic
graph.  Serving never needs any of that: the tuner is trained once and then
queried constantly, so the per-op ``Tensor`` wrapper, the graph bookkeeping
and the per-op output allocations are pure overhead on the hot path.

This module lowers a model into an :class:`InferenceProgram`: a **flat,
ordered list of raw-ndarray kernel steps** (embedding lookup, per-relation
planned RGCN message passing through the existing
:mod:`repro.nn._scatter` kernels, mean pooling, dense head) that

* references the model's parameter arrays directly (no ``Tensor`` wrappers,
  no autograd graph, no ``no_grad`` bookkeeping),
* preallocates every activation/scratch buffer **once per**
  ``(EdgePlan, dtype)`` and reuses it across calls (the
  per-plan binding is held in a :class:`weakref.WeakKeyDictionary`, so
  buffers die with their plan), and
* is **bit-identical** to the ``Module`` forward at float64 *and* float32:
  every step performs exactly the same floating-point operations in the
  same order as the tensor op it replaces (in-place/``out=`` variants are
  used only where NumPy guarantees the identical result).

Lowering is owned by the modules themselves — :meth:`Embedding.lower`,
:meth:`Linear.lower`, :meth:`RGCNConv.lower`,
:func:`repro.nn.pooling.lower_global_mean_pool` and
``PnPModel.compile_inference()`` compose the step classes defined here.

Programs snapshot parameter *references* at compile time; anything that
rebinds parameter data (training/optimizer steps, ``load_state_dict``,
``astype``) makes a program stale.  :meth:`InferenceProgram.stale` detects
this by comparing the captured arrays against the source model's current
parameters by identity, and :class:`repro.core.tuner.PnPTuner` recompiles
automatically.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.nn import _scatter
from repro.nn import functional as F
from repro.nn._scatter import scatter_rows_sum
from repro.nn.data import EdgePlan, GraphBatch

__all__ = [
    "KernelStep",
    "GatherRowsStep",
    "RGCNStep",
    "LeakyReLUStep",
    "MeanPoolStep",
    "DenseStep",
    "DenseHeadProgram",
    "InferenceProgram",
]

#: Name of the slot every encoder lowering must end in.
POOLED_SLOT = "pooled"


class _EncoderInputs:
    """Per-call integer inputs of an encoder run (set before the thunks)."""

    __slots__ = ("token_ids", "node_types")

    def __init__(self) -> None:
        self.token_ids: Optional[np.ndarray] = None
        self.node_types: Optional[np.ndarray] = None


def _buffer(
    buffers: Dict[object, np.ndarray], key: object, shape, dtype: np.dtype
) -> np.ndarray:
    """Fetch-or-allocate a named buffer of exactly ``shape``/``dtype``."""
    existing = buffers.get(key)
    if existing is not None:
        if existing.shape != tuple(shape) or existing.dtype != dtype:
            raise ValueError(
                f"buffer {key!r} already bound with shape {existing.shape} "
                f"({existing.dtype}), requested {tuple(shape)} ({dtype})"
            )
        return existing
    array = np.empty(shape, dtype=dtype)
    buffers[key] = array
    return array


class KernelStep:
    """One raw-ndarray step of a lowered encoder.

    A step is *unbound* at lowering time (it knows its weights and slot
    names, not the batch); :meth:`bind` specialises it to one
    ``(EdgePlan, dtype)``: buffers are fetched/allocated from the shared
    per-plan pool and a list of zero-argument thunks (closing over the
    bound arrays) is returned for the flat execution loop.
    """

    def bind(
        self,
        plan: EdgePlan,
        buffers: Dict[object, np.ndarray],
        dtype: np.dtype,
        inputs: _EncoderInputs,
    ) -> List[Callable[[], None]]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class GatherRowsStep(KernelStep):
    """Embedding lookup: gather ``table[ids]`` into a slot.

    With ``accumulate=True`` the gathered rows are added to the slot in
    place (the encoder sums token and node-kind embeddings) — bit-identical
    to the tensor path's ``token_emb + kind_emb``.
    """

    def __init__(
        self, table: np.ndarray, ids_input: str, out_slot: str, accumulate: bool = False
    ) -> None:
        if ids_input not in ("token_ids", "node_types"):
            raise ValueError(f"unknown encoder input {ids_input!r}")
        self.table = table
        self.ids_input = ids_input
        self.out_slot = out_slot
        self.accumulate = accumulate

    def bind(self, plan, buffers, dtype, inputs):
        if self.table.dtype != dtype:
            raise ValueError(
                f"embedding table is {self.table.dtype}, program expects {dtype}"
            )
        channels = self.table.shape[1]
        out = _buffer(buffers, self.out_slot, (plan.num_nodes, channels), dtype)
        table, ids_input = self.table, self.ids_input

        if self.accumulate:
            scratch = _buffer(
                buffers, ("gather_scratch", channels), (plan.num_nodes, channels), dtype
            )

            def run() -> None:
                np.take(table, getattr(inputs, ids_input), axis=0, out=scratch)
                np.add(out, scratch, out=out)

        else:

            def run() -> None:
                np.take(table, getattr(inputs, ids_input), axis=0, out=out)

        return [run]

    def describe(self) -> str:
        op = "+=" if self.accumulate else "="
        return f"{self.out_slot} {op} gather({self.ids_input})"


class RGCNStep(KernelStep):
    """One planned relational graph convolution over raw ndarrays.

    Mirrors ``RGCNConv._forward_planned`` exactly: root transform, then per
    relation gather → matmul → normalise → scatter, accumulated in relation
    order (the ``Tensor.add_n`` order), then the bias — with the matmuls and
    the normalisation running in place on preallocated buffers.
    """

    def __init__(
        self,
        weight: np.ndarray,
        root: np.ndarray,
        bias: Optional[np.ndarray],
        num_relations: int,
        in_slot: str,
        out_slot: str,
    ) -> None:
        self.weight = weight
        self.root = root
        self.bias = bias
        self.num_relations = num_relations
        self.in_slot = in_slot
        self.out_slot = out_slot

    def bind(self, plan, buffers, dtype, inputs):
        if plan.num_relations != self.num_relations:
            raise ValueError(
                f"edge plan was built for {plan.num_relations} relations, "
                f"step has {self.num_relations}"
            )
        if plan.dtype != dtype:
            raise ValueError(
                f"edge plan carries {plan.dtype} normalisations, program "
                f"expects {dtype}"
            )
        x = buffers.get(self.in_slot)
        if x is None:
            raise ValueError(f"input slot {self.in_slot!r} has no producer")
        in_ch, out_ch = self.weight.shape[1], self.weight.shape[2]
        if x.shape != (plan.num_nodes, in_ch):
            raise ValueError(
                f"slot {self.in_slot!r} has shape {x.shape}, layer expects "
                f"{(plan.num_nodes, in_ch)}"
            )
        out = _buffer(buffers, self.out_slot, (plan.num_nodes, out_ch), dtype)
        num_nodes = plan.num_nodes
        root, bias = self.root, self.bias
        is_f32 = dtype == np.float32
        # The thunk must not capture the plan itself: bound thunks live in a
        # WeakKeyDictionary keyed by the plan, and a strong reference from
        # value to key would pin the entry (and its buffers) forever.  The
        # sorted-segment schedules for the float32 reduceat path are
        # fetched through a weakref — the plan is always alive during a run
        # (the batch being encoded holds it).
        plan_ref = weakref.ref(plan)

        relations = []
        for relation in range(self.num_relations):
            src = plan.relation_src[relation]
            if src.size == 0:
                continue
            relations.append(
                (
                    src,
                    plan.relation_dst[relation],
                    plan.relation_norm[relation],
                    self.weight[relation],
                    _buffer(buffers, ("gather", relation, in_ch), (src.size, in_ch), dtype),
                    _buffer(buffers, ("msg", relation, out_ch), (src.size, out_ch), dtype),
                    plan.scatter_flat(relation, out_ch),
                    relation,
                )
            )

        def run() -> None:
            np.matmul(x, root, out=out)
            use_segments = is_f32 and _scatter.reduceat_scatter_enabled()
            for src, dst, norm, w, gathered, messages, flat, relation in relations:
                np.take(x, src, axis=0, out=gathered)
                np.matmul(gathered, w, out=messages)
                np.multiply(messages, norm, out=messages)
                scattered = scatter_rows_sum(
                    messages,
                    dst,
                    num_nodes,
                    flat=flat,
                    segments=plan_ref().scatter_segments(relation) if use_segments else None,
                )
                np.add(out, scattered, out=out)
            if bias is not None:
                np.add(out, bias, out=out)

        return [run]

    def describe(self) -> str:
        return f"{self.out_slot} = rgcn({self.in_slot})"


class LeakyReLUStep(KernelStep):
    """In-place leaky ReLU on a slot (:func:`repro.nn.functional.leaky_relu_`)."""

    def __init__(self, slot: str, negative_slope: float) -> None:
        self.slot = slot
        self.negative_slope = negative_slope

    def bind(self, plan, buffers, dtype, inputs):
        x = buffers.get(self.slot)
        if x is None:
            raise ValueError(f"activation slot {self.slot!r} has no producer")
        scratch = _buffer(buffers, ("act_scratch", x.shape[1]), x.shape, dtype)
        slope = self.negative_slope

        def run() -> None:
            F.leaky_relu_(x, slope, scratch=scratch)

        return [run]

    def describe(self) -> str:
        return f"{self.slot} = leaky_relu({self.slot})"


class MeanPoolStep(KernelStep):
    """Per-graph mean pooling into the ``pooled`` slot.

    The reciprocal node counts are precomputed per plan at bind time
    (``(1 / max(counts, 1))`` in the feature dtype — exactly the column
    :func:`repro.nn.pooling.global_mean_pool` rebuilds per forward).
    """

    def __init__(self, in_slot: str, out_slot: str = POOLED_SLOT) -> None:
        self.in_slot = in_slot
        self.out_slot = out_slot

    def bind(self, plan, buffers, dtype, inputs):
        x = buffers.get(self.in_slot)
        if x is None:
            raise ValueError(f"input slot {self.in_slot!r} has no producer")
        channels = x.shape[1]
        num_graphs = plan.graph_node_counts.shape[0]
        pooled = _buffer(buffers, self.out_slot, (num_graphs, channels), dtype)
        counts = np.maximum(plan.graph_node_counts, 1.0)
        inverse = (1.0 / counts[:, None]).astype(dtype, copy=False)
        flat = plan.pool_flat(channels)
        batch_vector = plan.batch_vector
        is_f32 = dtype == np.float32
        # Weakref for the same reason as RGCNStep: a thunk capturing the
        # plan would pin the WeakKeyDictionary entry holding it.
        plan_ref = weakref.ref(plan)

        def run() -> None:
            use_segments = is_f32 and _scatter.reduceat_scatter_enabled()
            sums = scatter_rows_sum(
                x,
                batch_vector,
                num_graphs,
                flat=flat,
                segments=plan_ref().pool_segments() if use_segments else None,
            )
            np.multiply(sums, inverse, out=pooled)

        return [run]

    def describe(self) -> str:
        return f"{self.out_slot} = mean_pool({self.in_slot})"


class _BoundEncoder:
    """An encoder program specialised to one ``(EdgePlan, dtype)``.

    Holds the preallocated buffer pool and the flat list of bound thunks;
    :meth:`run` is just "set the two integer inputs, execute the list".
    """

    __slots__ = ("_thunks", "_inputs", "_pooled", "_num_nodes")

    def __init__(
        self, steps: Sequence[KernelStep], plan: EdgePlan, dtype: np.dtype
    ) -> None:
        buffers: Dict[object, np.ndarray] = {}
        self._inputs = _EncoderInputs()
        self._thunks: List[Callable[[], None]] = []
        for step in steps:
            self._thunks.extend(step.bind(plan, buffers, dtype, self._inputs))
        pooled = buffers.get(POOLED_SLOT)
        if pooled is None:
            raise ValueError("encoder lowering produced no 'pooled' slot")
        self._pooled = pooled
        self._num_nodes = plan.num_nodes

    def run(self, token_ids: np.ndarray, node_types: np.ndarray) -> np.ndarray:
        if token_ids.shape[0] != self._num_nodes:
            raise ValueError(
                f"batch has {token_ids.shape[0]} nodes, bound program expects "
                f"{self._num_nodes}"
            )
        inputs = self._inputs
        inputs.token_ids = token_ids
        inputs.node_types = node_types
        for thunk in self._thunks:
            thunk()
        return self._pooled


class DenseStep:
    """One affine layer of the lowered dense head (``y = x @ W (+ b)``).

    Head batch sizes vary per query (R regions × C caps), so the head runs
    on per-call outputs rather than plan-bound buffers; the bias add is in
    place on the fresh matmul result — same values as the tensor path.
    """

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray]) -> None:
        self.weight = weight
        self.bias = bias

    def apply(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight
        if self.bias is not None:
            out += self.bias
        return out


class DenseHeadProgram:
    """Lowered dense classifier: affine steps with in-place ReLU between.

    Mirrors ``_DenseHead.forward`` in eval mode (dropout is the identity)
    bit for bit, including the dtype casts at the pooled/aux boundary.
    """

    def __init__(self, steps: Sequence[DenseStep], aux_dim: int, dtype: np.dtype) -> None:
        self.steps = list(steps)
        self.aux_dim = aux_dim
        self.dtype = dtype

    def logits(self, pooled: np.ndarray, aux: Optional[np.ndarray]) -> np.ndarray:
        x = np.asarray(pooled, dtype=self.dtype)
        if self.aux_dim > 0:
            if aux is None:
                raise ValueError(
                    f"head expects {self.aux_dim} auxiliary features but got none"
                )
            aux = np.asarray(aux, dtype=self.dtype)
            if aux.ndim != 2 or aux.shape[1] != self.aux_dim:
                raise ValueError(
                    f"auxiliary features must have shape (batch, {self.aux_dim}), "
                    f"got {aux.shape}"
                )
            x = np.concatenate([x, aux], axis=1)
        last = len(self.steps) - 1
        for index, step in enumerate(self.steps):
            x = step.apply(x)
            if index != last:
                F.relu_(x)
        return x


class InferenceProgram:
    """A model lowered to the autograd-free serving runtime.

    Construct via ``PnPModel.compile_inference()``.  The program shares the
    model's parameter arrays by reference and reproduces the ``Module``
    inference path bit for bit (both dtypes); buffers are bound lazily per
    ``(EdgePlan, dtype)`` and reused across calls, so interleaving batches
    of different sizes is safe — each plan owns its own buffer pool.
    """

    def __init__(
        self,
        encoder_steps: Sequence[KernelStep],
        head: DenseHeadProgram,
        num_relations: int,
        dtype: np.dtype,
        source=None,
    ) -> None:
        self.encoder_steps = list(encoder_steps)
        self.head = head
        self.num_relations = num_relations
        self.dtype = np.dtype(dtype)
        self._bound: "weakref.WeakKeyDictionary[EdgePlan, _BoundEncoder]" = (
            weakref.WeakKeyDictionary()
        )
        self._source = weakref.ref(source) if source is not None else None
        # The parameter arrays this program serves, in named_parameters
        # order.  The program's steps hold them anyway; keeping the ordered
        # list lets stale() compare them against the model's *current*
        # arrays by identity.
        self._source_arrays = (
            [param.data for param in source.parameters()] if source is not None else None
        )

    # ------------------------------------------------------------- lifetime
    def stale(self) -> bool:
        """Whether the source model's weights were rebound since compile.

        Every weight-changing path — optimizer steps during training,
        ``load_state_dict`` (on the model *or* any sub-module), ``astype``,
        direct ``param.data`` assignment — rebinds parameter arrays, so the
        program compiled earlier would keep serving the old arrays.  This
        compares the captured arrays against the model's current parameters
        by identity; callers (e.g. the tuner's program cache) recompile
        when it returns True.
        """
        if self._source is None:
            return False
        model = self._source()
        if model is None:
            return True
        current = [param.data for param in model.parameters()]
        if len(current) != len(self._source_arrays):
            return True
        return any(
            captured is not array
            for captured, array in zip(self._source_arrays, current)
        )

    @property
    def num_bound_plans(self) -> int:
        """How many ``(EdgePlan, dtype)`` buffer bindings are currently live."""
        return len(self._bound)

    def describe(self) -> List[str]:
        """The flat, ordered kernel-step listing (for docs/tests)."""
        return [step.describe() for step in self.encoder_steps] + [
            f"logits = dense_head({POOLED_SLOT}, aux)"
        ]

    # ------------------------------------------------------------- encoding
    def _bound_encoder(self, plan: EdgePlan) -> _BoundEncoder:
        bound = self._bound.get(plan)
        if bound is None:
            bound = _BoundEncoder(self.encoder_steps, plan, self.dtype)
            self._bound[plan] = bound
        return bound

    def encode_pooled(self, batch: GraphBatch) -> np.ndarray:
        """Pooled per-graph embedding, bit-identical to ``model.encode_pooled``.

        Returns a fresh copy (the internal pooled buffer is reused across
        calls), so callers may cache the result like the ``Module`` path's.
        """
        plan = batch.edge_plan(self.num_relations, dtype=self.dtype)
        return self._bound_encoder(plan).run(batch.token_ids, batch.node_types).copy()

    # -------------------------------------------------------------- serving
    def head_logits(self, pooled: np.ndarray, aux: Optional[np.ndarray]) -> np.ndarray:
        """Dense-head logits from a (possibly cached) pooled embedding."""
        return self.head.logits(pooled, aux)

    def predict_from_pooled(
        self, pooled: np.ndarray, aux: Optional[np.ndarray]
    ) -> np.ndarray:
        """Predicted class per row — ``model.predict_from_pooled`` twin."""
        return np.argmax(self.head.logits(pooled, aux), axis=1)

    def forward_logits(self, batch: GraphBatch) -> np.ndarray:
        """Raw class logits for a batch (encode + head, one call)."""
        return self.head.logits(self.encode_pooled(batch), batch.aux_features)

    def predict(self, batch: GraphBatch) -> np.ndarray:
        """Predicted class per graph — ``model.predict`` twin."""
        return np.argmax(self.forward_logits(batch), axis=1)
