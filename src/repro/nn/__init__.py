"""A small NumPy-based deep-learning framework.

This package stands in for PyTorch / PyTorch-Geometric in the reproduction:
it provides reverse-mode automatic differentiation over NumPy arrays
(:mod:`repro.nn.tensor`), the layers needed by the PnP tuner's architecture
(:class:`~repro.nn.layers.Linear`, :class:`~repro.nn.layers.Embedding`,
:class:`~repro.nn.rgcn.RGCNConv`), graph batching
(:mod:`repro.nn.data`), losses, and the Adam/AdamW optimisers listed in
Table II of the paper.

The engine is deliberately small but complete for this model family; it is
not a general tensor library.  Arrays default to ``float64`` (tight gradient
checks), but the precision is a switchable policy: :mod:`repro.nn.precision`
exposes :func:`set_default_dtype` and the :func:`autocast` context manager,
and ``float32`` is a first-class fast path through tensors, initializers,
edge plans, scatter kernels, optimizers and serialization (roughly double
the effective memory bandwidth on the message-passing hot loops plus
single-precision BLAS).  A strict :func:`dtype_checks` mode asserts that a
``float32`` forward/backward step never silently promotes to ``float64``.

Message passing executes from precompiled per-batch
:class:`~repro.nn.data.EdgePlan` schedules (relation-grouped edge indices
and in-degree normalisations built once per batch via
:meth:`GraphBatch.edge_plan` and shared by every RGCN layer and the pooling
read-out), and :class:`~repro.nn.data.GraphDataLoader` collates the dataset
once and materialises minibatches by re-indexing flat arrays.  Both paths
are bit-identical to the naive per-layer/per-epoch implementations they
replace, which are retained as references (``RGCNConv.forward`` without a
plan; ``GraphDataLoader(cache_collate=False)``).

Serving additionally has an autograd-free compiled runtime:
:mod:`repro.nn.inference` lowers a model into an :class:`InferenceProgram`
— a flat list of raw-ndarray kernel steps with buffers preallocated per
``(EdgePlan, dtype)``, no ``Tensor`` wrappers and no graph recording —
bit-identical to the ``Module`` forward at either precision.

The scatter kernels behind message passing have **one** canonical knob
surface, exported here: :func:`set_scatter_backend` (process-wide,
``SCATTER_BACKENDS`` or ``"auto"``), the :func:`scatter_backend` scope and
:func:`scatter_backend_name`.  The legacy two-way
:func:`set_reduceat_scatter` / :func:`reduceat_scatter` toggle from PR 3 is
a deprecated alias (it emits :class:`DeprecationWarning` and maps ``True``
→ ``"reduceat"``, ``False`` → ``"bincount"``).
"""

from repro.nn import precision
from repro.nn.precision import (
    autocast,
    dtype_checks,
    get_default_dtype,
    set_default_dtype,
    DtypePromotionError,
)
from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.layers import (
    Module,
    Linear,
    Embedding,
    Dropout,
    ReLU,
    LeakyReLU,
    Sequential,
    ModuleList,
)
from repro.nn.rgcn import RGCNConv
from repro.nn.pooling import global_mean_pool, global_sum_pool, global_max_pool
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.data import (
    EdgePlan,
    GraphSample,
    GraphBatch,
    GraphDataLoader,
    build_edge_plan,
    collate_graphs,
)
from repro.nn.serialization import save_state_dict, load_state_dict
from repro.nn.inference import InferenceProgram
from repro.nn._scatter import (
    SCATTER_BACKENDS,
    scatter_backend,
    scatter_backend_name,
    set_scatter_backend,
    reduceat_scatter,  # deprecated alias (DeprecationWarning on use)
    set_reduceat_scatter,  # deprecated alias (DeprecationWarning on use)
)

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "precision",
    "autocast",
    "dtype_checks",
    "get_default_dtype",
    "set_default_dtype",
    "DtypePromotionError",
    "Module",
    "Linear",
    "Embedding",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sequential",
    "ModuleList",
    "RGCNConv",
    "global_mean_pool",
    "global_sum_pool",
    "global_max_pool",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "AdamW",
    "Optimizer",
    "GraphSample",
    "GraphBatch",
    "GraphDataLoader",
    "EdgePlan",
    "build_edge_plan",
    "collate_graphs",
    "save_state_dict",
    "load_state_dict",
    "InferenceProgram",
    "SCATTER_BACKENDS",
    "scatter_backend",
    "scatter_backend_name",
    "set_scatter_backend",
    "reduceat_scatter",
    "set_reduceat_scatter",
]
