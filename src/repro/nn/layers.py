"""Neural-network modules (layers) and the :class:`Module` base class.

The module system mirrors the small slice of ``torch.nn`` needed here:
parameter registration, recursive ``state_dict`` / ``load_state_dict``,
train/eval mode switching, and a handful of concrete layers (``Linear``,
``Embedding``, ``Dropout``, activation wrappers, ``Sequential``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sequential",
    "ModuleList",
]


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`~repro.nn.tensor.Tensor` attributes (parameters)
    and :class:`Module` attributes (sub-modules) in ``__init__``; both are
    discovered automatically for parameter iteration and serialization.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------ registration
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        """Explicitly register a parameter under ``name`` and return it."""
        tensor.requires_grad = True
        self._parameters[name] = tensor
        object.__setattr__(self, name, tensor)
        return tensor

    # ------------------------------------------------------------- iteration
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Tensor]:
        """Return all parameters as a flat list."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, including ``self``."""
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        """Yield immediate sub-modules."""
        yield from self._modules.values()

    # ------------------------------------------------------------------ mode
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. dropout)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # --------------------------------------------------------------- weights
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name→array copy of all parameters (dtype preserved)."""
        return {name: np.array(param.data, copy=True) for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from a flat name→array mapping.

        With ``strict=True`` (default) the key sets must match exactly; with
        ``strict=False`` missing or extra keys are ignored, which is what the
        transfer-learning step uses to load only the GNN-layer weights.

        Loaded values are cast to each parameter's existing dtype, so a
        ``float32`` model can consume a ``float64`` checkpoint (and vice
        versa) without changing the module's precision.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(f"state_dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                )
            param.data = np.array(value, copy=True)

    def astype(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` in place and return ``self``.

        Accumulated gradients are dropped (they were computed at the old
        precision); optimizer moment buffers keyed on the parameters pick up
        the new dtype from the next backward pass's gradients.
        """
        from repro.nn import precision

        resolved = precision.resolve_dtype(dtype)
        for param in self.parameters():
            param.data = param.data.astype(resolved, copy=False)
            param.grad = None
        return self

    @property
    def dtype(self) -> np.dtype:
        """The parameters' dtype (modules are never mixed-precision)."""
        # named_parameters is a generator, so this inspects only the first
        # parameter instead of materialising the whole recursive list (the
        # property sits on serving hot paths).
        for _, param in self.named_parameters():
            return param.data.dtype
        from repro.nn import precision

        return precision.get_default_dtype()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    # ------------------------------------------------------------------ call
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine transform ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learnable bias.
    rng:
        Generator used for weight initialisation (Kaiming uniform).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.kaiming_uniform((in_features, out_features), rng), requires_grad=True
        )
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias: Optional[Tensor] = Tensor(
                init.uniform((out_features,), rng, bound), requires_grad=True
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def lower(self):
        """Lower to a raw-ndarray :class:`~repro.nn.inference.DenseStep`.

        The step shares this layer's parameter arrays by reference and
        reproduces the forward bit for bit (matmul, then in-place bias add
        on the fresh result).
        """
        from repro.nn.inference import DenseStep

        return DenseStep(
            self.weight.data, self.bias.data if self.bias is not None else None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used for the IR-token vocabulary embedding fed to the RGCN as node
    features.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Tensor(
            rng.normal(0.0, 1.0 / np.sqrt(embedding_dim), size=(num_embeddings, embedding_dim)),
            requires_grad=True,
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight.gather_rows(ids)

    def lower(self, ids_input: str, out_slot: str, accumulate: bool = False):
        """Lower to a raw-ndarray gather step for the inference runtime.

        ``ids_input`` names the encoder input to gather by (``"token_ids"``
        or ``"node_types"``); with ``accumulate=True`` the gathered rows add
        into ``out_slot`` in place (the token + node-kind embedding sum).
        """
        from repro.nn.inference import GatherRowsStep

        return [GatherRowsStep(self.weight.data, ids_input, out_slot, accumulate)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout layer; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dropout(p={self.p})"


class ReLU(Module):
    """ReLU activation as a module (for use inside ``Sequential``)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    """Leaky-ReLU activation as a module."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)


class ModuleList(Module):
    """Indexed container of sub-modules (no forward of its own)."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = f"item{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")
