"""Weight initialisation schemes.

The RGCN and dense layers use Glorot/Xavier initialisation (the PyTorch
Geometric default for ``RGCNConv``) and Kaiming initialisation for layers
followed by ReLU-family activations.

All schemes draw from the generator in ``float64`` and cast to the requested
dtype afterwards (default: the active policy dtype of
:mod:`repro.nn.precision`), so a ``float32`` model consumes exactly the same
random stream as its ``float64`` twin — its weights are the ``float64``
weights rounded once, which the dtype-equivalence tests rely on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import precision

__all__ = ["xavier_uniform", "kaiming_uniform", "zeros", "uniform"]


def xavier_uniform(
    shape: tuple,
    rng: np.random.Generator,
    gain: float = 1.0,
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a weight of ``shape``."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    values = rng.uniform(-bound, bound, size=shape)
    return values.astype(precision.resolve_dtype(dtype), copy=False)


def kaiming_uniform(
    shape: tuple,
    rng: np.random.Generator,
    negative_slope: float = 0.0,
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to (leaky-)ReLU activations."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * np.sqrt(3.0 / fan_in)
    values = rng.uniform(-bound, bound, size=shape)
    return values.astype(precision.resolve_dtype(dtype), copy=False)


def uniform(
    shape: tuple,
    rng: np.random.Generator,
    bound: float,
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """Uniform initialisation in ``[-bound, bound]``."""
    values = rng.uniform(-bound, bound, size=shape)
    return values.astype(precision.resolve_dtype(dtype), copy=False)


def zeros(shape: tuple, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape, dtype=precision.resolve_dtype(dtype))


def _fans(shape: tuple) -> tuple:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
