"""Weight initialisation schemes.

The RGCN and dense layers use Glorot/Xavier initialisation (the PyTorch
Geometric default for ``RGCNConv``) and Kaiming initialisation for layers
followed by ReLU-family activations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "zeros", "uniform"]


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a weight of ``shape``."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator, negative_slope: float = 0.0) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to (leaky-)ReLU activations."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple, rng: np.random.Generator, bound: float) -> np.ndarray:
    """Uniform initialisation in ``[-bound, bound]``."""
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: tuple) -> tuple:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
