"""Relational Graph Convolutional Network layer (Schlichtkrull et al., 2018).

The PnP tuner models PROGRAML-style flow graphs whose edges carry one of
three relations (control, data, call flow).  An RGCN layer computes

.. math::

    h_i' = W_0 h_i + \\sum_{r \\in R} \\sum_{j \\in N_r(i)} \\frac{1}{c_{i,r}} W_r h_j

where :math:`c_{i,r}` is the number of relation-``r`` in-neighbours of node
``i`` (the "relation-specific normalised sum" described in the paper's
background section).

The layer executes from a precompiled :class:`~repro.nn.data.EdgePlan` when
one is supplied (per-relation edge groups and normalisations computed once
per batch and shared by every layer of the stack); without a plan it falls
back to the naive per-relation masking path, which is retained as the
bit-identical reference implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn import _scatter
from repro.nn._scatter import count_index
from repro.nn.data import EdgePlan
from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["RGCNConv"]


class RGCNConv(Module):
    """Single relational graph convolution.

    Parameters
    ----------
    in_channels, out_channels:
        Node-feature dimensionality before/after the layer.
    num_relations:
        Number of edge relations (3 for PROGRAML graphs: control/data/call).
    bias:
        Whether to add a learnable bias after aggregation.
    rng:
        Generator for Glorot weight initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        num_relations: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_relations <= 0:
            raise ValueError("num_relations must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.num_relations = num_relations

        # One weight per relation plus the self-loop ("root") weight W_0.
        self.weight = Tensor(
            np.stack(
                [init.xavier_uniform((in_channels, out_channels), rng) for _ in range(num_relations)]
            ),
            requires_grad=True,
        )
        self.root = Tensor(init.xavier_uniform((in_channels, out_channels), rng), requires_grad=True)
        if bias:
            self.bias: Optional[Tensor] = Tensor(np.zeros(out_channels), requires_grad=True)
        else:
            self.bias = None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_type: np.ndarray,
        plan: Optional[EdgePlan] = None,
    ) -> Tensor:
        """Apply the convolution.

        Parameters
        ----------
        x:
            Node features of shape ``(num_nodes, in_channels)``.
        edge_index:
            Integer array of shape ``(2, num_edges)``; row 0 holds source node
            indices, row 1 destination node indices.
        edge_type:
            Integer array of shape ``(num_edges,)`` with values in
            ``[0, num_relations)``.
        plan:
            Optional precompiled :class:`~repro.nn.data.EdgePlan` for this
            batch (see :meth:`GraphBatch.edge_plan`).  With a plan, the
            per-relation edge masks, in-degree counts and normalisations are
            read instead of recomputed; the result is bit-identical to the
            naive path.
        """
        if plan is not None:
            if plan.num_relations != self.num_relations:
                raise ValueError(
                    f"edge plan was built for {plan.num_relations} relations, "
                    f"layer has {self.num_relations}"
                )
            if plan.num_nodes != x.shape[0]:
                raise ValueError("edge plan does not match the number of nodes")
            if plan.dtype != x.data.dtype:
                raise ValueError(
                    f"edge plan carries {plan.dtype} normalisations but node "
                    f"features are {x.data.dtype}; request the plan at the "
                    "model dtype (GraphBatch.edge_plan(num_relations, dtype=...))"
                )
            return self._forward_planned(x, plan)

        edge_index = np.asarray(edge_index, dtype=np.int64)
        edge_type = np.asarray(edge_type, dtype=np.int64)
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, num_edges)")
        if edge_type.shape[0] != edge_index.shape[1]:
            raise ValueError("edge_type length must equal the number of edges")
        if edge_type.size and (edge_type.min() < 0 or edge_type.max() >= self.num_relations):
            raise ValueError("edge_type out of range")

        num_nodes = x.shape[0]
        out = x @ self.root

        for relation in range(self.num_relations):
            mask = edge_type == relation
            if not np.any(mask):
                continue
            src = edge_index[0, mask]
            dst = edge_index[1, mask]
            # Normalisation 1 / |N_r(i)| computed per destination node, in
            # the feature dtype so float32 stays float32.
            degree = count_index(dst, num_nodes, dtype=x.data.dtype)
            norm = 1.0 / degree[dst]

            messages = x.gather_rows(src) @ self.weight[relation]
            messages = messages * Tensor(norm[:, None], dtype=norm.dtype)
            out = out + messages.scatter_sum(dst, num_nodes)

        if self.bias is not None:
            out = out + self.bias
        return out

    def _forward_planned(self, x: Tensor, plan: EdgePlan) -> Tensor:
        """Plan-driven execution: same operations, precomputed schedules."""
        in_channels = x.shape[1]
        # Segment schedules follow the active scatter backend: float32 can
        # take the single-precision sorted-segment reduceat scatters, and
        # the prealloc rounds kernel applies at either dtype (it accumulates
        # in strict index order, so float64 bit-identity is preserved).
        use_segments = _scatter.segments_active(x.data.dtype)
        parts = [x @ self.root]
        for relation in range(self.num_relations):
            src = plan.relation_src[relation]
            if src.size == 0:
                continue
            gathered = x.gather_rows(
                src,
                backward_flat=plan.gather_flat(relation, in_channels),
                backward_segments=plan.gather_segments(relation) if use_segments else None,
            )
            messages = gathered @ self.weight[relation]
            norm = plan.relation_norm[relation]
            messages = messages * Tensor(norm, dtype=norm.dtype)
            parts.append(
                messages.scatter_sum(
                    plan.relation_dst[relation],
                    plan.num_nodes,
                    flat_index=plan.scatter_flat(relation, self.out_channels),
                    segments=plan.scatter_segments(relation) if use_segments else None,
                )
            )
        # Left-associative fused sum — bit-identical to the naive chained
        # ``out + ...`` accumulation.
        out = parts[0] if len(parts) == 1 else Tensor.add_n(parts)
        if self.bias is not None:
            out = out + self.bias
        return out

    def lower(self, in_slot: str, out_slot: str) -> list:
        """Lower this layer to raw-ndarray steps for the inference runtime.

        Returns the :class:`~repro.nn.inference.RGCNStep` reproducing
        :meth:`_forward_planned` bit for bit on preallocated buffers; the
        step consumes the batch's :class:`EdgePlan` (schedules and buffers
        bind once per plan, on first use) exactly like the planned tensor
        path.
        """
        from repro.nn.inference import RGCNStep

        return [
            RGCNStep(
                weight=self.weight.data,
                root=self.root.data,
                bias=self.bias.data if self.bias is not None else None,
                num_relations=self.num_relations,
                in_slot=in_slot,
                out_slot=out_slot,
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RGCNConv({self.in_channels}, {self.out_channels}, "
            f"num_relations={self.num_relations})"
        )
