"""Energy-delay-product tuning experiment (Figures 6 and 7, Section IV-C).

Each tuner selects one (power cap, OpenMP configuration) pair per region with
the goal of minimising EDP; the baseline is the OpenMP default configuration
running at TDP (no power cap).  Reported quantities:

* normalised EDP improvement per application (Fig. 6; 1.0 = oracle),
* speedups and greenups over the default at TDP (Fig. 7),
* the headline geometric means and slowdown/energy-increase case fractions
  quoted in the text of Section IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import evaluation
from repro.core.dataset import TuningScenario
from repro.core.evaluation import EdpRecord
from repro.experiments.common import (
    baseline_edp_selections,
    default_edp_selections,
    experiment_builder,
    pnp_cross_validated_selections,
    suite_subset,
)
from repro.experiments.profiles import ExperimentProfile, fast_profile
from repro.experiments.reporting import format_per_application_series, format_summary
from repro.tuners.bliss import BlissTuner
from repro.tuners.opentuner import OpenTunerLike
from repro.utils.logging import get_logger
from repro.utils.stats import geometric_mean

__all__ = ["EdpExperimentResult", "run_edp"]

_LOG = get_logger("experiments.edp")

PNP_STATIC = "PnP Tuner (Static)"
PNP_DYNAMIC = "PnP Tuner (Dynamic)"
DEFAULT = "Default"
BLISS = "BLISS"
OPENTUNER = "OpenTuner"


@dataclass
class EdpExperimentResult:
    """All records of one EDP tuning experiment."""

    system: str
    profile_name: str
    applications: Tuple[str, ...]
    records: Dict[str, List[EdpRecord]] = field(default_factory=dict)

    # ------------------------------------------------------------ aggregates
    def per_application_normalized_edp(self) -> Dict[str, Dict[str, float]]:
        """Fig. 6 series: tuner → application → geomean normalised EDP improvement."""
        return {
            tuner: evaluation.geomean_by_application(records, "normalized_edp_improvement")
            for tuner, records in self.records.items()
        }

    def per_application_speedups(self, tuner: str) -> Dict[str, float]:
        """Fig. 7 (top): per-application geomean speedup over default at TDP."""
        return evaluation.geomean_by_application(self.records[tuner], "speedup")

    def per_application_greenups(self, tuner: str) -> Dict[str, float]:
        """Fig. 7 (bottom): per-application geomean greenup over default at TDP."""
        return evaluation.geomean_by_application(self.records[tuner], "greenup")

    def geomean_edp_improvement(self, tuner: str) -> float:
        return evaluation.overall_geomean(self.records[tuner], "edp_improvement")

    def fraction_within_oracle(self, tuner: str, threshold: float) -> float:
        return evaluation.fraction_within_oracle(
            self.records[tuner], threshold, attribute="normalized_edp_improvement"
        )

    def slowdown_fraction(self, tuner: str) -> float:
        """Fraction of regions whose EDP-tuned execution is slower than default."""
        records = self.records[tuner]
        return sum(1 for r in records if r.speedup < 1.0) / len(records)

    def energy_increase_fraction(self, tuner: str) -> float:
        """Fraction of regions whose EDP-tuned execution uses more energy."""
        records = self.records[tuner]
        return sum(1 for r in records if r.greenup < 1.0) / len(records)

    def geomean_speedup_excluding_slowdowns(self, tuner: str) -> float:
        values = [r.speedup for r in self.records[tuner] if r.speedup >= 1.0]
        return geometric_mean(values) if values else float("nan")

    def geomean_greenup_of_improvements(self, tuner: str) -> float:
        values = [r.greenup for r in self.records[tuner] if r.greenup >= 1.0]
        return geometric_mean(values) if values else float("nan")

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {"system": self.system, "profile": self.profile_name}
        for tuner, records in self.records.items():
            if tuner == DEFAULT:
                continue
            out[f"{tuner} geomean EDP improvement"] = round(self.geomean_edp_improvement(tuner), 3)
            out[f"{tuner} within 5% of oracle EDP"] = round(self.fraction_within_oracle(tuner, 0.95), 3)
            out[f"{tuner} within 20% of oracle EDP"] = round(self.fraction_within_oracle(tuner, 0.80), 3)
            out[f"{tuner} geomean speedup vs default@TDP"] = round(
                evaluation.overall_geomean(records, "speedup"), 3
            )
            out[f"{tuner} geomean greenup vs default@TDP"] = round(
                evaluation.overall_geomean(records, "greenup"), 3
            )
            out[f"{tuner} slowdown cases"] = round(self.slowdown_fraction(tuner), 3)
            out[f"{tuner} energy-increase cases"] = round(self.energy_increase_fraction(tuner), 3)
        return out

    # -------------------------------------------------------------- display
    def format_figure6(self) -> str:
        return format_per_application_series(
            self.per_application_normalized_edp(),
            applications=list(self.applications),
            title=f"Normalized EDP improvement on {self.system} (1.0 = oracle)",
        )

    def format_figure7(self) -> str:
        tuners = [t for t in self.records if t != DEFAULT]
        speedups = {t: self.per_application_speedups(t) for t in tuners}
        greenups = {t: self.per_application_greenups(t) for t in tuners}
        top = format_per_application_series(
            speedups, list(self.applications),
            title=f"Speedup over default@TDP when tuning for EDP ({self.system})",
        )
        bottom = format_per_application_series(
            greenups, list(self.applications),
            title=f"Greenup over default@TDP when tuning for EDP ({self.system})",
        )
        return top + "\n\n" + bottom

    def format_summary(self) -> str:
        return format_summary(self.summary(), title=f"EDP tuning on {self.system}")


def run_edp(system: str, profile: Optional[ExperimentProfile] = None) -> EdpExperimentResult:
    """Run the EDP tuning experiment for one system."""
    profile = profile if profile is not None else fast_profile()
    # The EDP dataset has one sample per region (68) instead of one per
    # (region, cap) pair (272), so the same wall-clock budget affords more
    # epochs; scale them up to keep the number of gradient steps comparable.
    profile = profile.with_overrides(epochs=profile.epochs * 3)
    builder = experiment_builder(system, profile)
    database = builder.database
    regions = builder.regions()
    region_ids = [r.region_id for r in regions]
    applications = tuple(suite_subset(profile).keys())

    result = EdpExperimentResult(
        system=system, profile_name=profile.name, applications=applications
    )

    # Default at TDP (the baseline itself: improvement 1.0 by construction).
    result.records[DEFAULT] = evaluation.evaluate_edp(
        database, default_edp_selections(database, region_ids)
    )

    # PnP tuner (static features).
    _LOG.info("training PnP EDP model (static) on %s", system)
    static_samples = builder.edp_samples(include_counters=False)
    static_selection = pnp_cross_validated_selections(
        builder, static_samples, profile, TuningScenario.EDP,
        include_counters=False, optimizer="adam",
    )
    result.records[PNP_STATIC] = evaluation.evaluate_edp(database, static_selection)

    # PnP tuner (static + counters).
    if profile.include_dynamic_variant:
        _LOG.info("training PnP EDP model (dynamic) on %s", system)
        dynamic_samples = builder.edp_samples(include_counters=True)
        dynamic_selection = pnp_cross_validated_selections(
            builder, dynamic_samples, profile, TuningScenario.EDP,
            include_counters=True, optimizer="adam",
        )
        result.records[PNP_DYNAMIC] = evaluation.evaluate_edp(database, dynamic_selection)

    # Baselines.
    if profile.include_baselines:
        _LOG.info("running BLISS and OpenTuner EDP baselines on %s", system)
        bliss = BlissTuner(budget=profile.bliss_budget, seed=profile.seed)
        result.records[BLISS] = evaluation.evaluate_edp(
            database, baseline_edp_selections(database, region_ids, bliss)
        )
        opentuner = OpenTunerLike(budget=profile.opentuner_budget, seed=profile.seed)
        result.records[OPENTUNER] = evaluation.evaluate_edp(
            database, baseline_edp_selections(database, region_ids, opentuner)
        )

    return result
