"""Transfer-learning study (Section IV-B).

Because the statically generated code graphs are identical across systems,
the GNN encoder trained on the Haswell dataset can be reused on Skylake; only
the dense classifier needs re-training.  The paper reports this makes the
Skylake training 4.18× faster (a 76 % reduction in training time).

The study trains (i) a full model from scratch on the target system and
(ii) a model whose GNN weights are loaded from a source-system model and
frozen, and compares wall-clock training time and resulting tuning quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import evaluation
from repro.core.dataset import TuningScenario
from repro.core.model import PnPModel
from repro.core.training import predict_labels, train_model
from repro.core.transfer import extract_gnn_weights, freeze_gnn_parameters, transfer_gnn_weights
from repro.core.tuner import labels_to_performance_selections
from repro.experiments.common import experiment_builder
from repro.experiments.profiles import ExperimentProfile, fast_profile
from repro.experiments.reporting import format_summary
from repro.utils.logging import get_logger

__all__ = ["TransferStudyResult", "run_transfer_study"]

_LOG = get_logger("experiments.transfer")


@dataclass(frozen=True)
class TransferStudyResult:
    """Timing and quality comparison of scratch vs. transferred training."""

    source_system: str
    target_system: str
    scratch_training_seconds: float
    transfer_training_seconds: float
    scratch_geomean_normalized: float
    transfer_geomean_normalized: float

    @property
    def speedup(self) -> float:
        """How much faster the dense-only re-training is (paper: ~4.18×)."""
        return self.scratch_training_seconds / self.transfer_training_seconds

    @property
    def training_time_reduction(self) -> float:
        """Fractional reduction in training time (paper: ~0.76)."""
        return 1.0 - self.transfer_training_seconds / self.scratch_training_seconds

    def summary(self) -> Dict[str, object]:
        return {
            "source system": self.source_system,
            "target system": self.target_system,
            "scratch training time (s)": round(self.scratch_training_seconds, 2),
            "transfer training time (s)": round(self.transfer_training_seconds, 2),
            "training speedup": round(self.speedup, 2),
            "training time reduction": round(self.training_time_reduction, 2),
            "scratch geomean normalized speedup": round(self.scratch_geomean_normalized, 3),
            "transfer geomean normalized speedup": round(self.transfer_geomean_normalized, 3),
        }

    def format_summary(self) -> str:
        return format_summary(
            self.summary(),
            title=f"Transfer learning {self.source_system} → {self.target_system}",
        )


def run_transfer_study(
    source_system: str = "haswell",
    target_system: str = "skylake",
    profile: Optional[ExperimentProfile] = None,
) -> TransferStudyResult:
    """Measure the training-time benefit of reusing GNN weights across systems."""
    profile = profile if profile is not None else fast_profile()

    # ----------------------------------------------------------- source model
    source_builder = experiment_builder(source_system, profile)
    source_space = source_builder.search_space
    source_samples = source_builder.performance_samples(include_counters=False)
    source_config = profile.model_config(
        len(source_builder.vocabulary),
        source_space.num_omp_configurations,
        source_builder.aux_feature_dim(TuningScenario.PERFORMANCE, False),
    )
    source_model = PnPModel(source_config)
    _LOG.info("training source model on %s", source_system)
    train_model(source_model, source_samples, profile.training_config("adamw"))
    gnn_weights = extract_gnn_weights(source_model)

    # ----------------------------------------------------------- target data
    target_builder = experiment_builder(target_system, profile)
    target_space = target_builder.search_space
    target_samples = target_builder.performance_samples(include_counters=False)
    target_config = profile.model_config(
        len(target_builder.vocabulary),
        target_space.num_omp_configurations,
        target_builder.aux_feature_dim(TuningScenario.PERFORMANCE, False),
    )

    # Training from scratch on the target system.
    scratch_model = PnPModel(target_config)
    start = time.perf_counter()
    train_model(scratch_model, target_samples, profile.training_config("adamw"))
    scratch_seconds = time.perf_counter() - start

    # Transfer: load GNN weights, freeze them, re-train the dense head only.
    transfer_model = PnPModel(target_config)
    transfer_gnn_weights(gnn_weights, transfer_model)
    dense_parameters = freeze_gnn_parameters(transfer_model)
    start = time.perf_counter()
    train_model(
        transfer_model, target_samples, profile.training_config("adamw"),
        parameters=dense_parameters,
    )
    transfer_seconds = time.perf_counter() - start

    # Quality of both models on the training distribution (full-suite fit,
    # matching how the paper reports the optimisation's effect).
    def geomean_normalized(model: PnPModel) -> float:
        labels = predict_labels(model, target_samples)
        predictions = {
            (s.region_id, s.power_cap): int(label) for s, label in zip(target_samples, labels)
        }
        selections = labels_to_performance_selections(predictions, target_space)
        records = evaluation.evaluate_power_constrained(target_builder.database, selections)
        return evaluation.overall_geomean(records, "normalized_speedup")

    return TransferStudyResult(
        source_system=source_system,
        target_system=target_system,
        scratch_training_seconds=scratch_seconds,
        transfer_training_seconds=transfer_seconds,
        scratch_geomean_normalized=geomean_normalized(scratch_model),
        transfer_geomean_normalized=geomean_normalized(transfer_model),
    )
