"""Experiment profiles: how much compute each experiment run spends.

The paper's protocol (leave-one-application-out over 30 applications, tens of
training epochs) is faithful but slow in a pure-NumPy training stack, so
every experiment runner accepts a profile:

* ``full``  — the paper's protocol (LOOCV, long training);
* ``fast``  — grouped application folds and short training; this is what the
  benchmark harness uses so the entire figure set regenerates in minutes;
* ``smoke`` — a tiny subset of applications; used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.core.model import ModelConfig
from repro.core.training import GroupedApplicationKFold, LeaveOneApplicationOut, TrainingConfig

__all__ = ["ExperimentProfile", "full_profile", "fast_profile", "smoke_profile"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Controls dataset size, model size and training effort of experiments.

    Attributes
    ----------
    name:
        Profile identifier ("full", "fast", "smoke", ...).
    epochs, batch_size, learning_rate:
        Training-loop parameters (Table II defaults for ``full``).
    embedding_dim, hidden_dim, dense_hidden_dim:
        Model capacity.
    loocv:
        If True, use leave-one-application-out CV; otherwise grouped k-fold
        with ``num_folds`` folds.
    num_folds:
        Number of grouped folds when ``loocv`` is False.
    applications:
        Optional subset of application names to restrict the suite to
        (``None`` = all 30 applications).
    bliss_budget / opentuner_budget:
        Execution budgets granted to the baseline tuners.
    include_dynamic_variant:
        Whether to also train/evaluate the static+counters ("dynamic") model.
    shuffle:
        Training shuffle mode: ``True`` reshuffles samples every epoch (the
        paper's SGD mixing), ``"batches"`` permutes fixed batch compositions
        so memoised EdgePlans are reused across every epoch (see
        :class:`repro.nn.data.GraphDataLoader`).  The accuracy study backing
        the knob (``make shuffle-study``, 68-region suite) measured the
        batches-vs-samples accuracy delta as negligible; the README records
        the numbers.
    seed:
        Master seed for the whole experiment.
    """

    name: str
    epochs: int
    batch_size: int = 16
    learning_rate: float = 1e-3
    embedding_dim: int = 32
    hidden_dim: int = 32
    dense_hidden_dim: int = 64
    num_rgcn_layers: int = 4
    num_dense_layers: int = 3
    dropout: float = 0.1
    loocv: bool = True
    num_folds: int = 5
    applications: Optional[Tuple[str, ...]] = None
    bliss_budget: int = 20
    opentuner_budget: int = 30
    include_dynamic_variant: bool = True
    include_baselines: bool = True
    shuffle: Union[bool, str] = True
    seed: int = 0

    # ------------------------------------------------------------- factories
    def splitter(self):
        """The cross-validation splitter this profile prescribes."""
        if self.loocv:
            return LeaveOneApplicationOut()
        return GroupedApplicationKFold(self.num_folds)

    def training_config(self, optimizer: str = "adamw") -> TrainingConfig:
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            optimizer=optimizer,
            shuffle=self.shuffle,
            seed=self.seed,
        )

    def model_config(self, vocabulary_size: int, num_classes: int, aux_dim: int) -> ModelConfig:
        return ModelConfig(
            vocabulary_size=vocabulary_size,
            num_classes=num_classes,
            aux_dim=aux_dim,
            embedding_dim=self.embedding_dim,
            hidden_dim=self.hidden_dim,
            dense_hidden_dim=self.dense_hidden_dim,
            num_rgcn_layers=self.num_rgcn_layers,
            num_dense_layers=self.num_dense_layers,
            dropout=self.dropout,
            seed=self.seed,
        )

    def with_overrides(self, **kwargs) -> "ExperimentProfile":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def full_profile(seed: int = 0) -> ExperimentProfile:
    """The paper's protocol: LOOCV over all applications, long training."""
    return ExperimentProfile(
        name="full",
        epochs=50,
        embedding_dim=64,
        hidden_dim=64,
        dense_hidden_dim=128,
        loocv=True,
        seed=seed,
    )


def fast_profile(seed: int = 0) -> ExperimentProfile:
    """Reduced-cost profile used by the benchmark harness."""
    return ExperimentProfile(
        name="fast",
        epochs=14,
        learning_rate=3e-3,
        loocv=False,
        num_folds=3,
        seed=seed,
    )


def smoke_profile(seed: int = 0) -> ExperimentProfile:
    """Tiny profile for unit/integration tests: a handful of applications."""
    return ExperimentProfile(
        name="smoke",
        epochs=2,
        embedding_dim=16,
        hidden_dim=16,
        dense_hidden_dim=32,
        num_rgcn_layers=2,
        loocv=False,
        num_folds=2,
        applications=("gemm", "trisolv", "atax", "LULESH"),
        bliss_budget=10,
        opentuner_budget=10,
        include_dynamic_variant=False,
        seed=seed,
    )
