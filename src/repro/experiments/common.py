"""Shared plumbing for the experiment runners.

Heavy loops can be sharded across worker processes via :mod:`repro.serve`:
cross-validation folds (``pnp_cross_validated_selections(num_workers=...)``)
and per-figure region sweep loops (:func:`sharded_performance_selections`).
Both paths are deterministic and produce results identical to their serial
counterparts — sharding is purely a wall-clock decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.benchsuite.registry import regions_by_application
from repro.core.dataset import DatasetBuilder, LabeledSample, TuningScenario
from repro.core.measurements import MeasurementDatabase, get_measurement_database
from repro.core.model import ModelConfig, PnPModel
from repro.core.training import (
    TrainingConfig,
    predict_labels,
    run_cross_validation,
    train_model,
)
from repro.core.tuner import (
    PnPTuner,
    labels_to_edp_selections,
    labels_to_performance_selections,
)
from repro.experiments.profiles import ExperimentProfile
from repro.openmp.config import OpenMPConfig
from repro.openmp.region import RegionCharacteristics
from repro.serve import FleetClient, LocalFleet, SweepServer, parallel_map
from repro.tuners.base import BaselineTuner
from repro.utils.logging import get_logger

__all__ = [
    "suite_subset",
    "experiment_database",
    "experiment_builder",
    "pnp_cross_validated_selections",
    "sharded_performance_selections",
    "default_performance_selections",
    "default_edp_selections",
    "baseline_performance_selections",
    "baseline_edp_selections",
]

_LOG = get_logger("experiments.common")


def suite_subset(profile: ExperimentProfile) -> Dict[str, List[RegionCharacteristics]]:
    """The benchmark applications this profile runs on."""
    everything = regions_by_application()
    if profile.applications is None:
        return everything
    missing = [name for name in profile.applications if name not in everything]
    if missing:
        raise KeyError(f"profile references unknown applications: {missing}")
    return {name: everything[name] for name in profile.applications}


def experiment_database(system: str, profile: ExperimentProfile) -> MeasurementDatabase:
    """Measurement database restricted to the profile's applications."""
    regions = [r for rs in suite_subset(profile).values() for r in rs]
    return get_measurement_database(system, regions=regions, seed=profile.seed)


def experiment_builder(system: str, profile: ExperimentProfile) -> DatasetBuilder:
    """Dataset builder over the profile's applications."""
    database = experiment_database(system, profile)
    return DatasetBuilder(database, regions_by_app=suite_subset(profile), seed=profile.seed)


# ------------------------------------------------------------------ PnP CV
@dataclass(frozen=True)
class _FoldRunner:
    """Picklable per-fold trainer for process-sharded cross-validation.

    Folds are independent (fresh model per fold, deterministic seeds), so
    training them in worker processes yields predictions identical to the
    serial :func:`repro.core.training.run_cross_validation` loop.
    """

    model_config: ModelConfig
    training_config: TrainingConfig

    def __call__(self, fold) -> List[Tuple[Tuple[str, Optional[float]], int]]:
        fold_name, train, validation = fold
        model = PnPModel(self.model_config)
        train_model(model, train, self.training_config)
        predictions = predict_labels(model, validation)
        _LOG.info("fold %s: %d validation samples", fold_name, len(validation))
        return [
            ((labeled.region_id, labeled.power_cap), int(predicted))
            for labeled, predicted in zip(validation, predictions)
        ]


def pnp_cross_validated_selections(
    builder: DatasetBuilder,
    samples: Sequence[LabeledSample],
    profile: ExperimentProfile,
    scenario: TuningScenario,
    include_counters: bool,
    optimizer: str,
    train_hook=None,
    num_workers: int = 1,
):
    """Cross-validate the PnP model and convert predictions to selections.

    Returns the selections in the format the evaluation functions expect:
    ``{(region_id, cap): config}`` for the performance scenario and
    ``{region_id: (cap, config)}`` for the EDP scenario.

    ``num_workers > 1`` trains the cross-validation folds in worker
    processes (identical predictions, shorter wall clock).  Experiments
    passing a ``train_hook`` (whose returned parameter subsets must alias
    the live model) fall back to the serial path.
    """
    space = builder.search_space
    num_classes = (
        space.num_omp_configurations
        if scenario == TuningScenario.PERFORMANCE
        else space.num_joint_configurations
    )
    aux_dim = builder.aux_feature_dim(scenario, include_counters)
    model_config = profile.model_config(len(builder.vocabulary), num_classes, aux_dim)
    training_config = profile.training_config(optimizer=optimizer)

    if num_workers > 1 and train_hook is None:
        runner = _FoldRunner(model_config, training_config)
        folds = list(profile.splitter().split(samples))
        predictions = {}
        for fold_predictions in parallel_map(runner, folds, num_workers):
            predictions.update(fold_predictions)
    else:
        if num_workers > 1:
            _LOG.info("train_hook given: cross-validating serially")
        predictions = run_cross_validation(
            samples,
            model_factory=lambda: PnPModel(model_config),
            training_config=training_config,
            splitter=profile.splitter(),
            train_hook=train_hook,
        )
    if scenario == TuningScenario.PERFORMANCE:
        return labels_to_performance_selections(predictions, space)
    return labels_to_edp_selections(predictions, space)


# --------------------------------------------------------- sharded serving
def sharded_performance_selections(
    tuner: PnPTuner,
    regions: Sequence[RegionCharacteristics],
    power_caps: Sequence[float],
    num_workers: int = 2,
    server: Optional[SweepServer] = None,
    fleet: Optional[Union[FleetClient, LocalFleet]] = None,
) -> Dict[Tuple[str, float], OpenMPConfig]:
    """Per-figure region × cap loop served by a sharded worker pool.

    The fitted tuner's weights are serialized once; regions are sharded
    across ``num_workers`` processes and each shard is batch-encoded by
    :meth:`~repro.core.tuner.PnPTuner.predict_sweep_many`.  The returned
    ``{(region_id, cap): config}`` selections are identical to looping
    ``tuner.predict_sweep`` serially.  Pass an existing ``server`` to reuse
    a warm pool across several calls (it is then left open), or a ``fleet``
    (a :class:`~repro.serve.FleetClient` with the tuner already registered,
    or a :class:`~repro.serve.LocalFleet`) to route the sweep over TCP
    nodes instead of local worker processes — also left open, and still
    byte-identical to the serial loop.
    """
    if fleet is not None:
        swept = fleet.sweep(regions, power_caps)
    else:
        owned = server is None
        if server is None:
            server = SweepServer.from_tuner(tuner, num_workers=num_workers)
        try:
            swept = server.sweep(regions, power_caps)
        finally:
            if owned:
                server.close()
    selections: Dict[Tuple[str, float], OpenMPConfig] = {}
    for region, results in zip(regions, swept):
        for result in results:
            selections[(region.region_id, float(result.power_cap))] = result.config
    return selections


# -------------------------------------------------------------- baselines
def default_performance_selections(
    database: MeasurementDatabase,
    region_ids: Iterable[str],
    power_caps: Iterable[float],
) -> Dict[Tuple[str, float], OpenMPConfig]:
    """The OpenMP default configuration for every (region, cap) point."""
    default = database.search_space.default_configuration
    return {(rid, float(cap)): default for rid in region_ids for cap in power_caps}


def default_edp_selections(
    database: MeasurementDatabase, region_ids: Iterable[str]
) -> Dict[str, Tuple[float, OpenMPConfig]]:
    """The default configuration at TDP for every region (scenario-2 baseline)."""
    default = database.search_space.default_configuration
    tdp = database.search_space.tdp_watts
    return {rid: (tdp, default) for rid in region_ids}


def baseline_performance_selections(
    database: MeasurementDatabase,
    region_ids: Iterable[str],
    power_caps: Iterable[float],
    tuner: BaselineTuner,
) -> Dict[Tuple[str, float], OpenMPConfig]:
    """Run an execution-based baseline tuner on every (region, cap) point."""
    selections: Dict[Tuple[str, float], OpenMPConfig] = {}
    for region_id in region_ids:
        for cap in power_caps:
            selections[(region_id, float(cap))] = tuner.tune_performance(database, region_id, cap)
    _LOG.info("%s used %d executions", tuner.name, tuner.executions_used)
    return selections


def baseline_edp_selections(
    database: MeasurementDatabase,
    region_ids: Iterable[str],
    tuner: BaselineTuner,
) -> Dict[str, Tuple[float, OpenMPConfig]]:
    """Run an execution-based baseline tuner on every region (EDP scenario)."""
    selections: Dict[str, Tuple[float, OpenMPConfig]] = {}
    for region_id in region_ids:
        selections[region_id] = tuner.tune_edp(database, region_id)
    _LOG.info("%s used %d executions", tuner.name, tuner.executions_used)
    return selections
