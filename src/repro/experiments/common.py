"""Shared plumbing for the experiment runners."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.benchsuite.registry import regions_by_application
from repro.core.dataset import DatasetBuilder, LabeledSample, TuningScenario
from repro.core.measurements import MeasurementDatabase, get_measurement_database
from repro.core.model import PnPModel
from repro.core.training import run_cross_validation
from repro.core.tuner import labels_to_edp_selections, labels_to_performance_selections
from repro.experiments.profiles import ExperimentProfile
from repro.openmp.config import OpenMPConfig
from repro.openmp.region import RegionCharacteristics
from repro.tuners.base import BaselineTuner
from repro.utils.logging import get_logger

__all__ = [
    "suite_subset",
    "experiment_database",
    "experiment_builder",
    "pnp_cross_validated_selections",
    "default_performance_selections",
    "default_edp_selections",
    "baseline_performance_selections",
    "baseline_edp_selections",
]

_LOG = get_logger("experiments.common")


def suite_subset(profile: ExperimentProfile) -> Dict[str, List[RegionCharacteristics]]:
    """The benchmark applications this profile runs on."""
    everything = regions_by_application()
    if profile.applications is None:
        return everything
    missing = [name for name in profile.applications if name not in everything]
    if missing:
        raise KeyError(f"profile references unknown applications: {missing}")
    return {name: everything[name] for name in profile.applications}


def experiment_database(system: str, profile: ExperimentProfile) -> MeasurementDatabase:
    """Measurement database restricted to the profile's applications."""
    regions = [r for rs in suite_subset(profile).values() for r in rs]
    return get_measurement_database(system, regions=regions, seed=profile.seed)


def experiment_builder(system: str, profile: ExperimentProfile) -> DatasetBuilder:
    """Dataset builder over the profile's applications."""
    database = experiment_database(system, profile)
    return DatasetBuilder(database, regions_by_app=suite_subset(profile), seed=profile.seed)


# ------------------------------------------------------------------ PnP CV
def pnp_cross_validated_selections(
    builder: DatasetBuilder,
    samples: Sequence[LabeledSample],
    profile: ExperimentProfile,
    scenario: TuningScenario,
    include_counters: bool,
    optimizer: str,
    train_hook=None,
):
    """Cross-validate the PnP model and convert predictions to selections.

    Returns the selections in the format the evaluation functions expect:
    ``{(region_id, cap): config}`` for the performance scenario and
    ``{region_id: (cap, config)}`` for the EDP scenario.
    """
    space = builder.search_space
    num_classes = (
        space.num_omp_configurations
        if scenario == TuningScenario.PERFORMANCE
        else space.num_joint_configurations
    )
    aux_dim = builder.aux_feature_dim(scenario, include_counters)
    model_config = profile.model_config(len(builder.vocabulary), num_classes, aux_dim)

    predictions = run_cross_validation(
        samples,
        model_factory=lambda: PnPModel(model_config),
        training_config=profile.training_config(optimizer=optimizer),
        splitter=profile.splitter(),
        train_hook=train_hook,
    )
    if scenario == TuningScenario.PERFORMANCE:
        return labels_to_performance_selections(predictions, space)
    return labels_to_edp_selections(predictions, space)


# -------------------------------------------------------------- baselines
def default_performance_selections(
    database: MeasurementDatabase,
    region_ids: Iterable[str],
    power_caps: Iterable[float],
) -> Dict[Tuple[str, float], OpenMPConfig]:
    """The OpenMP default configuration for every (region, cap) point."""
    default = database.search_space.default_configuration
    return {(rid, float(cap)): default for rid in region_ids for cap in power_caps}


def default_edp_selections(
    database: MeasurementDatabase, region_ids: Iterable[str]
) -> Dict[str, Tuple[float, OpenMPConfig]]:
    """The default configuration at TDP for every region (scenario-2 baseline)."""
    default = database.search_space.default_configuration
    tdp = database.search_space.tdp_watts
    return {rid: (tdp, default) for rid in region_ids}


def baseline_performance_selections(
    database: MeasurementDatabase,
    region_ids: Iterable[str],
    power_caps: Iterable[float],
    tuner: BaselineTuner,
) -> Dict[Tuple[str, float], OpenMPConfig]:
    """Run an execution-based baseline tuner on every (region, cap) point."""
    selections: Dict[Tuple[str, float], OpenMPConfig] = {}
    for region_id in region_ids:
        for cap in power_caps:
            selections[(region_id, float(cap))] = tuner.tune_performance(database, region_id, cap)
    _LOG.info("%s used %d executions", tuner.name, tuner.executions_used)
    return selections


def baseline_edp_selections(
    database: MeasurementDatabase,
    region_ids: Iterable[str],
    tuner: BaselineTuner,
) -> Dict[str, Tuple[float, OpenMPConfig]]:
    """Run an execution-based baseline tuner on every region (EDP scenario)."""
    selections: Dict[str, Tuple[float, OpenMPConfig]] = {}
    for region_id in region_ids:
        selections[region_id] = tuner.tune_edp(database, region_id)
    _LOG.info("%s used %d executions", tuner.name, tuner.executions_used)
    return selections
