"""Generalisation to unseen power constraints (Figures 4 and 5, Section IV-B).

For each of the lowest and highest power caps of a system, the experiment
removes *all* measurements taken at that cap from the training set, trains
the PnP model (static + performance-counter features, with the normalised
power cap as an input) on the remaining three caps, and asks it to tune
regions at the held-out cap — combined with leave-application-out splitting
so both the code and the power constraint are unseen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import evaluation
from repro.core.dataset import DatasetBuilder, TuningScenario
from repro.core.evaluation import PerformanceRecord
from repro.core.model import PnPModel
from repro.core.training import predict_labels, train_model
from repro.core.tuner import labels_to_performance_selections
from repro.experiments.common import (
    default_performance_selections,
    experiment_builder,
    suite_subset,
)
from repro.experiments.profiles import ExperimentProfile, fast_profile
from repro.experiments.reporting import format_per_application_series, format_summary
from repro.utils.logging import get_logger

__all__ = ["UnseenPowerResult", "run_unseen_power"]

_LOG = get_logger("experiments.unseen_power")

PNP = "PnP Tuner"
DEFAULT = "Default"


@dataclass
class UnseenPowerResult:
    """Records for the two held-out power caps of one system."""

    system: str
    profile_name: str
    held_out_caps: Tuple[float, ...]
    applications: Tuple[str, ...]
    #: held-out cap → tuner name → records
    records: Dict[float, Dict[str, List[PerformanceRecord]]] = field(default_factory=dict)

    def per_application_normalized(self, cap: float) -> Dict[str, Dict[str, float]]:
        return {
            tuner: evaluation.geomean_by_application(records, "normalized_speedup")
            for tuner, records in self.records[cap].items()
        }

    def geomean_speedup(self, cap: float, tuner: str = PNP) -> float:
        return evaluation.overall_geomean(self.records[cap][tuner], "speedup")

    def oracle_geomean_speedup(self, cap: float) -> float:
        return evaluation.overall_geomean(self.records[cap][PNP], "oracle_speedup")

    def fraction_within(self, threshold: float) -> float:
        """Fraction of all (cap, region) cases within ``threshold`` of the oracle."""
        all_records = [r for cap in self.records for r in self.records[cap][PNP]]
        return evaluation.fraction_within_oracle(all_records, threshold)

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {"system": self.system, "profile": self.profile_name}
        for cap in self.held_out_caps:
            out[f"PnP geomean speedup @ {cap:.0f}W (unseen)"] = round(self.geomean_speedup(cap), 3)
            out[f"Oracle geomean speedup @ {cap:.0f}W"] = round(self.oracle_geomean_speedup(cap), 3)
        out["fraction >=0.95x oracle"] = round(self.fraction_within(0.95), 3)
        out["fraction >=0.80x oracle"] = round(self.fraction_within(0.80), 3)
        return out

    def format_figure(self, cap: float) -> str:
        return format_per_application_series(
            self.per_application_normalized(cap),
            applications=list(self.applications),
            title=(
                f"Unseen power constraint {cap:.0f}W on {self.system}: "
                "normalized speedups (1.0 = oracle)"
            ),
        )

    def format_summary(self) -> str:
        return format_summary(self.summary(), title=f"Unseen power constraints on {self.system}")


def _cross_validate_unseen_cap(
    builder: DatasetBuilder,
    profile: ExperimentProfile,
    held_out_cap: float,
) -> Dict[Tuple[str, Optional[float]], int]:
    """Leave-application-out CV where validation uses only the held-out cap."""
    space = builder.search_space
    train_caps = [cap for cap in space.power_caps if abs(cap - held_out_cap) > 1e-9]
    train_pool = builder.performance_samples(power_caps=train_caps, include_counters=True)
    validation_pool = builder.performance_samples(
        power_caps=[held_out_cap], include_counters=True
    )

    aux_dim = builder.aux_feature_dim(TuningScenario.PERFORMANCE, include_counters=True)
    model_config = profile.model_config(
        len(builder.vocabulary), space.num_omp_configurations, aux_dim
    )
    splitter = profile.splitter()

    predictions: Dict[Tuple[str, Optional[float]], int] = {}
    for fold_name, _train_fold, validation_fold in splitter.split(validation_pool):
        validation_apps = {s.application for s in validation_fold}
        train_fold = [s for s in train_pool if s.application not in validation_apps]
        model = PnPModel(model_config)
        train_model(model, train_fold, profile.training_config(optimizer="adamw"))
        for sample, label in zip(validation_fold, predict_labels(model, validation_fold)):
            predictions[(sample.region_id, sample.power_cap)] = int(label)
        _LOG.info("unseen-cap fold %s done (%d validation samples)", fold_name, len(validation_fold))
    return predictions


def run_unseen_power(
    system: str,
    profile: Optional[ExperimentProfile] = None,
    held_out_caps: Optional[Tuple[float, ...]] = None,
) -> UnseenPowerResult:
    """Run the unseen-power-constraint experiment for one system."""
    profile = profile if profile is not None else fast_profile()
    builder = experiment_builder(system, profile)
    database = builder.database
    space = builder.search_space
    region_ids = [r.region_id for r in builder.regions()]
    applications = tuple(suite_subset(profile).keys())
    caps = held_out_caps if held_out_caps is not None else (
        min(space.power_caps), max(space.power_caps)
    )

    result = UnseenPowerResult(
        system=system,
        profile_name=profile.name,
        held_out_caps=tuple(caps),
        applications=applications,
    )
    for cap in caps:
        predictions = _cross_validate_unseen_cap(builder, profile, cap)
        selections = labels_to_performance_selections(predictions, space)
        pnp_records = evaluation.evaluate_power_constrained(database, selections)
        default_records = evaluation.evaluate_power_constrained(
            database, default_performance_selections(database, region_ids, [cap])
        )
        result.records[cap] = {PNP: pnp_records, DEFAULT: default_records}
    return result
