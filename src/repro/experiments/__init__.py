"""Experiment harness: one runner per table/figure of the paper.

Every runner takes an :class:`~repro.experiments.profiles.ExperimentProfile`
(``fast`` for the benchmark harness, ``full`` for the paper's exact
protocol) and returns a result object that can print the same rows/series the
paper reports:

========================  =========================================================
Paper artefact            Runner
========================  =========================================================
Motivating example (§I)   :func:`repro.experiments.motivating.run_motivating_example`
Fig. 2 (Haswell)          :func:`repro.experiments.power_constrained.run_power_constrained`
Fig. 3 (Skylake)          :func:`repro.experiments.power_constrained.run_power_constrained`
Fig. 4 / Fig. 5           :func:`repro.experiments.unseen_power.run_unseen_power`
Fig. 6 / Fig. 7           :func:`repro.experiments.edp.run_edp`
Transfer learning (§IV-B) :func:`repro.experiments.transfer_study.run_transfer_study`
Ablations (§VI)           :func:`repro.experiments.ablation.run_feature_ablation`
========================  =========================================================
"""

from repro.experiments.profiles import ExperimentProfile, fast_profile, full_profile, smoke_profile
from repro.experiments.power_constrained import PowerConstrainedResult, run_power_constrained
from repro.experiments.unseen_power import UnseenPowerResult, run_unseen_power
from repro.experiments.edp import EdpExperimentResult, run_edp
from repro.experiments.transfer_study import TransferStudyResult, run_transfer_study
from repro.experiments.motivating import MotivatingExampleResult, run_motivating_example
from repro.experiments.ablation import AblationResult, run_feature_ablation
from repro.experiments import reporting

__all__ = [
    "ExperimentProfile",
    "fast_profile",
    "full_profile",
    "smoke_profile",
    "PowerConstrainedResult",
    "run_power_constrained",
    "UnseenPowerResult",
    "run_unseen_power",
    "EdpExperimentResult",
    "run_edp",
    "TransferStudyResult",
    "run_transfer_study",
    "MotivatingExampleResult",
    "run_motivating_example",
    "AblationResult",
    "run_feature_ablation",
    "reporting",
]
