"""Power-constrained auto-tuning experiment (Figures 2 and 3, Section IV-B).

For every (region, power cap) point the experiment obtains configuration
selections from:

* the OpenMP default (the figures' "Default" bars),
* the PnP tuner with static features (leave-application-out cross-validated),
* the PnP tuner with static + PAPI-counter features ("dynamic" variant),
* BLISS (20-execution budget) and OpenTuner (budgeted search),

and normalises each selection's speedup over the default by the oracle
speedup, exactly as the paper's figures do (the oracle is always 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import evaluation
from repro.core.dataset import TuningScenario
from repro.core.evaluation import PerformanceRecord
from repro.experiments.common import (
    baseline_performance_selections,
    default_performance_selections,
    experiment_builder,
    pnp_cross_validated_selections,
    suite_subset,
)
from repro.experiments.profiles import ExperimentProfile, fast_profile
from repro.experiments.reporting import format_per_application_series, format_summary
from repro.tuners.bliss import BlissTuner
from repro.tuners.opentuner import OpenTunerLike
from repro.utils.logging import get_logger
from repro.utils.stats import geometric_mean

__all__ = ["PowerConstrainedResult", "run_power_constrained"]

_LOG = get_logger("experiments.power_constrained")

#: Display names used in figures and result tables.
PNP_STATIC = "PnP Tuner (Static)"
PNP_DYNAMIC = "PnP Tuner (Dynamic)"
DEFAULT = "Default"
BLISS = "BLISS"
OPENTUNER = "OpenTuner"


@dataclass
class PowerConstrainedResult:
    """All records of one power-constrained tuning experiment."""

    system: str
    profile_name: str
    power_caps: Tuple[float, ...]
    applications: Tuple[str, ...]
    records: Dict[str, List[PerformanceRecord]] = field(default_factory=dict)

    # ------------------------------------------------------------ aggregates
    def per_application_normalized(self, power_cap: float) -> Dict[str, Dict[str, float]]:
        """Figure-style series: tuner → application → geomean normalised speedup."""
        series: Dict[str, Dict[str, float]] = {}
        for tuner, records in self.records.items():
            filtered = [r for r in records if abs(r.power_cap - power_cap) < 1e-9]
            series[tuner] = evaluation.geomean_by_application(filtered, "normalized_speedup")
        return series

    def geomean_speedups(self, tuner: str) -> Dict[float, float]:
        """Geometric-mean speedup over the default, per power cap."""
        out: Dict[float, float] = {}
        for cap in self.power_caps:
            records = [r for r in self.records[tuner] if abs(r.power_cap - cap) < 1e-9]
            out[cap] = geometric_mean([r.speedup for r in records])
        return out

    def fraction_within_oracle(self, tuner: str, threshold: float = 0.95) -> float:
        return evaluation.fraction_within_oracle(self.records[tuner], threshold)

    def fraction_better_than(self, tuner_a: str, tuner_b: str) -> float:
        return evaluation.fraction_better_than(self.records[tuner_a], self.records[tuner_b])

    def summary(self) -> Dict[str, object]:
        """Headline numbers corresponding to the prose of Section IV-B."""
        out: Dict[str, object] = {
            "system": self.system,
            "profile": self.profile_name,
        }
        for tuner in self.records:
            speedups = self.geomean_speedups(tuner)
            for cap, value in speedups.items():
                out[f"{tuner} geomean speedup @ {cap:.0f}W"] = round(value, 3)
            out[f"{tuner} fraction >=0.95x oracle"] = round(self.fraction_within_oracle(tuner), 3)
        if PNP_STATIC in self.records and BLISS in self.records:
            out["PnP(static) better-or-equal vs BLISS"] = round(
                self.fraction_better_than(PNP_STATIC, BLISS), 3
            )
        if PNP_STATIC in self.records and OPENTUNER in self.records:
            out["PnP(static) better-or-equal vs OpenTuner"] = round(
                self.fraction_better_than(PNP_STATIC, OPENTUNER), 3
            )
        return out

    # -------------------------------------------------------------- display
    def format_figure(self, power_cap: float) -> str:
        """Text rendering of one panel of Fig. 2/3 (one power cap)."""
        series = self.per_application_normalized(power_cap)
        return format_per_application_series(
            series,
            applications=list(self.applications),
            title=(
                f"Normalized speedups at {power_cap:.0f}W on {self.system} "
                "(1.0 = oracle / exhaustive search)"
            ),
        )

    def format_summary(self) -> str:
        return format_summary(self.summary(), title=f"Power-constrained tuning on {self.system}")


def run_power_constrained(
    system: str,
    profile: Optional[ExperimentProfile] = None,
) -> PowerConstrainedResult:
    """Run the full power-constrained tuning experiment for one system."""
    profile = profile if profile is not None else fast_profile()
    builder = experiment_builder(system, profile)
    database = builder.database
    space = builder.search_space
    regions = builder.regions()
    region_ids = [r.region_id for r in regions]
    caps = space.power_caps
    applications = tuple(suite_subset(profile).keys())

    result = PowerConstrainedResult(
        system=system,
        profile_name=profile.name,
        power_caps=caps,
        applications=applications,
    )

    # Default configuration.
    default_selection = default_performance_selections(database, region_ids, caps)
    result.records[DEFAULT] = evaluation.evaluate_power_constrained(database, default_selection)

    # PnP tuner, static features.
    _LOG.info("training PnP (static) on %s", system)
    static_samples = builder.performance_samples(include_counters=False)
    static_selection = pnp_cross_validated_selections(
        builder, static_samples, profile, TuningScenario.PERFORMANCE,
        include_counters=False, optimizer="adamw",
    )
    result.records[PNP_STATIC] = evaluation.evaluate_power_constrained(database, static_selection)

    # PnP tuner, static + performance counters ("dynamic" variant).
    if profile.include_dynamic_variant:
        _LOG.info("training PnP (dynamic) on %s", system)
        dynamic_samples = builder.performance_samples(include_counters=True)
        dynamic_selection = pnp_cross_validated_selections(
            builder, dynamic_samples, profile, TuningScenario.PERFORMANCE,
            include_counters=True, optimizer="adamw",
        )
        result.records[PNP_DYNAMIC] = evaluation.evaluate_power_constrained(
            database, dynamic_selection
        )

    # Execution-based baselines.
    if profile.include_baselines:
        _LOG.info("running BLISS and OpenTuner baselines on %s", system)
        bliss = BlissTuner(budget=profile.bliss_budget, seed=profile.seed)
        result.records[BLISS] = evaluation.evaluate_power_constrained(
            database, baseline_performance_selections(database, region_ids, caps, bliss)
        )
        opentuner = OpenTunerLike(budget=profile.opentuner_budget, seed=profile.seed)
        result.records[OPENTUNER] = evaluation.evaluate_power_constrained(
            database, baseline_performance_selections(database, region_ids, caps, opentuner)
        )

    return result
