"""Plain-text reporting helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_per_application_series", "format_summary"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width text table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows)) if text_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_per_application_series(
    series: Mapping[str, Mapping[str, float]],
    applications: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render per-application series (one column per tuner), figure style.

    ``series`` maps tuner name → {application: value}.
    """
    headers = ["application"] + list(series.keys())
    rows = []
    for app in applications:
        rows.append([app] + [series[tuner].get(app, float("nan")) for tuner in series])
    return format_table(headers, rows, title=title)


def format_summary(summary: Mapping[str, object], title: Optional[str] = None) -> str:
    """Render a flat key/value summary."""
    rows = [[key, value] for key, value in summary.items()]
    return format_table(["metric", "value"], rows, title=title)
