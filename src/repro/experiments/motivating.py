"""The motivating example of Section I.

The paper opens with the ``ApplyAccelerationBoundaryConditionsForNodes``
kernel of LULESH on the Haswell node: exhaustive search finds configurations
with large speedups over the OpenMP default at every power cap (7.54× at
40 W down to 1.67× at TDP), the most energy-efficient execution sits at a
*different* cap (60 W) with a greenup of 3.89× but a slight slowdown, and
minimising EDP lands at yet another configuration — demonstrating that time,
energy and EDP optimisation all require different tuning decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.benchsuite.proxyapps import LULESH_MOTIVATING_REGION
from repro.core.measurements import MeasurementDatabase, get_measurement_database
from repro.experiments.reporting import format_table
from repro.openmp.config import OpenMPConfig

__all__ = ["MotivatingExampleResult", "run_motivating_example"]


@dataclass(frozen=True)
class MotivatingExampleResult:
    """Exhaustive-search findings for the motivating kernel."""

    system: str
    region_id: str
    #: power cap → (best config, speedup over default at the same cap)
    best_speedups: Dict[float, Tuple[OpenMPConfig, float]]
    #: most energy-efficient point across the space
    best_energy_cap: float
    best_energy_config: OpenMPConfig
    best_energy_greenup: float
    best_energy_speedup: float
    #: EDP-optimal point across the space
    best_edp_cap: float
    best_edp_config: OpenMPConfig
    best_edp_speedup: float
    best_edp_greenup: float

    def format(self) -> str:
        rows = [
            [f"{cap:.0f}W", config.label(), speedup]
            for cap, (config, speedup) in sorted(self.best_speedups.items())
        ]
        table = format_table(
            ["power cap", "best configuration", "speedup vs default"],
            rows,
            title=f"Motivating example: {self.region_id} on {self.system}",
        )
        extra = format_table(
            ["objective", "power cap", "configuration", "speedup", "greenup"],
            [
                [
                    "min energy",
                    f"{self.best_energy_cap:.0f}W",
                    self.best_energy_config.label(),
                    self.best_energy_speedup,
                    self.best_energy_greenup,
                ],
                [
                    "min EDP",
                    f"{self.best_edp_cap:.0f}W",
                    self.best_edp_config.label(),
                    self.best_edp_speedup,
                    self.best_edp_greenup,
                ],
            ],
        )
        return table + "\n\n" + extra


def run_motivating_example(
    system: str = "haswell",
    region_id: str = LULESH_MOTIVATING_REGION,
    database: Optional[MeasurementDatabase] = None,
    seed: int = 0,
) -> MotivatingExampleResult:
    """Exhaustively explore the motivating kernel's configuration space."""
    database = database if database is not None else get_measurement_database(system, seed=seed)
    space = database.search_space
    tdp = space.tdp_watts
    default_at_tdp = database.default_result(region_id, tdp)

    best_speedups: Dict[float, Tuple[OpenMPConfig, float]] = {}
    for cap in space.power_caps:
        config, result = database.best_by_time(region_id, cap)
        default = database.default_result(region_id, cap)
        best_speedups[cap] = (config, default.time_s / result.time_s)

    energy_cap, energy_config, energy_result = database.best_by_energy(region_id)
    edp_cap, edp_config, edp_result = database.best_by_edp(region_id)

    return MotivatingExampleResult(
        system=system,
        region_id=region_id,
        best_speedups=best_speedups,
        best_energy_cap=energy_cap,
        best_energy_config=energy_config,
        best_energy_greenup=default_at_tdp.energy_joules / energy_result.energy_joules,
        best_energy_speedup=default_at_tdp.time_s / energy_result.time_s,
        best_edp_cap=edp_cap,
        best_edp_config=edp_config,
        best_edp_speedup=default_at_tdp.time_s / edp_result.time_s,
        best_edp_greenup=default_at_tdp.energy_joules / edp_result.energy_joules,
    )
