"""Ablation: do flow-aware code graphs actually help?

The paper argues that modelling OpenMP regions as flow-aware graphs captures
semantic and structural information that flat representations miss.  This
ablation quantifies that claim on the reproduction: it compares the PnP GNN
model against a plain MLP classifier over the 20 hand-crafted static graph
features of :mod:`repro.graphs.features` (the kind of feature vector earlier
ML auto-tuners used), under the same cross-validation protocol and label
space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import evaluation
from repro.core.dataset import DatasetBuilder, LabeledSample, TuningScenario
from repro.core.tuner import labels_to_performance_selections
from repro.experiments.common import experiment_builder, pnp_cross_validated_selections
from repro.experiments.profiles import ExperimentProfile, fast_profile
from repro.experiments.reporting import format_summary
from repro.graphs.features import static_feature_vector
from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import AdamW
from repro.nn.tensor import Tensor, no_grad
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

__all__ = ["AblationResult", "run_feature_ablation", "FlatFeatureModel"]

_LOG = get_logger("experiments.ablation")


class FlatFeatureModel(Module):
    """Three-layer MLP over hand-crafted static features (the ablation baseline)."""

    def __init__(self, input_dim: int, num_classes: int, hidden_dim: int = 64, seed: int = 0) -> None:
        super().__init__()
        rng = new_rng(seed, "ablation/mlp")
        self.fc1 = Linear(input_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, hidden_dim, rng=rng)
        self.fc3 = Linear(hidden_dim, num_classes, rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        x = F.relu(self.fc1(features))
        x = F.relu(self.fc2(x))
        return self.fc3(x)

    def predict(self, features: np.ndarray) -> np.ndarray:
        self.eval()
        with no_grad():
            logits = self.forward(Tensor(features))
        return np.argmax(logits.data, axis=1)


@dataclass(frozen=True)
class AblationResult:
    """Comparison of the GNN model against the flat-feature MLP."""

    system: str
    profile_name: str
    gnn_geomean_normalized: float
    flat_geomean_normalized: float
    gnn_fraction_within_95: float
    flat_fraction_within_95: float

    @property
    def graph_advantage(self) -> float:
        """Ratio of geomean normalised speedups (GNN / flat features)."""
        return self.gnn_geomean_normalized / self.flat_geomean_normalized

    def summary(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "profile": self.profile_name,
            "GNN geomean normalized speedup": round(self.gnn_geomean_normalized, 3),
            "Flat-feature MLP geomean normalized speedup": round(self.flat_geomean_normalized, 3),
            "GNN cases >=0.95x oracle": round(self.gnn_fraction_within_95, 3),
            "Flat-feature MLP cases >=0.95x oracle": round(self.flat_fraction_within_95, 3),
            "graph advantage (ratio)": round(self.graph_advantage, 3),
        }

    def format_summary(self) -> str:
        return format_summary(self.summary(), title=f"Feature ablation on {self.system}")


def _flat_feature_matrix(builder: DatasetBuilder, samples: Sequence[LabeledSample]) -> np.ndarray:
    graphs = builder.region_graphs()
    rows = []
    for sample in samples:
        graph_features = static_feature_vector(graphs[sample.region_id])
        aux = sample.sample.aux_features if sample.sample.aux_features is not None else np.zeros(0)
        rows.append(np.concatenate([graph_features, aux]))
    matrix = np.stack(rows)
    # Log-compress the count features and normalise columns to unit scale.
    matrix = np.log1p(np.maximum(matrix, 0.0))
    scale = np.maximum(np.abs(matrix).max(axis=0), 1e-9)
    return matrix / scale


def _cross_validate_flat(
    builder: DatasetBuilder,
    samples: List[LabeledSample],
    profile: ExperimentProfile,
    num_classes: int,
) -> Dict[Tuple[str, Optional[float]], int]:
    features = _flat_feature_matrix(builder, samples)
    labels = np.array([s.label for s in samples], dtype=np.int64)
    predictions: Dict[Tuple[str, Optional[float]], int] = {}
    loss_fn = CrossEntropyLoss()

    for fold_name, train_fold, validation_fold in profile.splitter().split(samples):
        train_ids = {id(s) for s in train_fold}
        validation_ids = {id(s) for s in validation_fold}
        train_idx = [i for i, s in enumerate(samples) if id(s) in train_ids]
        val_idx = [i for i, s in enumerate(samples) if id(s) in validation_ids]
        model = FlatFeatureModel(features.shape[1], num_classes, seed=profile.seed)
        optimizer = AdamW(model.parameters(), lr=profile.learning_rate, amsgrad=True)
        rng = new_rng(profile.seed, f"ablation/{fold_name}")
        x_train, y_train = features[train_idx], labels[train_idx]
        epochs = max(profile.epochs * 5, 20)  # the MLP is cheap; give it ample epochs
        for _ in range(epochs):
            order = rng.permutation(len(train_idx))
            for start in range(0, len(order), profile.batch_size):
                batch = order[start : start + profile.batch_size]
                optimizer.zero_grad()
                logits = model(Tensor(x_train[batch]))
                loss = loss_fn(logits, y_train[batch])
                loss.backward()
                optimizer.step()
        predicted = model.predict(features[val_idx])
        for i, label in zip(val_idx, predicted):
            predictions[(samples[i].region_id, samples[i].power_cap)] = int(label)
    return predictions


def run_feature_ablation(
    system: str = "haswell", profile: Optional[ExperimentProfile] = None
) -> AblationResult:
    """Compare GNN-over-graphs against an MLP-over-flat-features tuner."""
    profile = profile if profile is not None else fast_profile()
    builder = experiment_builder(system, profile)
    database = builder.database
    space = builder.search_space

    samples = builder.performance_samples(include_counters=False)

    _LOG.info("ablation: training GNN variant")
    gnn_selection = pnp_cross_validated_selections(
        builder, samples, profile, TuningScenario.PERFORMANCE,
        include_counters=False, optimizer="adamw",
    )
    gnn_records = evaluation.evaluate_power_constrained(database, gnn_selection)

    _LOG.info("ablation: training flat-feature MLP variant")
    flat_predictions = _cross_validate_flat(builder, samples, profile, space.num_omp_configurations)
    flat_selection = labels_to_performance_selections(flat_predictions, space)
    flat_records = evaluation.evaluate_power_constrained(database, flat_selection)

    return AblationResult(
        system=system,
        profile_name=profile.name,
        gnn_geomean_normalized=evaluation.overall_geomean(gnn_records, "normalized_speedup"),
        flat_geomean_normalized=evaluation.overall_geomean(flat_records, "normalized_speedup"),
        gnn_fraction_within_95=evaluation.fraction_within_oracle(gnn_records, 0.95),
        flat_fraction_within_95=evaluation.fraction_within_oracle(flat_records, 0.95),
    )
