"""OpenMP runtime configurations (the tunable parameters of Table I)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ScheduleKind", "OpenMPConfig", "default_config"]


class ScheduleKind(enum.Enum):
    """OpenMP loop scheduling policies considered by the search space."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"

    @classmethod
    def from_string(cls, text: str) -> "ScheduleKind":
        try:
            return cls(text.strip().lower())
        except ValueError as exc:
            raise ValueError(f"unknown schedule {text!r}") from exc


@dataclass(frozen=True, order=True)
class OpenMPConfig:
    """One OpenMP runtime configuration.

    Attributes
    ----------
    num_threads:
        Value of ``OMP_NUM_THREADS``.
    schedule:
        Loop scheduling policy (``OMP_SCHEDULE`` kind).
    chunk_size:
        Scheduling chunk size; ``None`` means the compiler/runtime default
        (static: iterations split evenly; dynamic/guided: 1).
    """

    num_threads: int
    schedule: ScheduleKind
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive (or None for default)")

    # ------------------------------------------------------------- helpers
    def effective_chunk(self, iterations: int) -> int:
        """The chunk size actually used for ``iterations`` loop iterations."""
        if self.chunk_size is not None:
            return min(self.chunk_size, max(iterations, 1))
        if self.schedule == ScheduleKind.STATIC:
            return max(1, (iterations + self.num_threads - 1) // self.num_threads)
        return 1

    def as_tuple(self) -> Tuple[int, str, Optional[int]]:
        """Hashable plain-value form (threads, schedule, chunk)."""
        return (self.num_threads, self.schedule.value, self.chunk_size)

    def label(self) -> str:
        """Short human-readable identifier, e.g. ``"t32-dynamic-c64"``."""
        chunk = "cdef" if self.chunk_size is None else f"c{self.chunk_size}"
        return f"t{self.num_threads}-{self.schedule.value}-{chunk}"

    @classmethod
    def from_tuple(cls, value: Tuple[int, str, Optional[int]]) -> "OpenMPConfig":
        threads, schedule, chunk = value
        return cls(int(threads), ScheduleKind.from_string(schedule), chunk if chunk is None else int(chunk))


def default_config(hardware_threads: int) -> OpenMPConfig:
    """The OpenMP default the paper compares against.

    "All threads, static scheduling, and compiler-defined chunk sizes": every
    hardware thread, static schedule, default (``None``) chunk.
    """
    if hardware_threads <= 0:
        raise ValueError("hardware_threads must be positive")
    return OpenMPConfig(num_threads=hardware_threads, schedule=ScheduleKind.STATIC, chunk_size=None)
