"""Execution-time and energy model for OpenMP regions under power caps.

The model combines four effects, which together create the trade-offs the
PnP tuner learns to exploit:

1. **DVFS under a power cap** — the more cores are active, the lower the
   sustainable frequency (``repro.hw.dvfs``); memory-stalled cores draw less
   dynamic power, letting memory-bound codes clock higher under the same cap.
2. **Roofline** — a region's kernel time is the smooth maximum of its compute
   time (ops / (cores × IPC × frequency)) and its memory time (DRAM traffic /
   saturating bandwidth), so memory-bound kernels stop benefiting from extra
   threads long before the core count runs out.
3. **Scheduling** — load imbalance (static scheduling of non-uniform loops),
   dispatch overhead (dynamic scheduling with small chunks), and atomic /
   reduction contention all come from :mod:`repro.openmp.scheduling` and the
   region's characteristics.
4. **Fork/join overhead** — every work-shared loop pays a barrier cost that
   grows with the thread count and with the inverse of the clock; this is
   what makes tiny regions (the paper's motivating LULESH kernel) prefer very
   few threads at deep power caps.

Energy is power × time accumulated over the serial and parallel phases, and
is also pushed into the machine's RAPL counters so the Variorum/PAPI layers
observe consistent values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.hw.machine import Machine
from repro.hw.papi import PapiCounters
from repro.openmp.config import OpenMPConfig, ScheduleKind
from repro.openmp.region import RegionCharacteristics
from repro.openmp.scheduling import simulate_schedule
from repro.utils.rng import new_rng

__all__ = ["ExecutionResult", "ExecutionEngine"]

_GHZ = 1.0e9
#: Cost of one dynamic/guided chunk dispatch at the base frequency (seconds).
_DISPATCH_COST_S = 0.25e-6
#: Fraction of the dispatch cost that is serialised on the shared loop counter.
_DISPATCH_SERIAL_FRACTION = 0.2
#: Cost of one contended atomic update (seconds, at base frequency).
_ATOMIC_COST_S = 18.0e-9
#: Exponent of the smooth-max roofline combination.
_ROOFLINE_SMOOTHNESS = 4.0


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one region with one configuration."""

    region_id: str
    config: OpenMPConfig
    power_cap_watts: float
    time_s: float
    energy_joules: float
    avg_power_watts: float
    frequency_ghz: float
    imbalance_factor: float

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s), the paper's fused metric."""
        return self.energy_joules * self.time_s

    def speedup_over(self, baseline: "ExecutionResult") -> float:
        """Speedup of this execution relative to ``baseline``."""
        return baseline.time_s / self.time_s

    def greenup_over(self, baseline: "ExecutionResult") -> float:
        """Energy reduction factor relative to ``baseline`` (>1 is better)."""
        return baseline.energy_joules / self.energy_joules


class ExecutionEngine:
    """Simulates OpenMP region executions on a :class:`~repro.hw.machine.Machine`."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        # Schedule outcomes depend only on (region, threads, schedule, chunk),
        # not on the power cap or trial, so they are memoised across the
        # 508-point sweeps the tuners and the dataset builder perform.
        self._schedule_cache: dict = {}

    # ------------------------------------------------------------------ API
    def run(
        self,
        region: RegionCharacteristics,
        config: OpenMPConfig,
        power_cap_watts: Optional[float] = None,
        trial: int = 0,
        account_rapl: bool = True,
    ) -> ExecutionResult:
        """Execute ``region`` once under ``config`` and an optional power cap.

        Parameters
        ----------
        region, config:
            What to run and how.
        power_cap_watts:
            Package power cap; ``None`` uses the machine's currently
            programmed cap (TDP unless changed through Variorum).
        trial:
            Trial index — changes only the measurement noise, so repeated
            trials of the same point scatter realistically.
        account_rapl:
            Whether to push the consumed energy into the machine's RAPL
            counters (disable for bulk sweeps that don't need the counters).
        """
        spec = self.machine.processor
        if power_cap_watts is None:
            cap = self.machine.power_cap_watts
        else:
            cap = min(max(power_cap_watts, spec.min_power_watts), spec.tdp_watts)

        threads = min(config.num_threads, spec.hardware_threads)
        cores_used = min(threads, spec.cores)
        uses_smt = threads > spec.cores
        effective_config = OpenMPConfig(threads, config.schedule, config.chunk_size)

        # ---------------------------------------------------- serial phase
        serial_time, serial_power = self._serial_phase(region, cap)

        # -------------------------------------------------- parallel phase
        parallel_time, parallel_power, frequency, imbalance = self._parallel_phase(
            region, effective_config, cap, cores_used, threads, uses_smt
        )

        time_s = serial_time + parallel_time
        energy = serial_time * serial_power + parallel_time * parallel_power

        # ----------------------------------------------- measurement noise
        rng = new_rng(
            self.machine.seed,
            f"exec/{region.region_id}/{effective_config.label()}/{cap:.0f}/{trial}",
        )
        sigma = self.machine.noise_fraction
        if sigma > 0:
            time_noise = float(rng.lognormal(0.0, sigma))
            energy_noise = float(rng.lognormal(0.0, sigma * 0.6)) * time_noise
            time_s *= time_noise
            energy *= energy_noise

        avg_power = energy / time_s if time_s > 0 else 0.0
        if account_rapl:
            self.machine.rapl.account_energy(energy, time_s)

        return ExecutionResult(
            region_id=region.region_id,
            config=config,
            power_cap_watts=cap,
            time_s=time_s,
            energy_joules=energy,
            avg_power_watts=avg_power,
            frequency_ghz=frequency,
            imbalance_factor=imbalance,
        )

    def profile_counters(self, region: RegionCharacteristics, config: OpenMPConfig) -> PapiCounters:
        """Profile the region's PAPI counters under ``config`` (one extra run)."""
        return self.machine.papi.profile(region, num_threads=config.num_threads)

    # ------------------------------------------------------------ internals
    def _serial_phase(self, region: RegionCharacteristics, cap: float) -> tuple:
        serial_ops = region.serial_ops()
        if serial_ops <= 0:
            return 0.0, 0.0
        spec = self.machine.processor
        solution = self.machine.dvfs.solve(cap, active_cores=1, utilisation=0.9)
        rate = spec.ipc_peak * 0.5 * solution.effective_frequency_ghz * _GHZ
        time_s = serial_ops / rate
        power = spec.max_power(1, solution.frequency_ghz, 0.9 * solution.throttle_factor)
        return time_s, min(power, cap)

    def _parallel_phase(
        self,
        region: RegionCharacteristics,
        config: OpenMPConfig,
        cap: float,
        cores_used: int,
        threads: int,
        uses_smt: bool,
    ) -> tuple:
        spec = self.machine.processor
        cache_key = (region.region_id, config.as_tuple())
        schedule = self._schedule_cache.get(cache_key)
        if schedule is None:
            schedule = simulate_schedule(region, config, seed=self.machine.seed)
            self._schedule_cache[cache_key] = schedule

        parallel_ops = region.parallel_ops()
        dram_bytes = (
            region.memory_bytes_per_iteration
            * region.iterations
            * region.dram_traffic_fraction(spec.l3_mib * 1024.0 * 1024.0)
        )

        smt_factor = spec.smt_speedup if uses_smt else 1.0
        per_node_ops_per_cycle = cores_used * spec.ipc_peak * smt_factor

        # Fixed-point iteration: utilisation determines the frequency, which
        # determines the compute/memory split, which determines utilisation.
        utilisation = 0.8
        frequency = spec.base_freq_ghz
        throttle = 1.0
        compute_time = memory_time = 0.0
        for _ in range(3):
            solution = self.machine.dvfs.solve(cap, cores_used, utilisation)
            frequency, throttle = solution.frequency_ghz, solution.throttle_factor
            effective_hz = solution.effective_frequency_ghz * _GHZ
            compute_time = (
                parallel_ops / (per_node_ops_per_cycle * effective_hz) * schedule.imbalance_factor
            )
            bandwidth = spec.bandwidth_gbs(cores_used, frequency) * 1.0e9
            memory_time = dram_bytes / bandwidth
            kernel_time = self._smooth_max(compute_time, memory_time)
            utilisation = 0.25 + 0.75 * (compute_time / kernel_time if kernel_time > 0 else 1.0)

        kernel_time = self._smooth_max(compute_time, memory_time)

        # Overheads (all slow down with the clock).
        clock_scale = spec.base_freq_ghz / max(frequency * throttle, 1e-6)
        fork_join = (
            (spec.fork_join_base_us + spec.fork_join_per_thread_us * threads)
            * 1.0e-6
            * clock_scale
            * region.parallel_loop_count
        )
        dispatch = 0.0
        if config.schedule in (ScheduleKind.DYNAMIC, ScheduleKind.GUIDED):
            per_dispatch = _DISPATCH_COST_S * clock_scale
            dispatch = schedule.num_dispatches * per_dispatch * (
                _DISPATCH_SERIAL_FRACTION + (1.0 - _DISPATCH_SERIAL_FRACTION) / threads
            )
        atomic_total = region.atomics_per_iteration * region.iterations
        atomics = 0.0
        if atomic_total > 0:
            contention = 1.0 + 0.05 * (threads - 1)
            atomics = atomic_total * _ATOMIC_COST_S * clock_scale * contention / threads
            # Atomic updates to shared data serialise at high thread counts.
            atomics = max(atomics, atomic_total * _ATOMIC_COST_S * clock_scale * 0.15)

        parallel_time = kernel_time + fork_join + dispatch + atomics

        busy_fraction = kernel_time / parallel_time if parallel_time > 0 else 1.0
        effective_util = utilisation * busy_fraction * throttle + 0.15 * (1.0 - busy_fraction)
        power = spec.max_power(cores_used, frequency, effective_util)
        power = min(power, cap)

        return parallel_time, power, frequency, schedule.imbalance_factor

    @staticmethod
    def _smooth_max(a: float, b: float) -> float:
        """Smooth maximum used for the roofline combination."""
        if a <= 0.0:
            return b
        if b <= 0.0:
            return a
        k = _ROOFLINE_SMOOTHNESS
        return float((a**k + b**k) ** (1.0 / k))
