"""OpenMP runtime configuration and execution simulation.

This package models what happens when an OpenMP parallel region runs with a
given runtime configuration (thread count, scheduling policy, chunk size) on
a power-capped machine:

* :mod:`repro.openmp.config` — the tunable runtime configuration (the
  parameters of Table I) and the OpenMP defaults;
* :mod:`repro.openmp.region` — the characteristics of a parallel region
  (work, memory footprint, imbalance, synchronisation) from which both the
  execution simulator and the PAPI estimator derive their numbers;
* :mod:`repro.openmp.scheduling` — discrete simulation of static/dynamic/
  guided loop scheduling, producing per-thread load and dispatch overhead;
* :mod:`repro.openmp.execution` — the roofline + DVFS execution model that
  turns (region, configuration, power cap) into time, energy and power.
"""

from repro.openmp.config import OpenMPConfig, ScheduleKind, default_config
from repro.openmp.region import RegionCharacteristics
from repro.openmp.scheduling import ScheduleOutcome, simulate_schedule
from repro.openmp.execution import ExecutionEngine, ExecutionResult

__all__ = [
    "OpenMPConfig",
    "ScheduleKind",
    "default_config",
    "RegionCharacteristics",
    "ScheduleOutcome",
    "simulate_schedule",
    "ExecutionEngine",
    "ExecutionResult",
]
