"""Discrete simulation of OpenMP loop scheduling.

Given a region's per-iteration cost distribution and a runtime configuration,
this module estimates (i) the load-imbalance factor — how much longer the
slowest thread works than the average — and (ii) the number of chunk
dispatches, which the execution model turns into scheduling overhead.

Static scheduling assigns chunks round-robin at compile time (zero dispatch
cost, but imbalance when iteration costs vary systematically).  Dynamic
scheduling assigns each chunk to the first idle thread (good balance, one
dispatch per chunk).  Guided scheduling starts with large chunks and shrinks
them geometrically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.openmp.config import OpenMPConfig, ScheduleKind
from repro.openmp.region import ImbalancePattern, RegionCharacteristics
from repro.utils.rng import new_rng

__all__ = ["ScheduleOutcome", "simulate_schedule"]

#: Upper bound on the number of chunks simulated explicitly; beyond this the
#: makespan is computed on aggregated super-chunks (the dispatch count still
#: reflects the true number of chunks).
_MAX_SIMULATED_CHUNKS = 1024


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of simulating one (region, configuration) schedule.

    Attributes
    ----------
    imbalance_factor:
        Makespan divided by the perfectly balanced per-thread work (≥ 1).
    num_dispatches:
        Number of chunk acquisitions performed by the runtime (dynamic and
        guided pay a dispatch cost per acquisition; static pays none).
    num_chunks:
        Total number of chunks the iteration space was divided into.
    chunk_size:
        The (initial) chunk size used.
    """

    imbalance_factor: float
    num_dispatches: int
    num_chunks: int
    chunk_size: int


def _iteration_costs(region: RegionCharacteristics, sample_size: int, seed: int) -> np.ndarray:
    """Relative per-iteration costs (mean 1.0) over a representative sample."""
    if region.iteration_cost_cv <= 0 or region.imbalance_pattern == ImbalancePattern.UNIFORM:
        return np.ones(sample_size)

    cv = region.iteration_cost_cv
    if region.imbalance_pattern == ImbalancePattern.LINEAR:
        # Cost grows linearly across the iteration space with the requested
        # coefficient of variation; a uniform ramp on [a, b] has
        # cv = (b - a) / (sqrt(3) (a + b)).
        spread = min(cv * np.sqrt(3.0), 0.999)
        ramp = np.linspace(1.0 - spread, 1.0 + spread, sample_size)
        return np.maximum(ramp, 1e-3)

    rng = new_rng(seed, f"schedule-costs/{region.region_id}")
    sigma = float(np.sqrt(np.log(1.0 + cv * cv)))
    costs = rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma, size=sample_size)
    return np.maximum(costs, 1e-3)


def _chunk_layout(
    schedule: ScheduleKind, iterations: int, chunk: int, threads: int
) -> Tuple[int, np.ndarray]:
    """Number of chunks and the (possibly aggregated) chunk sizes to simulate.

    For static and dynamic schedules the chunk count is ``ceil(iterations /
    chunk)``; when that exceeds :data:`_MAX_SIMULATED_CHUNKS` the makespan
    simulation runs on evenly aggregated super-chunks while the returned
    chunk count still reflects the true number of runtime dispatches.  Guided
    schedules produce geometrically shrinking chunks and are always small
    enough to enumerate directly.
    """
    if schedule in (ScheduleKind.STATIC, ScheduleKind.DYNAMIC):
        num_chunks = (iterations + chunk - 1) // chunk
        if num_chunks <= _MAX_SIMULATED_CHUNKS:
            full, rest = divmod(iterations, chunk)
            sizes = np.full(full + (1 if rest else 0), chunk, dtype=np.int64)
            if rest:
                sizes[-1] = rest
            return num_chunks, sizes
        sim_count = _MAX_SIMULATED_CHUNKS
        base, remainder = divmod(iterations, sim_count)
        sizes = np.full(sim_count, base, dtype=np.int64)
        sizes[:remainder] += 1
        return num_chunks, sizes

    # Guided: each chunk is remaining/threads, never below the minimum chunk.
    sizes_list = []
    remaining = iterations
    while remaining > 0:
        size = max(chunk, int(np.ceil(remaining / threads)))
        size = min(size, remaining)
        sizes_list.append(size)
        remaining -= size
    sizes = np.array(sizes_list, dtype=np.int64)
    return len(sizes_list), sizes


def _chunk_costs(sizes: np.ndarray, costs: np.ndarray, iterations: int) -> np.ndarray:
    """Total relative cost of each chunk given the per-iteration cost sample."""
    # Map chunk boundaries onto the (possibly smaller) cost sample.
    boundaries = np.concatenate([[0], np.cumsum(sizes)]).astype(np.float64)
    scaled = boundaries / iterations * len(costs)
    cumulative = np.concatenate([[0.0], np.cumsum(costs)])
    positions = np.clip(scaled, 0, len(costs))
    # Linear interpolation of the cumulative cost at fractional positions.
    interp = np.interp(positions, np.arange(len(cumulative)), cumulative)
    chunk_cost = np.diff(interp)
    # Rescale so total relative cost equals the number of iterations.
    total = chunk_cost.sum()
    if total <= 0:
        return np.asarray(sizes, dtype=np.float64)
    return chunk_cost * (iterations / total)


def simulate_schedule(
    region: RegionCharacteristics, config: OpenMPConfig, seed: int = 0
) -> ScheduleOutcome:
    """Simulate how ``config`` schedules ``region``'s parallel loop.

    The returned imbalance factor is relative to a perfectly balanced
    distribution of the same total work over ``config.num_threads`` threads.
    """
    threads = max(1, config.num_threads)
    iterations = region.iterations
    chunk = config.effective_chunk(iterations)
    num_chunks, sim_sizes = _chunk_layout(config.schedule, iterations, chunk, threads)

    sample_size = int(min(iterations, 4096))
    costs = _iteration_costs(region, sample_size, seed)
    chunk_cost = _chunk_costs(sim_sizes, costs, iterations)

    loads = np.zeros(threads)
    if config.schedule == ScheduleKind.STATIC:
        # Chunks are assigned round-robin in issue order.
        for index, cost in enumerate(chunk_cost):
            loads[index % threads] += cost
        dispatches = 0
    else:
        # Dynamic and guided: next chunk goes to the earliest-finishing thread.
        for cost in chunk_cost:
            loads[int(np.argmin(loads))] += cost
        dispatches = num_chunks

    total = loads.sum()
    if total <= 0:
        imbalance = 1.0
    else:
        balanced = total / threads
        imbalance = float(loads.max() / balanced)

    return ScheduleOutcome(
        imbalance_factor=max(imbalance, 1.0),
        num_dispatches=dispatches,
        num_chunks=num_chunks,
        chunk_size=chunk,
    )
