"""Characteristics of an OpenMP parallel region.

A :class:`RegionCharacteristics` object is the single source of truth about a
parallel region's runtime behaviour: the execution simulator, the PAPI
estimator and the IR code generator all derive their outputs from it, which
keeps the static code structure (what the GNN sees) consistent with the
dynamic behaviour (what determines the best configuration).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["ImbalancePattern", "RegionCharacteristics"]


class ImbalancePattern(enum.Enum):
    """How per-iteration cost varies across the iteration space."""

    #: All iterations cost the same (dense rectangular loop nests).
    UNIFORM = "uniform"
    #: Cost varies randomly per iteration (e.g. Monte-Carlo lookups).
    RANDOM = "random"
    #: Cost grows (or shrinks) linearly across the space (triangular loops).
    LINEAR = "linear"


@dataclass(frozen=True)
class RegionCharacteristics:
    """Workload description of one OpenMP parallel region.

    Attributes
    ----------
    region_id:
        Globally unique identifier, conventionally ``"<app>/<kernel>[.k]"``.
    application:
        Application (benchmark) the region belongs to.
    iterations:
        Trip count of the parallel loop (the work-sharing dimension).
    flops_per_iteration / int_ops_per_iteration:
        Floating-point and integer operations per iteration.
    memory_bytes_per_iteration:
        Bytes of array data touched per iteration (before cache filtering).
    working_set_bytes:
        Total data footprint of the region.
    reuse_factor:
        Temporal locality in (0, 1]: 1 means the footprint is re-used heavily
        (blocked dense kernels), values near 0 mean streaming access.
    serial_fraction:
        Fraction of the region's single-thread work that cannot be
        parallelised (sequential preamble, reductions folded serially, ...).
    parallel_loop_count:
        Number of work-shared loops inside the region (each incurs one
        fork/join + barrier in the simulator).
    nest_depth:
        Loop-nest depth of the hottest loop (drives IR generation).
    iteration_cost_cv:
        Coefficient of variation of per-iteration cost.
    imbalance_pattern:
        Shape of the per-iteration cost variation.
    atomics_per_iteration:
        Atomic updates (OpenMP ``atomic``/reduction traffic) per iteration.
    branches_per_iteration:
        Conditional branches per iteration (drives the IR and PAPI model).
    branch_misprediction_rate:
        Fraction of those branches that mispredict.
    condition_density:
        Fraction of the per-iteration work guarded by data-dependent
        conditionals (appears as extra control flow in the generated IR).
    calls_external_math:
        Whether the loop body calls libm-style functions (``exp``, ``sqrt``).
    """

    region_id: str
    application: str
    iterations: int
    flops_per_iteration: float
    int_ops_per_iteration: float
    memory_bytes_per_iteration: float
    working_set_bytes: float
    reuse_factor: float
    serial_fraction: float = 0.0
    parallel_loop_count: int = 1
    nest_depth: int = 1
    iteration_cost_cv: float = 0.0
    imbalance_pattern: ImbalancePattern = ImbalancePattern.UNIFORM
    atomics_per_iteration: float = 0.0
    branches_per_iteration: float = 1.0
    branch_misprediction_rate: float = 0.02
    condition_density: float = 0.0
    calls_external_math: bool = False

    def __post_init__(self) -> None:
        if not self.region_id or not self.application:
            raise ValueError("region_id and application must be non-empty")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.flops_per_iteration < 0 or self.int_ops_per_iteration < 0:
            raise ValueError("operation counts must be non-negative")
        if self.flops_per_iteration + self.int_ops_per_iteration <= 0:
            raise ValueError("a region must perform some work per iteration")
        if self.memory_bytes_per_iteration < 0 or self.working_set_bytes <= 0:
            raise ValueError("memory characteristics must be positive")
        if not 0.0 < self.reuse_factor <= 1.0:
            raise ValueError("reuse_factor must be in (0, 1]")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial_fraction must be in [0, 1)")
        if self.parallel_loop_count <= 0 or self.nest_depth <= 0:
            raise ValueError("parallel_loop_count and nest_depth must be positive")
        if self.iteration_cost_cv < 0:
            raise ValueError("iteration_cost_cv must be non-negative")
        if self.atomics_per_iteration < 0 or self.branches_per_iteration < 0:
            raise ValueError("atomics/branches per iteration must be non-negative")
        if not 0.0 <= self.branch_misprediction_rate <= 1.0:
            raise ValueError("branch_misprediction_rate must be in [0, 1]")
        if not 0.0 <= self.condition_density <= 1.0:
            raise ValueError("condition_density must be in [0, 1]")

    # ------------------------------------------------------------- derived
    def ops_per_iteration(self) -> float:
        """Equivalent double-precision operations per iteration.

        Integer/address arithmetic is cheaper than floating point on these
        cores; weight it at half a floating-point op.
        """
        return self.flops_per_iteration + 0.5 * self.int_ops_per_iteration

    def parallel_ops(self) -> float:
        """Total parallelisable work (equivalent flops)."""
        return self.ops_per_iteration() * self.iterations

    def serial_ops(self) -> float:
        """Work executed serially before/after the work-shared loops."""
        if self.serial_fraction == 0.0:
            return 0.0
        return self.parallel_ops() * self.serial_fraction / (1.0 - self.serial_fraction)

    def total_ops(self) -> float:
        return self.parallel_ops() + self.serial_ops()

    def arithmetic_intensity(self) -> float:
        """Flops per byte of (uncached) memory traffic."""
        bytes_per_iter = max(self.memory_bytes_per_iteration, 1e-9)
        return self.flops_per_iteration / bytes_per_iter

    def instruction_count(self) -> float:
        """Estimated dynamic instruction count (for PAPI_TOT_INS)."""
        per_iter = (
            self.flops_per_iteration
            + self.int_ops_per_iteration
            + self.memory_bytes_per_iteration / 8.0
            + self.branches_per_iteration
            + self.atomics_per_iteration
        )
        return (per_iter * self.iterations + self.serial_ops()) * 1.15

    def memory_access_count(self) -> float:
        """Estimated dynamic loads+stores (8-byte granularity)."""
        return self.memory_bytes_per_iteration / 8.0 * self.iterations

    def branch_count(self) -> float:
        """Estimated dynamic branch count."""
        return (self.branches_per_iteration + 1.0) * self.iterations

    def dram_traffic_fraction(self, l3_capacity_bytes: float) -> float:
        """Fraction of memory traffic that misses the last-level cache."""
        pressure = self.working_set_bytes / max(l3_capacity_bytes, 1.0)
        capacity_misses = pressure / (1.0 + pressure)
        streaming = (1.0 - self.reuse_factor) * min(1.0, pressure * 4.0)
        return float(min(1.0, max(capacity_misses, streaming, 0.02)))

    # -------------------------------------------------------------- utility
    def fingerprint(self) -> str:
        """Cheap, process-stable content hash of the region's characteristics.

        Two regions with the same id but different characteristics produce
        different fingerprints, which keys caches (e.g. the tuner's pooled-
        embedding LRU) on *content* instead of just the id.  The hash avoids
        Python's salted ``hash()`` so parent and worker processes — and
        serving replicas on other machines — agree on the value.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            payload = repr(dataclasses.astuple(self)).encode("utf-8")
            cached = hashlib.blake2s(payload, digest_size=8).hexdigest()
            # Frozen dataclass: memoise via object.__setattr__ (the field is
            # derived, so the value-semantics of eq/hash are unaffected).
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def with_iterations(self, iterations: int) -> "RegionCharacteristics":
        """Copy of this region with a different trip count (input scaling)."""
        return replace(self, iterations=iterations)

    def summary(self) -> Dict[str, float]:
        """Key derived quantities (used in reports and examples)."""
        return {
            "iterations": float(self.iterations),
            "parallel_ops": self.parallel_ops(),
            "arithmetic_intensity": self.arithmetic_intensity(),
            "working_set_mib": self.working_set_bytes / (1024.0 * 1024.0),
            "serial_fraction": self.serial_fraction,
            "iteration_cost_cv": self.iteration_cost_cv,
            "atomics_per_iteration": self.atomics_per_iteration,
        }
