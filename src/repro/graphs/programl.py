"""Lowering IR modules to flow-aware graphs (the PROGRAML construction).

For every function with a body:

* each instruction becomes an ``INSTRUCTION`` node whose token is
  ``"<opcode> <result-type>"``;
* control-flow edges connect consecutive instructions within a block and the
  block terminator to the first instruction of each successor block;
* every SSA value (instruction result, function argument, global) gets a
  ``VARIABLE`` node; data-flow edges run producer → variable → consumer, with
  the operand position recorded on the consumer edge;
* every literal gets a ``CONSTANT`` node (one per distinct literal per
  function) with constant → consumer data edges;
* ``call`` instructions get call-flow edges to the callee's entry instruction
  and back from the callee's returns; calls to external declarations point at
  a synthetic external-function node.

A synthetic root node (token ``"[external]"``) is connected by call edges to
every defined function's entry instruction, mirroring PROGRAML's program
root.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.flowgraph import EdgeRelation, FlowGraph, NodeKind
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalVariable, Value

__all__ = ["build_flow_graph", "build_region_graphs", "constant_token"]

_ROOT_TOKEN = "[external]"


def constant_token(constant: Constant) -> str:
    """Vocabulary token of a literal: type, plus a magnitude bucket for ints."""
    if constant.type.is_integer:
        magnitude = int(abs(int(constant.value)))
        bucket = magnitude.bit_length()  # ~log2, 0 for the value 0
        return f"{constant.type} ~2^{bucket}"
    return str(constant.type)


class _FunctionLowering:
    """Book-keeping for lowering one function into the shared graph."""

    def __init__(self, graph: FlowGraph, function: Function) -> None:
        self.graph = graph
        self.function = function
        self.instruction_nodes: Dict[int, int] = {}  # id(instruction) -> node index
        self.value_nodes: Dict[int, int] = {}  # id(value) -> variable node index
        self.constant_nodes: Dict[Tuple, int] = {}  # (type, value) -> node index
        self.entry_node: Optional[int] = None
        self.return_nodes: List[int] = []

    # -------------------------------------------------------------- helpers
    def _instruction_token(self, inst: Instruction) -> str:
        type_text = "void" if inst.type.is_void else str(inst.type)
        return f"{inst.opcode} {type_text}"

    def variable_node(self, value: Value) -> int:
        """Get or create the VARIABLE node for an SSA value."""
        key = id(value)
        if key not in self.value_nodes:
            index = self.graph.add_node(NodeKind.VARIABLE, str(value.type), self.function.name)
            self.value_nodes[key] = index
        return self.value_nodes[key]

    def constant_node(self, constant: Constant) -> int:
        """Get or create the CONSTANT node for a literal.

        Integer literals are tokenised with an order-of-magnitude bucket
        (e.g. ``"i64 ~2^10"``) so that loop-bound constants — the statically
        visible problem sizes of the benchmark kernels — are distinguishable
        to the model without blowing up the vocabulary.
        """
        key = (str(constant.type), constant.value)
        if key not in self.constant_nodes:
            token = constant_token(constant)
            index = self.graph.add_node(NodeKind.CONSTANT, token, self.function.name)
            self.constant_nodes[key] = index
        return self.constant_nodes[key]

    # ---------------------------------------------------------------- passes
    def create_instruction_nodes(self) -> None:
        for inst in self.function.instructions():
            node = self.graph.add_node(
                NodeKind.INSTRUCTION, self._instruction_token(inst), self.function.name
            )
            self.instruction_nodes[id(inst)] = node
            if self.entry_node is None:
                self.entry_node = node
            if inst.opcode == "ret":
                self.return_nodes.append(node)

    def add_control_flow(self) -> None:
        block_entry: Dict[str, int] = {}
        for block in self.function.blocks:
            if block.instructions:
                block_entry[block.name] = self.instruction_nodes[id(block.instructions[0])]
        for block in self.function.blocks:
            for prev, nxt in zip(block.instructions, block.instructions[1:]):
                self.graph.add_edge(
                    self.instruction_nodes[id(prev)],
                    self.instruction_nodes[id(nxt)],
                    EdgeRelation.CONTROL,
                )
            terminator = block.terminator
            if terminator is None:
                continue
            for successor in block.successors():
                target = block_entry.get(successor.name)
                if target is not None:
                    self.graph.add_edge(
                        self.instruction_nodes[id(terminator)], target, EdgeRelation.CONTROL
                    )

    def add_data_flow(self) -> None:
        # Producer edges: instruction result -> variable node.
        for inst in self.function.instructions():
            if inst.has_result:
                var = self.variable_node(inst)
                self.graph.add_edge(self.instruction_nodes[id(inst)], var, EdgeRelation.DATA)
        # Consumer edges: operand (variable/constant node) -> instruction.
        for inst in self.function.instructions():
            consumer = self.instruction_nodes[id(inst)]
            for position, operand in enumerate(inst.operands()):
                if isinstance(operand, Constant):
                    source = self.constant_node(operand)
                elif isinstance(operand, (Instruction, Argument, GlobalVariable)):
                    source = self.variable_node(operand)
                else:
                    source = self.variable_node(operand)
                self.graph.add_edge(source, consumer, EdgeRelation.DATA, position=position)


def build_flow_graph(module: Module, name: str = "") -> FlowGraph:
    """Build the flow-aware graph of an entire module."""
    graph = FlowGraph(name or module.name)
    root = graph.add_node(NodeKind.INSTRUCTION, _ROOT_TOKEN, "")

    lowerings: Dict[str, _FunctionLowering] = {}
    external_nodes: Dict[str, int] = {}

    defined = [f for f in module if not f.is_declaration]
    for function in defined:
        lowering = _FunctionLowering(graph, function)
        lowering.create_instruction_nodes()
        lowerings[function.name] = lowering

    for function in defined:
        lowering = lowerings[function.name]
        lowering.add_control_flow()
        lowering.add_data_flow()
        if lowering.entry_node is not None:
            graph.add_edge(root, lowering.entry_node, EdgeRelation.CALL)

    # Call-flow edges.
    for function in defined:
        lowering = lowerings[function.name]
        for inst in function.instructions():
            if not isinstance(inst, Call):
                continue
            call_node = lowering.instruction_nodes[id(inst)]
            callee = lowerings.get(inst.callee)
            if callee is not None and callee.entry_node is not None:
                graph.add_edge(call_node, callee.entry_node, EdgeRelation.CALL)
                for return_node in callee.return_nodes:
                    graph.add_edge(return_node, call_node, EdgeRelation.CALL)
            else:
                # External callee: one synthetic node per distinct callee name.
                if inst.callee not in external_nodes:
                    external_nodes[inst.callee] = graph.add_node(
                        NodeKind.INSTRUCTION, f"call external {inst.callee.split('.')[0]}", ""
                    )
                graph.add_edge(call_node, external_nodes[inst.callee], EdgeRelation.CALL)
                graph.add_edge(external_nodes[inst.callee], call_node, EdgeRelation.CALL)

    return graph


def build_region_graphs(region_modules: Dict[str, Module]) -> Dict[str, FlowGraph]:
    """Build one flow graph per outlined-region module.

    ``region_modules`` is the mapping produced by
    :func:`repro.ir.outline.extract_outlined_regions`.
    """
    return {name: build_flow_graph(mod, name=name) for name, mod in region_modules.items()}
