"""Hand-crafted static features derived from flow graphs.

The baseline tuners (and the BLISS learning-model pool) operate on compact
feature vectors rather than on graphs; this module derives such vectors from
the same flow graphs the GNN consumes, so every tuner sees information from
the same source.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.flowgraph import EdgeRelation, FlowGraph, NodeKind
from repro.nn import precision

__all__ = ["STATIC_FEATURE_NAMES", "static_feature_vector"]

#: Names (and order) of the entries returned by :func:`static_feature_vector`.
STATIC_FEATURE_NAMES: List[str] = [
    "num_nodes",
    "num_edges",
    "num_instructions",
    "num_variables",
    "num_constants",
    "control_edges",
    "data_edges",
    "call_edges",
    "loads",
    "stores",
    "float_arith",
    "int_arith",
    "branches",
    "phis",
    "calls",
    "atomics",
    "memory_ratio",
    "branch_ratio",
    "flop_ratio",
    "avg_out_degree",
]

_FLOAT_ARITH_PREFIXES = ("fadd", "fsub", "fmul", "fdiv", "frem")
_INT_ARITH_PREFIXES = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "lshr")


def static_feature_vector(graph: FlowGraph) -> np.ndarray:
    """Return the 20-entry static feature vector of ``graph``.

    All ratio features are safe for empty graphs (they default to zero).
    """
    tokens = graph.node_tokens()
    kinds = graph.node_kinds()
    instructions = [t for t, k in zip(tokens, kinds) if k == int(NodeKind.INSTRUCTION)]

    def count_prefix(prefixes) -> int:
        return sum(1 for t in instructions if t.split(" ")[0] in prefixes)

    loads = count_prefix(("load",))
    stores = count_prefix(("store",))
    float_arith = count_prefix(_FLOAT_ARITH_PREFIXES)
    int_arith = count_prefix(_INT_ARITH_PREFIXES)
    branches = count_prefix(("br", "condbr"))
    phis = count_prefix(("phi",))
    calls = count_prefix(("call",))
    atomics = count_prefix(("atomicrmw",))

    num_instructions = len(instructions)
    memory_ops = loads + stores
    total_arith = float_arith + int_arith

    control = len(graph.edges_of_relation(EdgeRelation.CONTROL))
    data = len(graph.edges_of_relation(EdgeRelation.DATA))
    call_edges = len(graph.edges_of_relation(EdgeRelation.CALL))

    features = np.array(
        [
            graph.num_nodes,
            graph.num_edges,
            num_instructions,
            int(np.sum(kinds == int(NodeKind.VARIABLE))),
            int(np.sum(kinds == int(NodeKind.CONSTANT))),
            control,
            data,
            call_edges,
            loads,
            stores,
            float_arith,
            int_arith,
            branches,
            phis,
            calls,
            atomics,
            memory_ops / max(num_instructions, 1),
            branches / max(num_instructions, 1),
            float_arith / max(total_arith + memory_ops, 1),
            graph.num_edges / max(graph.num_nodes, 1),
        ],
        # Feature vectors adopt the active policy dtype at this ingest
        # boundary (float64 unless the process opted into float32).
        dtype=precision.get_default_dtype(),
    )
    if features.shape[0] != len(STATIC_FEATURE_NAMES):
        raise AssertionError("feature vector out of sync with STATIC_FEATURE_NAMES")
    return features
