"""Conversion of :class:`~repro.graphs.flowgraph.FlowGraph` to model inputs."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.flowgraph import FlowGraph
from repro.graphs.vocabulary import Vocabulary
from repro.nn.data import GraphSample

__all__ = ["GraphEncoder"]


class GraphEncoder:
    """Encode flow graphs into :class:`~repro.nn.data.GraphSample` objects.

    Parameters
    ----------
    vocabulary:
        Token vocabulary shared between training and inference.
    """

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary

    def encode(
        self,
        graph: FlowGraph,
        label: int = -1,
        aux_features: Optional[np.ndarray] = None,
        region_id: str = "",
    ) -> GraphSample:
        """Encode one graph (optionally with a label and auxiliary features)."""
        token_ids = np.asarray(self.vocabulary.encode_many(graph.node_tokens()), dtype=np.int64)
        node_types = graph.node_kinds()
        edge_index, edge_type = graph.edge_arrays()
        return GraphSample(
            token_ids=token_ids,
            node_types=node_types,
            edge_index=edge_index,
            edge_type=edge_type,
            label=label,
            aux_features=aux_features,
            region_id=region_id or graph.name,
        )

    def unknown_token_fraction(self, graph: FlowGraph) -> float:
        """Fraction of node tokens that fall back to ``<unk>`` (diagnostics)."""
        tokens = graph.node_tokens()
        if not tokens:
            return 0.0
        unknown = sum(1 for t in tokens if t not in self.vocabulary)
        return unknown / len(tokens)
