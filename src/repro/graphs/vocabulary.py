"""Token vocabulary for graph nodes.

Instruction nodes are tokenised as ``"<opcode> <type>"`` and variable /
constant nodes as their type string; the vocabulary maps each token to a
dense integer id consumed by the model's embedding layer.  Unknown tokens map
to a reserved ``<unk>`` id so that inference on unseen code never fails.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.graphs.flowgraph import FlowGraph
from repro.ir.instructions import OPCODES

__all__ = ["Vocabulary", "build_default_vocabulary"]

UNKNOWN_TOKEN = "<unk>"

#: Type spellings that occur in the benchmark suite's generated IR.
_COMMON_TYPES = (
    "void",
    "i1",
    "i32",
    "i64",
    "float",
    "double",
    "i32*",
    "i64*",
    "float*",
    "double*",
    "double**",
    "i1*",
)


class Vocabulary:
    """Bidirectional token ↔ id mapping with an unknown-token fallback."""

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: Dict[str, int] = {UNKNOWN_TOKEN: 0}
        self._id_to_token: List[str] = [UNKNOWN_TOKEN]
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Add ``token`` (idempotent) and return its id."""
        if not token:
            raise ValueError("cannot add an empty token")
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def encode(self, token: str) -> int:
        """Return the id of ``token``; unknown tokens map to the ``<unk>`` id."""
        return self._token_to_id.get(token, 0)

    def encode_many(self, tokens: Iterable[str]) -> List[int]:
        return [self.encode(t) for t in tokens]

    def decode(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def tokens(self) -> List[str]:
        return list(self._id_to_token)

    # ------------------------------------------------------------- builders
    @classmethod
    def from_graphs(cls, graphs: Iterable[FlowGraph]) -> "Vocabulary":
        """Build a vocabulary from the tokens occurring in ``graphs``."""
        vocab = cls()
        for graph in graphs:
            for token in graph.node_tokens():
                vocab.add(token)
        return vocab

    def extend_from_graphs(self, graphs: Iterable[FlowGraph]) -> None:
        """Add any unseen tokens found in ``graphs``."""
        for graph in graphs:
            for token in graph.node_tokens():
                self.add(token)


def build_default_vocabulary(extra_tokens: Optional[Iterable[str]] = None) -> Vocabulary:
    """Vocabulary covering every opcode × common type combination.

    Using a closed default vocabulary (rather than one fitted to the training
    graphs) keeps the token ids stable across systems, which is what makes the
    paper's transfer-learning step (reusing GNN weights across machines)
    possible.
    """
    vocab = Vocabulary()
    vocab.add("[external]")
    for type_name in _COMMON_TYPES:
        vocab.add(type_name)
    for opcode in OPCODES:
        for type_name in _COMMON_TYPES:
            vocab.add(f"{opcode} {type_name}")
    # Magnitude-bucketed integer literals (loop bounds, strides, shifts).
    for int_type in ("i32", "i64"):
        for bucket in range(0, 49):
            vocab.add(f"{int_type} ~2^{bucket}")
    for token in extra_tokens or ():
        vocab.add(token)
    return vocab
