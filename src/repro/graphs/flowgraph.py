"""The flow-aware multigraph data structure.

Follows the PROGRAML representation: one node per instruction, separate nodes
for variables and constants, and typed edges for control flow, data flow and
call flow.  The graph is a plain Python object with NumPy export helpers and
an optional conversion to :class:`networkx.MultiDiGraph` for analysis and
visualisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np
import networkx as nx

__all__ = ["NodeKind", "EdgeRelation", "GraphNode", "GraphEdge", "FlowGraph"]


class NodeKind(enum.IntEnum):
    """Kind of a graph node (PROGRAML node types)."""

    INSTRUCTION = 0
    VARIABLE = 1
    CONSTANT = 2


class EdgeRelation(enum.IntEnum):
    """Relation (type) of a graph edge; these are the RGCN's relations."""

    CONTROL = 0
    DATA = 1
    CALL = 2


@dataclass(frozen=True)
class GraphNode:
    """A single node.

    Attributes
    ----------
    index:
        Dense integer id within the graph.
    kind:
        Instruction / variable / constant.
    token:
        Textual token used for vocabulary lookup (e.g. ``"load double"`` for
        an instruction node, ``"double"`` for a variable node).
    function:
        Name of the IR function this node came from ("" for constants shared
        across functions).
    """

    index: int
    kind: NodeKind
    token: str
    function: str = ""


@dataclass(frozen=True)
class GraphEdge:
    """A typed directed edge with a position (operand slot) attribute."""

    source: int
    target: int
    relation: EdgeRelation
    position: int = 0


class FlowGraph:
    """Directed multigraph over :class:`GraphNode`/:class:`GraphEdge`."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: List[GraphNode] = []
        self._edges: List[GraphEdge] = []

    # -------------------------------------------------------------- building
    def add_node(self, kind: NodeKind, token: str, function: str = "") -> int:
        """Append a node and return its index."""
        if not token:
            raise ValueError("node token must be non-empty")
        index = len(self._nodes)
        self._nodes.append(GraphNode(index=index, kind=NodeKind(kind), token=token, function=function))
        return index

    def add_edge(self, source: int, target: int, relation: EdgeRelation, position: int = 0) -> None:
        """Append a typed edge between existing nodes."""
        num = len(self._nodes)
        if not (0 <= source < num) or not (0 <= target < num):
            raise IndexError(f"edge ({source}->{target}) references a non-existent node")
        self._edges.append(GraphEdge(source, target, EdgeRelation(relation), position))

    # --------------------------------------------------------------- queries
    @property
    def nodes(self) -> List[GraphNode]:
        return list(self._nodes)

    @property
    def edges(self) -> List[GraphEdge]:
        return list(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, index: int) -> GraphNode:
        return self._nodes[index]

    def nodes_of_kind(self, kind: NodeKind) -> List[GraphNode]:
        return [n for n in self._nodes if n.kind == kind]

    def edges_of_relation(self, relation: EdgeRelation) -> List[GraphEdge]:
        return [e for e in self._edges if e.relation == relation]

    def out_edges(self, index: int) -> List[GraphEdge]:
        return [e for e in self._edges if e.source == index]

    def in_edges(self, index: int) -> List[GraphEdge]:
        return [e for e in self._edges if e.target == index]

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self._nodes)

    # --------------------------------------------------------------- export
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_index (2, E), edge_type (E,))`` NumPy arrays."""
        if not self._edges:
            return np.zeros((2, 0), dtype=np.int64), np.zeros(0, dtype=np.int64)
        edge_index = np.array(
            [[e.source for e in self._edges], [e.target for e in self._edges]], dtype=np.int64
        )
        edge_type = np.array([int(e.relation) for e in self._edges], dtype=np.int64)
        return edge_index, edge_type

    def node_tokens(self) -> List[str]:
        """Token string of every node, in index order."""
        return [n.token for n in self._nodes]

    def node_kinds(self) -> np.ndarray:
        """Kind (as int) of every node, in index order."""
        return np.array([int(n.kind) for n in self._nodes], dtype=np.int64)

    def to_networkx(self) -> nx.MultiDiGraph:
        """Convert to a :class:`networkx.MultiDiGraph` (attributes preserved)."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self._nodes:
            graph.add_node(
                node.index, kind=node.kind.name, token=node.token, function=node.function
            )
        for edge in self._edges:
            graph.add_edge(
                edge.source, edge.target, relation=edge.relation.name, position=edge.position
            )
        return graph

    # ------------------------------------------------------------ statistics
    def summary(self) -> Dict[str, int]:
        """Node/edge counts broken down by kind/relation."""
        out: Dict[str, int] = {"nodes": self.num_nodes, "edges": self.num_edges}
        for kind in NodeKind:
            out[f"nodes_{kind.name.lower()}"] = sum(1 for n in self._nodes if n.kind == kind)
        for relation in EdgeRelation:
            out[f"edges_{relation.name.lower()}"] = sum(
                1 for e in self._edges if e.relation == relation
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowGraph({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"
