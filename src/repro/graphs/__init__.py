"""Flow-aware code graphs (PROGRAML-style) built from :mod:`repro.ir`.

An IR module is lowered to a directed multigraph with three node kinds
(instruction, variable, constant) and three edge relations (control flow,
data flow, call flow), exactly the structure PROGRAML produces and the
paper's RGCN consumes.  The package also provides the token vocabulary,
the conversion to model-ready index arrays (:class:`GraphEncoder`), and
hand-crafted static feature vectors used by the baseline tuners.
"""

from repro.graphs.flowgraph import (
    FlowGraph,
    GraphNode,
    GraphEdge,
    NodeKind,
    EdgeRelation,
)
from repro.graphs.programl import build_flow_graph, build_region_graphs
from repro.graphs.vocabulary import Vocabulary, build_default_vocabulary
from repro.graphs.encoder import GraphEncoder
from repro.graphs.features import static_feature_vector, STATIC_FEATURE_NAMES

__all__ = [
    "FlowGraph",
    "GraphNode",
    "GraphEdge",
    "NodeKind",
    "EdgeRelation",
    "build_flow_graph",
    "build_region_graphs",
    "Vocabulary",
    "build_default_vocabulary",
    "GraphEncoder",
    "static_feature_vector",
    "STATIC_FEATURE_NAMES",
]
