"""Extraction of outlined OpenMP regions (the ``llvm-extract`` step).

When Clang compiles an OpenMP parallel region it outlines the region body
into a separate function (``foo.omp_outlined``); the paper extracts those
functions with ``llvm-extract`` and feeds each one to PROGRAML individually.
:func:`extract_outlined_regions` performs the same operation on
:class:`~repro.ir.module.Module` objects: it returns one standalone module per
outlined region, containing the region function plus declarations (or bodies,
when available) of its callees.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.module import Module

__all__ = ["outlined_function_names", "extract_outlined_regions", "extract_function"]


def outlined_function_names(module: Module) -> List[str]:
    """Names of all outlined OpenMP region functions in ``module``."""
    return [f.name for f in module if f.is_omp_outlined]


def extract_function(module: Module, name: str, include_callee_bodies: bool = True) -> Module:
    """Extract ``name`` (and transitively its callees) into a new module.

    Parameters
    ----------
    module:
        Source module.
    name:
        Function to extract.
    include_callee_bodies:
        When True, callee functions defined in the source module are copied
        with their bodies; otherwise they become declarations.
    """
    root = module.get_function(name)
    extracted = Module(f"{module.name}::{name}")

    worklist = [root]
    visited: Set[str] = set()
    while worklist:
        function = worklist.pop()
        if function.name in visited:
            continue
        visited.add(function.name)
        extracted.add_function(function)
        for callee_name in sorted(function.callees()):
            if callee_name in visited or extracted.has_function(callee_name):
                continue
            if module.has_function(callee_name):
                callee = module.get_function(callee_name)
                if include_callee_bodies and not callee.is_declaration:
                    worklist.append(callee)
                else:
                    extracted.add_function(_as_declaration(callee))
                    visited.add(callee_name)
            else:
                # Unknown runtime call (e.g. __kmpc_*, libm): declare it.
                extracted.add_function(Function(callee_name))
                visited.add(callee_name)
    return extracted


def extract_outlined_regions(module: Module, include_callee_bodies: bool = True) -> Dict[str, Module]:
    """Return ``{region_function_name: standalone_module}`` for every region."""
    return {
        name: extract_function(module, name, include_callee_bodies)
        for name in outlined_function_names(module)
    }


def _as_declaration(function: Function) -> Function:
    declaration = Function(
        function.name,
        arg_types=[a.type for a in function.arguments],
        arg_names=[a.name for a in function.arguments],
        return_type=function.return_type,
        attributes=set(function.attributes),
    )
    return declaration
