"""IR values: the operands instructions consume and the results they produce.

Every :class:`Value` has a type and a textual name used when rendering IR and
when building PROGRAML-style data-flow graphs (constants and variables become
their own graph nodes).
"""

from __future__ import annotations

from typing import Union

from repro.ir.types import IRType, FloatType, IntType, PointerType

__all__ = ["Value", "Constant", "Argument", "GlobalVariable", "UndefValue"]


class Value:
    """Base class of everything that can appear as an operand."""

    def __init__(self, type_: IRType, name: str = "") -> None:
        self.type = type_
        self.name = name

    def ref(self) -> str:
        """Textual reference used when this value appears as an operand."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.type} {self.ref()})"


class Constant(Value):
    """A literal integer or floating-point constant."""

    def __init__(self, type_: IRType, value: Union[int, float]) -> None:
        if not isinstance(type_, (IntType, FloatType)):
            raise TypeError("constants must have integer or float type")
        super().__init__(type_, name="")
        if isinstance(type_, IntType):
            self.value: Union[int, float] = int(value)
        else:
            self.value = float(value)

    def ref(self) -> str:
        if isinstance(self.type, FloatType):
            return f"{self.value:.6e}"
        return str(self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant) and other.type == self.type and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal function argument."""

    def __init__(self, type_: IRType, name: str, index: int = 0) -> None:
        super().__init__(type_, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level variable; its type is a pointer to the element type."""

    def __init__(self, element_type: IRType, name: str) -> None:
        super().__init__(PointerType(element_type), name)
        self.element_type = element_type

    def ref(self) -> str:
        return f"@{self.name}"


class UndefValue(Value):
    """An undefined value of a given type (rarely needed; keeps phis total)."""

    def __init__(self, type_: IRType) -> None:
        super().__init__(type_, name="undef")

    def ref(self) -> str:
        return "undef"
