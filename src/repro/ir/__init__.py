"""A small SSA intermediate representation (IR) in the spirit of LLVM IR.

The paper compiles OpenMP applications with Clang, outlines each parallel
region with ``llvm-extract``, and feeds the outlined IR to PROGRAML.  This
package provides the equivalent substrate: typed values, instructions with
operands, basic blocks with explicit terminators, functions, modules, a
builder API for generating IR programmatically, a structural verifier, and an
``llvm-extract``-style outliner that pulls one outlined OpenMP region (plus
its callees) into a standalone module.

The IR is deliberately small — enough opcodes to express the loop nests,
memory accesses, reductions and calls that occur in the benchmark suite — but
it is a real IR: every instruction has typed operands, control flow is
explicit, and the verifier rejects malformed functions.
"""

from repro.ir.types import (
    IRType,
    VoidType,
    IntType,
    FloatType,
    PointerType,
    ArrayType,
    LabelType,
    void,
    i1,
    i32,
    i64,
    f32,
    f64,
    ptr,
)
from repro.ir.values import Value, Constant, Argument, GlobalVariable, UndefValue
from repro.ir.instructions import (
    Instruction,
    BinaryOp,
    CompareOp,
    Load,
    Store,
    GetElementPtr,
    Alloca,
    Branch,
    CondBranch,
    Phi,
    Call,
    Return,
    Cast,
    Select,
    AtomicRMW,
    OPCODES,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.verifier import VerificationError, verify_function, verify_module
from repro.ir.outline import extract_outlined_regions, outlined_function_names

__all__ = [
    "IRType",
    "VoidType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "LabelType",
    "void",
    "i1",
    "i32",
    "i64",
    "f32",
    "f64",
    "ptr",
    "Value",
    "Constant",
    "Argument",
    "GlobalVariable",
    "UndefValue",
    "Instruction",
    "BinaryOp",
    "CompareOp",
    "Load",
    "Store",
    "GetElementPtr",
    "Alloca",
    "Branch",
    "CondBranch",
    "Phi",
    "Call",
    "Return",
    "Cast",
    "Select",
    "AtomicRMW",
    "OPCODES",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "VerificationError",
    "verify_function",
    "verify_module",
    "extract_outlined_regions",
    "outlined_function_names",
]
