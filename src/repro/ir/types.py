"""IR type system.

Types are immutable value objects compared structurally; convenience
constructors (``i32()``, ``f64()``, ``ptr(t)``) return canonical instances so
identity comparisons also work for the common cases.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "IRType",
    "VoidType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "LabelType",
    "void",
    "i1",
    "i32",
    "i64",
    "f32",
    "f64",
    "ptr",
]


class IRType:
    """Base class for all IR types."""

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)


class VoidType(IRType):
    """The ``void`` type (functions with no return value)."""

    def __str__(self) -> str:
        return "void"


class LabelType(IRType):
    """Type of basic-block labels (branch targets)."""

    def __str__(self) -> str:
        return "label"


class IntType(IRType):
    """Fixed-width integer type (``i1``, ``i32``, ``i64``...)."""

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise ValueError("integer width must be positive")
        self.bits = bits

    def _key(self) -> Tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(IRType):
    """IEEE floating-point type (``float`` = 32 bits, ``double`` = 64 bits)."""

    def __init__(self, bits: int) -> None:
        if bits not in (32, 64):
            raise ValueError("only 32- and 64-bit floats are supported")
        self.bits = bits

    def _key(self) -> Tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(IRType):
    """Pointer to another type."""

    def __init__(self, pointee: IRType) -> None:
        self.pointee = pointee

    def _key(self) -> Tuple:
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(IRType):
    """Fixed-length array type ``[count x element]``."""

    def __init__(self, element: IRType, count: int) -> None:
        if count < 0:
            raise ValueError("array length must be non-negative")
        self.element = element
        self.count = count

    def _key(self) -> Tuple:
        return (self.element, self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


_VOID = VoidType()
_LABEL = LabelType()
_INTS: Dict[int, IntType] = {}
_FLOATS: Dict[int, FloatType] = {}


def void() -> VoidType:
    """Canonical void type."""
    return _VOID


def i1() -> IntType:
    """Canonical 1-bit integer (boolean) type."""
    return _int(1)


def i32() -> IntType:
    """Canonical 32-bit integer type."""
    return _int(32)


def i64() -> IntType:
    """Canonical 64-bit integer type."""
    return _int(64)


def f32() -> FloatType:
    """Canonical 32-bit float type."""
    return _float(32)


def f64() -> FloatType:
    """Canonical 64-bit float (double) type."""
    return _float(64)


def ptr(pointee: IRType) -> PointerType:
    """Pointer to ``pointee``."""
    return PointerType(pointee)


def _int(bits: int) -> IntType:
    if bits not in _INTS:
        _INTS[bits] = IntType(bits)
    return _INTS[bits]


def _float(bits: int) -> FloatType:
    if bits not in _FLOATS:
        _FLOATS[bits] = FloatType(bits)
    return _FLOATS[bits]
