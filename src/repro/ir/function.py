"""IR functions: argument lists, basic blocks, and OpenMP-outlining metadata."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.ir.block import BasicBlock
from repro.ir.instructions import Call, Instruction
from repro.ir.types import IRType, void
from repro.ir.values import Argument

__all__ = ["Function"]

#: Attribute marking a function as the compiler-outlined body of an OpenMP
#: parallel region (what ``llvm-extract`` pulls out in the paper's pipeline).
OMP_OUTLINED_ATTR = "omp_outlined"


class Function:
    """A function: named, typed arguments and a list of basic blocks.

    Parameters
    ----------
    name:
        Function symbol name.  Outlined OpenMP regions follow the Clang
        convention ``<original>.omp_outlined[.N]``.
    arg_types / arg_names:
        Formal parameter types and names.
    return_type:
        Return type (``void`` for outlined regions).
    attributes:
        Free-form string attributes; ``"omp_outlined"`` marks outlined
        parallel-region bodies.
    """

    def __init__(
        self,
        name: str,
        arg_types: Sequence[IRType] = (),
        arg_names: Optional[Sequence[str]] = None,
        return_type: IRType = None,
        attributes: Optional[Set[str]] = None,
    ) -> None:
        if not name:
            raise ValueError("function requires a name")
        self.name = name
        self.return_type = return_type if return_type is not None else void()
        arg_names = list(arg_names) if arg_names is not None else [f"arg{i}" for i in range(len(arg_types))]
        if len(arg_names) != len(arg_types):
            raise ValueError("arg_names and arg_types must have the same length")
        self.arguments: List[Argument] = [
            Argument(t, n, index=i) for i, (t, n) in enumerate(zip(arg_types, arg_names))
        ]
        self.blocks: List[BasicBlock] = []
        self.attributes: Set[str] = set(attributes or ())
        self.parent = None  # owning Module

    # ------------------------------------------------------------- structure
    def add_block(self, name: str) -> BasicBlock:
        """Create, register and return a new basic block."""
        if any(b.name == name for b in self.blocks):
            raise ValueError(f"duplicate block name {name!r} in function {self.name!r}")
        block = BasicBlock(name, parent=self)
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> BasicBlock:
        """The entry block (first block added)."""
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        """True for body-less functions (external declarations)."""
        return not self.blocks

    @property
    def is_omp_outlined(self) -> bool:
        """True if this function is an outlined OpenMP parallel region."""
        return OMP_OUTLINED_ATTR in self.attributes or ".omp_outlined" in self.name

    # --------------------------------------------------------------- queries
    def instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction in block order."""
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(b) for b in self.blocks)

    def predecessors(self) -> Dict[str, List[BasicBlock]]:
        """Map block name → list of predecessor blocks."""
        preds: Dict[str, List[BasicBlock]] = {b.name: [] for b in self.blocks}
        for block in self.blocks:
            for successor in block.successors():
                preds[successor.name].append(block)
        return preds

    def callees(self) -> Set[str]:
        """Names of all functions called (directly) from this function."""
        return {inst.callee for inst in self.instructions() if isinstance(inst, Call)}

    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r} in function {self.name!r}")

    # ------------------------------------------------------------- rendering
    def render(self) -> str:
        """LLVM-flavoured textual form of the whole function."""
        args = ", ".join(f"{a.type} %{a.name}" for a in self.arguments)
        attrs = (" " + " ".join(sorted(self.attributes))) if self.attributes else ""
        if self.is_declaration:
            return f"declare {self.return_type} @{self.name}({args}){attrs}"
        header = f"define {self.return_type} @{self.name}({args}){attrs} {{"
        body = "\n".join(block.render() for block in self.blocks)
        return f"{header}\n{body}\n}}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Function({self.name}, blocks={len(self.blocks)})"
