"""IR instructions.

Each instruction is itself a :class:`~repro.ir.values.Value` (its result can
be used as an operand), carries an opcode string, and exposes its operands via
``operands()`` so the graph builder can attach data-flow edges uniformly.
Rendering (``render()``) produces LLVM-flavoured text, which doubles as the
token stream for the vocabulary/embedding stage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ir.types import FloatType, IRType, IntType, PointerType, i1, void
from repro.ir.values import Value

__all__ = [
    "Instruction",
    "BinaryOp",
    "CompareOp",
    "Load",
    "Store",
    "GetElementPtr",
    "Alloca",
    "Branch",
    "CondBranch",
    "Phi",
    "Call",
    "Return",
    "Cast",
    "Select",
    "AtomicRMW",
    "OPCODES",
]

#: All opcodes the verifier and the graph vocabulary recognise.
OPCODES: Tuple[str, ...] = (
    "add",
    "sub",
    "mul",
    "sdiv",
    "srem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "fadd",
    "fsub",
    "fmul",
    "fdiv",
    "frem",
    "icmp",
    "fcmp",
    "load",
    "store",
    "getelementptr",
    "alloca",
    "br",
    "condbr",
    "phi",
    "call",
    "ret",
    "trunc",
    "zext",
    "sext",
    "fptrunc",
    "fpext",
    "sitofp",
    "fptosi",
    "bitcast",
    "select",
    "atomicrmw",
)

_INT_BINOPS = {"add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "lshr"}
_FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "frem"}
_CAST_OPS = {"trunc", "zext", "sext", "fptrunc", "fpext", "sitofp", "fptosi", "bitcast"}
_CMP_PREDICATES = {"eq", "ne", "slt", "sle", "sgt", "sge", "olt", "ole", "ogt", "oge", "oeq", "one"}
_ATOMIC_OPS = {"add", "fadd", "max", "min", "xchg"}


class Instruction(Value):
    """Base class for all instructions."""

    #: Whether this instruction ends a basic block.
    is_terminator: bool = False

    def __init__(self, opcode: str, type_: IRType, name: str = "") -> None:
        if opcode not in OPCODES:
            raise ValueError(f"unknown opcode {opcode!r}")
        super().__init__(type_, name)
        self.opcode = opcode
        self.parent = None  # set by BasicBlock.append

    # Every subclass overrides these two.
    def operands(self) -> List[Value]:
        """Values read by this instruction (data-flow in-edges)."""
        return []

    def render(self) -> str:
        """LLVM-flavoured textual form."""
        raise NotImplementedError

    # ------------------------------------------------------------------ misc
    def successors(self) -> List["object"]:
        """Basic blocks this instruction may transfer control to."""
        return []

    @property
    def has_result(self) -> bool:
        return not self.type.is_void

    def __str__(self) -> str:
        return self.render()


class BinaryOp(Instruction):
    """Integer or floating-point binary arithmetic/logic."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in _INT_BINOPS and opcode not in _FLOAT_BINOPS:
            raise ValueError(f"{opcode!r} is not a binary opcode")
        if lhs.type != rhs.type:
            raise TypeError(f"operand type mismatch: {lhs.type} vs {rhs.type}")
        if opcode in _FLOAT_BINOPS and not isinstance(lhs.type, FloatType):
            raise TypeError(f"{opcode} requires float operands")
        if opcode in _INT_BINOPS and not isinstance(lhs.type, IntType):
            raise TypeError(f"{opcode} requires integer operands")
        super().__init__(opcode, lhs.type, name)
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def render(self) -> str:
        return f"%{self.name} = {self.opcode} {self.type} {self.lhs.ref()}, {self.rhs.ref()}"


class CompareOp(Instruction):
    """Integer (``icmp``) or floating-point (``fcmp``) comparison."""

    def __init__(self, opcode: str, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in ("icmp", "fcmp"):
            raise ValueError("CompareOp opcode must be icmp or fcmp")
        if predicate not in _CMP_PREDICATES:
            raise ValueError(f"unknown comparison predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError("comparison operands must have the same type")
        super().__init__(opcode, i1(), name)
        self.predicate = predicate
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def render(self) -> str:
        return (
            f"%{self.name} = {self.opcode} {self.predicate} {self.lhs.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


class Load(Instruction):
    """Load a value through a pointer."""

    def __init__(self, pointer: Value, name: str = "") -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError("load requires a pointer operand")
        super().__init__("load", pointer.type.pointee, name)
        self.pointer = pointer

    def operands(self) -> List[Value]:
        return [self.pointer]

    def render(self) -> str:
        return f"%{self.name} = load {self.type}, {self.pointer.type} {self.pointer.ref()}"


class Store(Instruction):
    """Store a value through a pointer (no result)."""

    def __init__(self, value: Value, pointer: Value) -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError("store requires a pointer destination")
        if pointer.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {pointer.type}"
            )
        super().__init__("store", void())
        self.value = value
        self.pointer = pointer

    def operands(self) -> List[Value]:
        return [self.value, self.pointer]

    def render(self) -> str:
        return f"store {self.value.type} {self.value.ref()}, {self.pointer.type} {self.pointer.ref()}"


class GetElementPtr(Instruction):
    """Pointer arithmetic: compute the address of an element."""

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = "") -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError("getelementptr requires a pointer base")
        super().__init__("getelementptr", pointer.type, name)
        self.pointer = pointer
        self.indices = list(indices)
        if not self.indices:
            raise ValueError("getelementptr requires at least one index")

    def operands(self) -> List[Value]:
        return [self.pointer] + self.indices

    def render(self) -> str:
        idx = ", ".join(f"{i.type} {i.ref()}" for i in self.indices)
        return (
            f"%{self.name} = getelementptr {self.pointer.type.pointee}, "
            f"{self.pointer.type} {self.pointer.ref()}, {idx}"
        )


class Alloca(Instruction):
    """Stack allocation; result is a pointer to the allocated type."""

    def __init__(self, allocated_type: IRType, name: str = "") -> None:
        super().__init__("alloca", PointerType(allocated_type), name)
        self.allocated_type = allocated_type

    def render(self) -> str:
        return f"%{self.name} = alloca {self.allocated_type}"


class Branch(Instruction):
    """Unconditional branch."""

    is_terminator = True

    def __init__(self, target) -> None:
        super().__init__("br", void())
        self.target = target

    def successors(self) -> List[object]:
        return [self.target]

    def render(self) -> str:
        return f"br label %{self.target.name}"


class CondBranch(Instruction):
    """Conditional branch on an ``i1`` condition."""

    is_terminator = True

    def __init__(self, condition: Value, if_true, if_false) -> None:
        if condition.type != i1():
            raise TypeError("conditional branch requires an i1 condition")
        super().__init__("condbr", void())
        self.condition = condition
        self.if_true = if_true
        self.if_false = if_false

    def operands(self) -> List[Value]:
        return [self.condition]

    def successors(self) -> List[object]:
        return [self.if_true, self.if_false]

    def render(self) -> str:
        return (
            f"br i1 {self.condition.ref()}, label %{self.if_true.name}, "
            f"label %{self.if_false.name}"
        )


class Phi(Instruction):
    """SSA phi node merging values from predecessor blocks."""

    def __init__(self, type_: IRType, name: str = "") -> None:
        super().__init__("phi", type_, name)
        self.incoming: List[Tuple[Value, object]] = []

    def add_incoming(self, value: Value, block) -> None:
        """Register that control arriving from ``block`` carries ``value``."""
        if value.type != self.type:
            raise TypeError(f"phi incoming type {value.type} != {self.type}")
        self.incoming.append((value, block))

    def operands(self) -> List[Value]:
        return [value for value, _ in self.incoming]

    def render(self) -> str:
        pairs = ", ".join(f"[ {v.ref()}, %{b.name} ]" for v, b in self.incoming)
        return f"%{self.name} = phi {self.type} {pairs}"


class Call(Instruction):
    """Direct call to a named callee."""

    def __init__(self, callee: str, return_type: IRType, args: Sequence[Value], name: str = "") -> None:
        super().__init__("call", return_type, name)
        if not callee:
            raise ValueError("callee name must be non-empty")
        self.callee = callee
        self.args = list(args)

    def operands(self) -> List[Value]:
        return list(self.args)

    def render(self) -> str:
        arg_text = ", ".join(f"{a.type} {a.ref()}" for a in self.args)
        if self.type.is_void:
            return f"call void @{self.callee}({arg_text})"
        return f"%{self.name} = call {self.type} @{self.callee}({arg_text})"


class Return(Instruction):
    """Return from the enclosing function."""

    is_terminator = True

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__("ret", void())
        self.value = value

    def operands(self) -> List[Value]:
        return [self.value] if self.value is not None else []

    def render(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type} {self.value.ref()}"


class Cast(Instruction):
    """Type conversion (zext/sext/trunc/sitofp/...)."""

    def __init__(self, opcode: str, value: Value, target_type: IRType, name: str = "") -> None:
        if opcode not in _CAST_OPS:
            raise ValueError(f"{opcode!r} is not a cast opcode")
        super().__init__(opcode, target_type, name)
        self.value = value

    def operands(self) -> List[Value]:
        return [self.value]

    def render(self) -> str:
        return f"%{self.name} = {self.opcode} {self.value.type} {self.value.ref()} to {self.type}"


class Select(Instruction):
    """Ternary select: ``cond ? a : b``."""

    def __init__(self, condition: Value, if_true: Value, if_false: Value, name: str = "") -> None:
        if condition.type != i1():
            raise TypeError("select requires an i1 condition")
        if if_true.type != if_false.type:
            raise TypeError("select arms must have the same type")
        super().__init__("select", if_true.type, name)
        self.condition = condition
        self.if_true = if_true
        self.if_false = if_false

    def operands(self) -> List[Value]:
        return [self.condition, self.if_true, self.if_false]

    def render(self) -> str:
        return (
            f"%{self.name} = select i1 {self.condition.ref()}, {self.if_true.type} "
            f"{self.if_true.ref()}, {self.if_false.type} {self.if_false.ref()}"
        )


class AtomicRMW(Instruction):
    """Atomic read-modify-write (models OpenMP atomic/reduction updates)."""

    def __init__(self, operation: str, pointer: Value, value: Value, name: str = "") -> None:
        if operation not in _ATOMIC_OPS:
            raise ValueError(f"unsupported atomic operation {operation!r}")
        if not isinstance(pointer.type, PointerType):
            raise TypeError("atomicrmw requires a pointer operand")
        if pointer.type.pointee != value.type:
            raise TypeError("atomicrmw value type must match the pointee type")
        super().__init__("atomicrmw", value.type, name)
        self.operation = operation
        self.pointer = pointer
        self.value = value

    def operands(self) -> List[Value]:
        return [self.pointer, self.value]

    def render(self) -> str:
        return (
            f"%{self.name} = atomicrmw {self.operation} {self.pointer.type} "
            f"{self.pointer.ref()}, {self.value.type} {self.value.ref()} seq_cst"
        )
