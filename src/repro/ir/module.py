"""IR modules: named collections of functions and global variables."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.ir.function import Function
from repro.ir.types import IRType
from repro.ir.values import GlobalVariable

__all__ = ["Module"]


class Module:
    """A translation unit: globals plus functions, addressable by name."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("module requires a name")
        self.name = name
        self._functions: Dict[str, Function] = {}
        self._globals: Dict[str, GlobalVariable] = {}

    # ------------------------------------------------------------ functions
    def add_function(self, function: Function) -> Function:
        """Register ``function``; duplicate names are rejected."""
        if function.name in self._functions:
            raise ValueError(f"duplicate function {function.name!r} in module {self.name!r}")
        function.parent = self
        self._functions[function.name] = function
        return function

    def get_function(self, name: str) -> Function:
        if name not in self._functions:
            raise KeyError(f"no function named {name!r} in module {self.name!r}")
        return self._functions[name]

    def has_function(self, name: str) -> bool:
        return name in self._functions

    @property
    def functions(self) -> List[Function]:
        return list(self._functions.values())

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    # -------------------------------------------------------------- globals
    def add_global(self, element_type: IRType, name: str) -> GlobalVariable:
        """Declare a module-level variable and return it."""
        if name in self._globals:
            raise ValueError(f"duplicate global {name!r}")
        var = GlobalVariable(element_type, name)
        self._globals[name] = var
        return var

    def get_global(self, name: str) -> GlobalVariable:
        if name not in self._globals:
            raise KeyError(f"no global named {name!r}")
        return self._globals[name]

    @property
    def globals(self) -> List[GlobalVariable]:
        return list(self._globals.values())

    # ------------------------------------------------------------ rendering
    def render(self) -> str:
        """Textual form of the entire module."""
        lines = [f"; ModuleID = '{self.name}'"]
        for var in self._globals.values():
            lines.append(f"@{var.name} = global {var.element_type}")
        for function in self._functions.values():
            lines.append("")
            lines.append(function.render())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Module({self.name!r}, functions={len(self._functions)})"
