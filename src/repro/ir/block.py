"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.ir.instructions import Instruction

__all__ = ["BasicBlock"]


class BasicBlock:
    """A labelled sequence of instructions within a function.

    Control flow may only enter at the top and leaves through the final
    (terminator) instruction.  Successors are derived from the terminator;
    predecessors are computed by the owning :class:`~repro.ir.function.Function`.
    """

    def __init__(self, name: str, parent=None) -> None:
        if not name:
            raise ValueError("basic block requires a name")
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------- mutation
    def append(self, instruction: Instruction) -> Instruction:
        """Append ``instruction``; rejects instructions after a terminator."""
        if self.is_terminated:
            raise ValueError(
                f"block '{self.name}' is already terminated; cannot append {instruction.opcode}"
            )
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    # -------------------------------------------------------------- queries
    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is a terminator, else ``None``."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        """Blocks reachable directly from this block."""
        term = self.terminator
        return list(term.successors()) if term is not None else []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def render(self) -> str:
        """Textual form: label followed by indented instructions."""
        lines = [f"{self.name}:"]
        lines.extend(f"  {inst.render()}" for inst in self.instructions)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BasicBlock({self.name}, {len(self.instructions)} instructions)"
