"""Structural verification of IR functions and modules.

The verifier enforces the invariants the graph builder relies on: every block
is terminated, terminators only appear at block ends, branch targets belong to
the same function, result names are unique within a function, and phi nodes
reference existing predecessor blocks.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.function import Function
from repro.ir.instructions import CondBranch, Branch, Instruction, Phi
from repro.ir.module import Module

__all__ = ["VerificationError", "verify_function", "verify_module"]


class VerificationError(Exception):
    """Raised when an IR object violates a structural invariant."""


def verify_function(function: Function) -> None:
    """Verify a single function; raises :class:`VerificationError` on failure."""
    if function.is_declaration:
        return

    block_names = {block.name for block in function.blocks}
    if len(block_names) != len(function.blocks):
        raise VerificationError(f"{function.name}: duplicate basic-block names")

    seen_names: Set[str] = set()
    for block in function.blocks:
        if not block.instructions:
            raise VerificationError(f"{function.name}/{block.name}: empty basic block")
        if block.terminator is None:
            raise VerificationError(f"{function.name}/{block.name}: missing terminator")
        for position, inst in enumerate(block.instructions):
            is_last = position == len(block.instructions) - 1
            if inst.is_terminator and not is_last:
                raise VerificationError(
                    f"{function.name}/{block.name}: terminator {inst.opcode!r} not at block end"
                )
            if inst.has_result:
                if not inst.name:
                    raise VerificationError(
                        f"{function.name}/{block.name}: unnamed instruction with a result"
                    )
                if inst.name in seen_names:
                    raise VerificationError(
                        f"{function.name}: duplicate SSA name %{inst.name}"
                    )
                seen_names.add(inst.name)
            _check_targets(function, block.name, inst, block_names)

    preds = function.predecessors()
    for block in function.blocks:
        pred_names = {p.name for p in preds[block.name]}
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if not inst.incoming:
                    raise VerificationError(
                        f"{function.name}/{block.name}: phi %{inst.name} has no incoming values"
                    )
                for _value, source in inst.incoming:
                    if source.name not in block_names:
                        raise VerificationError(
                            f"{function.name}/{block.name}: phi %{inst.name} references "
                            f"unknown block {source.name!r}"
                        )
                    if source.name not in pred_names:
                        raise VerificationError(
                            f"{function.name}/{block.name}: phi %{inst.name} lists "
                            f"{source.name!r} which is not a predecessor"
                        )


def _check_targets(function: Function, block_name: str, inst: Instruction, block_names: Set[str]) -> None:
    if isinstance(inst, Branch):
        targets = [inst.target]
    elif isinstance(inst, CondBranch):
        targets = [inst.if_true, inst.if_false]
    else:
        return
    for target in targets:
        if target.name not in block_names:
            raise VerificationError(
                f"{function.name}/{block_name}: branch to unknown block {target.name!r}"
            )
        if target.parent is not function:
            raise VerificationError(
                f"{function.name}/{block_name}: branch target {target.name!r} "
                "belongs to a different function"
            )


def verify_module(module: Module) -> None:
    """Verify every function in ``module``."""
    errors: List[str] = []
    for function in module:
        try:
            verify_function(function)
        except VerificationError as exc:
            errors.append(str(exc))
    if errors:
        raise VerificationError("; ".join(errors))
