"""IRBuilder: convenience API for constructing IR functions.

The builder keeps an insertion point (a basic block), auto-names result
temporaries, and offers a structured ``counted_loop`` helper that emits the
canonical pre-header / header / body / latch / exit shape used by every loop
nest in the benchmark suite's code generators.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.ir import instructions as instr
from repro.ir import types as irt
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.values import Constant, Value

__all__ = ["IRBuilder"]

Number = Union[int, float]


class IRBuilder:
    """Builds instructions into a function, one basic block at a time."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._block: Optional[BasicBlock] = None
        self._counter = 0
        self._block_counter = 0

    # ----------------------------------------------------------- positioning
    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise ValueError("builder has no insertion point; call position_at()")
        return self._block

    def position_at(self, block: BasicBlock) -> None:
        """Set the insertion point to ``block``."""
        self._block = block

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create a fresh, uniquely named block in the current function."""
        self._block_counter += 1
        return self.function.add_block(f"{hint}{self._block_counter}")

    def _name(self, hint: str = "t") -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    def _emit(self, instruction: instr.Instruction) -> instr.Instruction:
        return self.block.append(instruction)

    # -------------------------------------------------------------- literals
    def const_int(self, value: int, bits: int = 64) -> Constant:
        """Integer literal."""
        return Constant(irt.IntType(bits) if bits not in (32, 64) else (irt.i32() if bits == 32 else irt.i64()), value)

    def const_float(self, value: float, bits: int = 64) -> Constant:
        """Floating-point literal."""
        return Constant(irt.f32() if bits == 32 else irt.f64(), value)

    # ------------------------------------------------------------ arithmetic
    def binop(self, opcode: str, lhs: Value, rhs: Value, hint: str = "t") -> instr.BinaryOp:
        return self._emit(instr.BinaryOp(opcode, lhs, rhs, self._name(hint)))

    def add(self, lhs: Value, rhs: Value) -> instr.BinaryOp:
        return self.binop("add", lhs, rhs)

    def sub(self, lhs: Value, rhs: Value) -> instr.BinaryOp:
        return self.binop("sub", lhs, rhs)

    def mul(self, lhs: Value, rhs: Value) -> instr.BinaryOp:
        return self.binop("mul", lhs, rhs)

    def sdiv(self, lhs: Value, rhs: Value) -> instr.BinaryOp:
        return self.binop("sdiv", lhs, rhs)

    def fadd(self, lhs: Value, rhs: Value) -> instr.BinaryOp:
        return self.binop("fadd", lhs, rhs)

    def fsub(self, lhs: Value, rhs: Value) -> instr.BinaryOp:
        return self.binop("fsub", lhs, rhs)

    def fmul(self, lhs: Value, rhs: Value) -> instr.BinaryOp:
        return self.binop("fmul", lhs, rhs)

    def fdiv(self, lhs: Value, rhs: Value) -> instr.BinaryOp:
        return self.binop("fdiv", lhs, rhs)

    def icmp(self, predicate: str, lhs: Value, rhs: Value) -> instr.CompareOp:
        return self._emit(instr.CompareOp("icmp", predicate, lhs, rhs, self._name("cmp")))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value) -> instr.CompareOp:
        return self._emit(instr.CompareOp("fcmp", predicate, lhs, rhs, self._name("fcmp")))

    # ---------------------------------------------------------------- memory
    def alloca(self, allocated_type: irt.IRType, hint: str = "slot") -> instr.Alloca:
        return self._emit(instr.Alloca(allocated_type, self._name(hint)))

    def load(self, pointer: Value, hint: str = "val") -> instr.Load:
        return self._emit(instr.Load(pointer, self._name(hint)))

    def store(self, value: Value, pointer: Value) -> instr.Store:
        return self._emit(instr.Store(value, pointer))

    def gep(self, pointer: Value, indices: Sequence[Value], hint: str = "addr") -> instr.GetElementPtr:
        return self._emit(instr.GetElementPtr(pointer, indices, self._name(hint)))

    def atomic_rmw(self, operation: str, pointer: Value, value: Value) -> instr.AtomicRMW:
        return self._emit(instr.AtomicRMW(operation, pointer, value, self._name("old")))

    # --------------------------------------------------------------- control
    def branch(self, target: BasicBlock) -> instr.Branch:
        return self._emit(instr.Branch(target))

    def cond_branch(self, condition: Value, if_true: BasicBlock, if_false: BasicBlock) -> instr.CondBranch:
        return self._emit(instr.CondBranch(condition, if_true, if_false))

    def phi(self, type_: irt.IRType, hint: str = "phi") -> instr.Phi:
        return self._emit(instr.Phi(type_, self._name(hint)))

    def call(
        self, callee: str, return_type: irt.IRType, args: Sequence[Value] = (), hint: str = "ret"
    ) -> instr.Call:
        name = "" if return_type.is_void else self._name(hint)
        return self._emit(instr.Call(callee, return_type, args, name))

    def ret(self, value: Optional[Value] = None) -> instr.Return:
        return self._emit(instr.Return(value))

    def cast(self, opcode: str, value: Value, target_type: irt.IRType) -> instr.Cast:
        return self._emit(instr.Cast(opcode, value, target_type, self._name("cast")))

    def select(self, condition: Value, if_true: Value, if_false: Value) -> instr.Select:
        return self._emit(instr.Select(condition, if_true, if_false, self._name("sel")))

    # ------------------------------------------------------- structured loops
    def counted_loop(
        self,
        trip_count: Value,
        body: Callable[["IRBuilder", Value], None],
        hint: str = "loop",
    ) -> BasicBlock:
        """Emit a canonical counted loop ``for (i = 0; i < trip_count; ++i)``.

        ``body(builder, induction_variable)`` is invoked with the builder
        positioned inside the loop body; it may itself emit nested loops.
        Returns the exit block, with the builder positioned there.

        The emitted shape is::

            preheader -> header { i = phi [0, preheader], [i+1, latch]
                                  cmp = icmp slt i, trip_count
                                  condbr cmp, body, exit }
            body      -> ... user instructions ... -> latch
            latch     -> header
            exit
        """
        preheader = self.block
        header = self.new_block(f"{hint}.header")
        body_block = self.new_block(f"{hint}.body")
        latch = self.new_block(f"{hint}.latch")
        exit_block = self.new_block(f"{hint}.exit")

        self.branch(header)

        self.position_at(header)
        induction = self.phi(irt.i64(), hint="iv")
        induction.add_incoming(self.const_int(0), preheader)
        condition = self.icmp("slt", induction, trip_count)
        self.cond_branch(condition, body_block, exit_block)

        self.position_at(body_block)
        body(self, induction)
        # The user body may have moved the insertion point (nested loops); the
        # block we are left in falls through to the latch.
        self.branch(latch)

        self.position_at(latch)
        next_value = self.add(induction, self.const_int(1))
        induction.add_incoming(next_value, latch)
        self.branch(header)

        self.position_at(exit_block)
        return exit_block
