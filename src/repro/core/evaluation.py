"""Evaluation metrics: speedups, greenups, EDP improvements and aggregations.

Every tuner (PnP static/dynamic, BLISS, OpenTuner, the default configuration
and the exhaustive oracle) ultimately selects a configuration per region; the
functions here turn those selections into the quantities the paper reports:

* speedup over the OpenMP default at the same power cap (scenario 1);
* speedup/greenup/EDP improvement over the OpenMP default at TDP (scenario 2);
* everything normalised by the oracle, aggregated per application with
  geometric means, plus the "within 5 % / 20 % of the oracle" case counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


from repro.core.measurements import MeasurementDatabase
from repro.openmp.config import OpenMPConfig
from repro.utils.stats import geometric_mean

__all__ = [
    "PerformanceRecord",
    "EdpRecord",
    "evaluate_power_constrained",
    "evaluate_edp",
    "geomean_by_application",
    "overall_geomean",
    "fraction_within_oracle",
    "fraction_better_than",
]


@dataclass(frozen=True)
class PerformanceRecord:
    """Evaluation of one (region, power cap) selection for scenario 1."""

    region_id: str
    application: str
    power_cap: float
    config: OpenMPConfig
    time_s: float
    default_time_s: float
    oracle_time_s: float

    @property
    def speedup(self) -> float:
        """Speedup over the OpenMP default at the same power cap."""
        return self.default_time_s / self.time_s

    @property
    def oracle_speedup(self) -> float:
        return self.default_time_s / self.oracle_time_s

    @property
    def normalized_speedup(self) -> float:
        """Speedup normalised by the oracle speedup (1.0 = oracle-optimal)."""
        return self.oracle_time_s / self.time_s


@dataclass(frozen=True)
class EdpRecord:
    """Evaluation of one region's (cap, configuration) selection for scenario 2."""

    region_id: str
    application: str
    power_cap: float
    config: OpenMPConfig
    time_s: float
    energy_j: float
    default_time_s: float
    default_energy_j: float
    oracle_edp: float

    @property
    def edp(self) -> float:
        return self.energy_j * self.time_s

    @property
    def default_edp(self) -> float:
        return self.default_energy_j * self.default_time_s

    @property
    def edp_improvement(self) -> float:
        """EDP improvement over the default configuration at TDP."""
        return self.default_edp / self.edp

    @property
    def oracle_edp_improvement(self) -> float:
        return self.default_edp / self.oracle_edp

    @property
    def normalized_edp_improvement(self) -> float:
        return self.oracle_edp / self.edp

    @property
    def speedup(self) -> float:
        """Speedup over the default configuration at TDP (may be < 1)."""
        return self.default_time_s / self.time_s

    @property
    def greenup(self) -> float:
        """Energy-reduction factor over the default configuration at TDP."""
        return self.default_energy_j / self.energy_j


# --------------------------------------------------------------- evaluation
def _application_of(region_id: str) -> str:
    return region_id.split("/", 1)[0]


def evaluate_power_constrained(
    database: MeasurementDatabase,
    selections: Mapping[Tuple[str, float], OpenMPConfig],
) -> List[PerformanceRecord]:
    """Evaluate scenario-1 selections.

    ``selections`` maps ``(region_id, power_cap)`` to the configuration the
    tuner chose for that point.
    """
    records: List[PerformanceRecord] = []
    for (region_id, cap), config in selections.items():
        chosen = database.measure(region_id, config, cap)
        default = database.default_result(region_id, cap)
        _, oracle = database.best_by_time(region_id, cap)
        records.append(
            PerformanceRecord(
                region_id=region_id,
                application=_application_of(region_id),
                power_cap=cap,
                config=config,
                time_s=chosen.time_s,
                default_time_s=default.time_s,
                oracle_time_s=oracle.time_s,
            )
        )
    return records


def evaluate_edp(
    database: MeasurementDatabase,
    selections: Mapping[str, Tuple[float, OpenMPConfig]],
) -> List[EdpRecord]:
    """Evaluate scenario-2 selections.

    ``selections`` maps ``region_id`` to the (power cap, configuration) pair
    the tuner chose.  The baseline is the OpenMP default at TDP (no cap).
    """
    tdp = database.search_space.tdp_watts
    records: List[EdpRecord] = []
    for region_id, (cap, config) in selections.items():
        chosen = database.measure(region_id, config, cap)
        default = database.default_result(region_id, tdp)
        _, _, oracle = database.best_by_edp(region_id)
        records.append(
            EdpRecord(
                region_id=region_id,
                application=_application_of(region_id),
                power_cap=cap,
                config=config,
                time_s=chosen.time_s,
                energy_j=chosen.energy_joules,
                default_time_s=default.time_s,
                default_energy_j=default.energy_joules,
                oracle_edp=oracle.edp,
            )
        )
    return records


# -------------------------------------------------------------- aggregation
def geomean_by_application(records: Sequence, attribute: str) -> Dict[str, float]:
    """Per-application geometric mean of ``attribute`` over its regions."""
    grouped: Dict[str, List[float]] = {}
    for record in records:
        grouped.setdefault(record.application, []).append(getattr(record, attribute))
    return {app: geometric_mean(values) for app, values in sorted(grouped.items())}


def overall_geomean(records: Sequence, attribute: str) -> float:
    """Geometric mean of ``attribute`` over all records."""
    values = [getattr(record, attribute) for record in records]
    return geometric_mean(values)


def fraction_within_oracle(
    records: Sequence, threshold: float = 0.95, attribute: str = "normalized_speedup"
) -> float:
    """Fraction of records whose normalised metric reaches ``threshold``."""
    if not records:
        raise ValueError("no records to aggregate")
    hits = sum(1 for record in records if getattr(record, attribute) >= threshold)
    return hits / len(records)


def fraction_better_than(
    records_a: Sequence, records_b: Sequence, attribute: str = "normalized_speedup"
) -> float:
    """Fraction of matching points where tuner A beats or ties tuner B.

    Records are matched on ``(region_id, power_cap)``; points present in only
    one of the two sets are ignored.
    """
    index_b = {(r.region_id, r.power_cap): getattr(r, attribute) for r in records_b}
    wins = 0
    total = 0
    for record in records_a:
        key = (record.region_id, record.power_cap)
        if key not in index_b:
            continue
        total += 1
        if getattr(record, attribute) >= index_b[key] - 1e-12:
            wins += 1
    if total == 0:
        raise ValueError("the two record sets share no evaluation points")
    return wins / total
