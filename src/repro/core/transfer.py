"""Cross-system transfer learning of the GNN encoder.

Because the code graphs are generated statically, the graphs obtained on
different systems with the same compiler are identical; the paper exploits
this by saving the GNN weights trained on the Haswell dataset and, when
training for Skylake, loading them and re-training only the dense layers —
reported to make training 4.18× faster (a 76 % reduction).

This module provides the two halves of that mechanism: extracting/injecting
the GNN-encoder weights and freezing them so an optimiser only updates the
dense head.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.model import PnPModel
from repro.nn.serialization import filter_state_dict
from repro.nn.tensor import Tensor

__all__ = ["extract_gnn_weights", "transfer_gnn_weights", "freeze_gnn_parameters"]


def extract_gnn_weights(model: PnPModel) -> Dict[str, np.ndarray]:
    """The GNN-encoder portion of ``model``'s state dictionary."""
    return filter_state_dict(model.state_dict(), include_prefixes=("gnn.",))


def transfer_gnn_weights(source: Dict[str, np.ndarray], target: PnPModel) -> int:
    """Load pre-trained GNN weights into ``target``.

    Parameters
    ----------
    source:
        A state dictionary containing ``gnn.*`` entries (typically produced
        by :func:`extract_gnn_weights` on the source-system model, possibly
        after a round-trip through :mod:`repro.nn.serialization`).
    target:
        The model being prepared for the new system.

    Returns
    -------
    int
        Number of parameter tensors loaded.

    Raises
    ------
    KeyError
        If ``source`` contains no GNN weights at all.
    """
    gnn_weights = {k: v for k, v in source.items() if k.startswith("gnn.")}
    if not gnn_weights:
        raise KeyError("source state dictionary contains no 'gnn.*' weights")
    target.load_state_dict(gnn_weights, strict=False)
    return len(gnn_weights)


def freeze_gnn_parameters(model: PnPModel) -> List[Tensor]:
    """Freeze the GNN encoder and return the parameters that remain trainable.

    Freezing is done by flipping ``requires_grad`` on the encoder parameters
    (so no gradient buffers are even allocated for them) and returning the
    dense-head parameters for the optimiser.
    """
    for parameter in model.gnn.parameters():
        parameter.requires_grad = False
        parameter.zero_grad()
    return list(model.dense_parameters())
