"""The PnP tuner — the paper's primary contribution.

The core package ties the substrates together into the two tuning scenarios
the paper evaluates:

* **Power-constrained performance tuning** — given a power cap, predict the
  OpenMP runtime configuration with the fastest execution
  (:class:`~repro.core.tuner.PnPTuner` with ``objective="time"``).
* **EDP tuning** — predict the (power cap, OpenMP configuration) pair that
  minimises the energy-delay product (``objective="edp"``).

Main entry points:

* :class:`~repro.core.search_space.SearchSpace` — Table I's 508-point space;
* :class:`~repro.core.measurements.MeasurementDatabase` — exhaustive
  measurements (the oracle) shared by the dataset builder and all tuners;
* :class:`~repro.core.dataset.DatasetBuilder` — graphs + labels + auxiliary
  features for both scenarios;
* :class:`~repro.core.model.PnPModel` — the RGCN + dense-classifier network
  (Table II hyperparameters);
* :mod:`repro.core.training` — training loops and leave-one-application-out
  cross-validation;
* :mod:`repro.core.transfer` — cross-system transfer learning of GNN weights;
* :class:`~repro.core.tuner.PnPTuner` — the user-facing auto-tuner API;
* :mod:`repro.core.evaluation` — speedup/greenup/EDP metrics and aggregation.
"""

from repro.core.search_space import SearchSpace, POWER_CAPS, THREAD_VALUES, CHUNK_SIZES
from repro.core.measurements import MeasurementDatabase, MeasurementKey
from repro.core.dataset import DatasetBuilder, LabeledSample, TuningScenario
from repro.core.model import PnPModel, ModelConfig
from repro.core.training import TrainingConfig, train_model, predict_labels, LeaveOneApplicationOut
from repro.core.transfer import transfer_gnn_weights, freeze_gnn_parameters
from repro.core.tuner import PnPTuner, TuningResult
from repro.core import evaluation

__all__ = [
    "SearchSpace",
    "POWER_CAPS",
    "THREAD_VALUES",
    "CHUNK_SIZES",
    "MeasurementDatabase",
    "MeasurementKey",
    "DatasetBuilder",
    "LabeledSample",
    "TuningScenario",
    "PnPModel",
    "ModelConfig",
    "TrainingConfig",
    "train_model",
    "predict_labels",
    "LeaveOneApplicationOut",
    "transfer_gnn_weights",
    "freeze_gnn_parameters",
    "PnPTuner",
    "TuningResult",
    "evaluation",
]
