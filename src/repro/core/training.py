"""Training loops and cross-validation for the PnP model.

The paper validates with leave-one-out cross-validation at the *application*
level: all regions of one benchmark form the validation fold while the
remaining applications form the training set, which tests generalisation to
entirely unseen code.  A grouped k-fold variant is provided for the fast
experiment profile (several applications per fold), trading a little fidelity
for a large reduction in training time.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dataset import LabeledSample
from repro.core.model import PnPModel
from repro.nn import functional as F
from repro.nn import precision
from repro.nn.data import GraphDataLoader, collate_graphs
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import Adam, AdamW, Optimizer, SGD
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

__all__ = [
    "TrainingConfig",
    "TrainingHistory",
    "train_model",
    "predict_labels",
    "LeaveOneApplicationOut",
    "GroupedApplicationKFold",
    "run_cross_validation",
]

_LOG = get_logger("core.training")


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyperparameters (Table II defaults)."""

    epochs: int = 40
    batch_size: int = 16
    learning_rate: float = 1e-3
    optimizer: str = "adamw"       # "adamw" (amsgrad) for scenario 1, "adam" for EDP
    weight_decay: float = 1e-4
    amsgrad: bool = True
    #: When True and the samples carry near-optimal target distributions,
    #: train against them (soft cross-entropy); the hard argmin label is
    #: still used for the reported accuracy.
    use_soft_targets: bool = True
    seed: int = 0
    log_every: int = 0             # 0 disables epoch logging
    #: Train at this precision ("float32"/"float64"); ``None`` keeps the
    #: model's own dtype.  A non-None value casts the model in place before
    #: the first step (gradients, optimizer state and updates then all run
    #: at that precision).
    dtype: Optional[str] = None
    #: "samples" (True) reshuffles sample order per epoch; "batches" permutes
    #: fixed batch compositions so memoised EdgePlans are reused across
    #: epochs (see :class:`repro.nn.data.GraphDataLoader`).
    shuffle: Union[bool, str] = True

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in ("adamw", "adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.dtype is not None:
            object.__setattr__(self, "dtype", precision.resolve_dtype(self.dtype).name)
        if not isinstance(self.shuffle, bool) and self.shuffle != "batches":
            raise ValueError(f"shuffle must be True, False or 'batches', got {self.shuffle!r}")


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy trace returned by :func:`train_model`."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


def _make_optimizer(parameters, config: TrainingConfig) -> Optimizer:
    if config.optimizer == "adamw":
        return AdamW(
            parameters,
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
            amsgrad=config.amsgrad,
        )
    if config.optimizer == "adam":
        return Adam(parameters, lr=config.learning_rate, amsgrad=config.amsgrad)
    return SGD(parameters, lr=config.learning_rate, momentum=0.9)


def train_model(
    model: PnPModel,
    samples: Sequence[LabeledSample],
    config: TrainingConfig,
    parameters=None,
) -> TrainingHistory:
    """Train ``model`` on ``samples``; returns the loss/accuracy history.

    Parameters
    ----------
    model, samples, config:
        The model, the labelled dataset and the optimisation hyperparameters.
    parameters:
        Parameter subset to optimise (defaults to all parameters).  The
        transfer-learning experiment passes only the dense-head parameters.
    """
    if not samples:
        raise ValueError("cannot train on an empty dataset")
    if config.dtype is not None:
        # Cast before the optimizer captures the parameter list so moment
        # buffers are created from same-precision gradients.
        model.astype(config.dtype)
    graph_samples = [s.sample for s in samples]
    loader = GraphDataLoader(
        graph_samples,
        batch_size=config.batch_size,
        shuffle=config.shuffle,
        rng=new_rng(config.seed, "training/shuffle"),
    )
    loss_fn = CrossEntropyLoss()
    optimizer = _make_optimizer(
        list(parameters) if parameters is not None else model.parameters(), config
    )

    history = TrainingHistory()
    model.train()
    for epoch in range(config.epochs):
        epoch_loss = 0.0
        correct = 0
        seen = 0
        for batch in loader:
            optimizer.zero_grad()
            logits = model(batch)
            if config.use_soft_targets and batch.target_distributions is not None:
                loss = F.soft_cross_entropy(logits, batch.target_distributions)
            else:
                loss = loss_fn(logits, batch.labels)
            loss.backward()
            optimizer.step()

            epoch_loss += loss.item() * batch.num_graphs
            predictions = np.argmax(logits.data, axis=1)
            correct += int(np.sum(predictions == batch.labels))
            seen += batch.num_graphs
        history.losses.append(epoch_loss / seen)
        history.accuracies.append(correct / seen)
        if config.log_every and (epoch + 1) % config.log_every == 0:
            _LOG.info(
                "epoch %d/%d loss=%.4f acc=%.3f",
                epoch + 1,
                config.epochs,
                history.losses[-1],
                history.accuracies[-1],
            )
    model.eval()
    return history


#: Sentinel distinguishing "``program=`` not passed" from an explicit value,
#: so only external callers of the deprecated kwarg see the warning.
_PROGRAM_UNSET = object()


def predict_labels(
    model: PnPModel,
    samples: Sequence[LabeledSample],
    batch_size: int = 32,
    program=_PROGRAM_UNSET,
) -> np.ndarray:
    """Predicted class index for every sample (in input order).

    Inference is split into the two model stages: each *unique* graph
    (deduplicated by region id) is encoded once by the GNN, then every sample
    — one per (graph, auxiliary-feature) candidate — goes through the dense
    head only.  The performance scenario has one sample per (region, power
    cap), so this avoids re-encoding each region's graph once per cap.

    .. deprecated:: PR 10
        The ``program=`` parameter.  Serving callers should route through
        the :class:`repro.serve.predictor.Predictor` protocol (or
        :meth:`PnPTuner.predict_samples`, which manages its compiled
        programs internally); the bespoke program plumbing here will be
        removed.
    """
    if program is not _PROGRAM_UNSET:
        warnings.warn(
            "predict_labels(program=...) is deprecated; route predictions "
            "through the repro.serve.predictor Predictor protocol (or "
            "PnPTuner.predict_samples, which manages compiled programs "
            "internally)",
            DeprecationWarning,
            stacklevel=2,
        )
    else:
        program = None
    return _predict_labels(model, samples, batch_size=batch_size, program=program)


def _predict_labels(
    model: PnPModel,
    samples: Sequence[LabeledSample],
    batch_size: int = 32,
    program=None,
) -> np.ndarray:
    """Internal (non-deprecated) form of :func:`predict_labels`.

    ``program`` optionally supplies a compiled
    :class:`~repro.nn.inference.InferenceProgram` for ``model`` (see
    ``PnPModel.compile_inference``); both stages then run through the
    autograd-free raw-ndarray runtime — bit-identical to the ``Module``
    path.
    """
    samples = list(samples)
    if not samples:
        return np.empty(0, dtype=np.int64)

    # Group samples by graph identity (region id; anonymous graphs are kept
    # distinct), preserving first-appearance order.  Samples sharing a region
    # id must wrap the same graph — true for any DatasetBuilder output, and
    # checked here so mixed-origin sample lists fail loudly instead of
    # silently reusing the wrong embedding.
    row_of_key: Dict[object, int] = {}
    unique_samples: List[LabeledSample] = []
    sample_rows = np.empty(len(samples), dtype=np.int64)
    for position, labeled in enumerate(samples):
        key: object = labeled.sample.region_id or ("__anonymous__", position)
        row = row_of_key.get(key)
        if row is None:
            row = len(unique_samples)
            row_of_key[key] = row
            unique_samples.append(labeled)
        else:
            first = unique_samples[row].sample
            if not (
                np.array_equal(first.token_ids, labeled.sample.token_ids)
                and np.array_equal(first.node_types, labeled.sample.node_types)
                and np.array_equal(first.edge_index, labeled.sample.edge_index)
                and np.array_equal(first.edge_type, labeled.sample.edge_type)
            ):
                raise ValueError(
                    f"samples with region id {labeled.sample.region_id!r} wrap "
                    "different graphs; predict_labels deduplicates encodings by "
                    "region id and cannot mix graph variants under one id"
                )
        sample_rows[position] = row

    encode = program.encode_pooled if program is not None else model.encode_pooled
    pooled_rows: List[np.ndarray] = []
    for start in range(0, len(unique_samples), batch_size):
        chunk = unique_samples[start : start + batch_size]
        batch = collate_graphs([s.sample for s in chunk])
        pooled_rows.append(encode(batch))
    pooled = np.concatenate(pooled_rows, axis=0)[sample_rows]

    has_aux = samples[0].sample.aux_features is not None
    if any((s.sample.aux_features is not None) != has_aux for s in samples):
        raise ValueError("all samples must consistently have or lack aux_features")
    aux = np.stack([s.sample.aux_features for s in samples]) if has_aux else None
    if program is not None:
        return program.predict_from_pooled(pooled, aux)
    return model.predict_from_pooled(pooled, aux)


# --------------------------------------------------------------------- folds
class LeaveOneApplicationOut:
    """LOOCV splitter at application granularity (the paper's protocol)."""

    def split(
        self, samples: Sequence[LabeledSample]
    ) -> Iterator[Tuple[str, List[LabeledSample], List[LabeledSample]]]:
        """Yield ``(held_out_application, train_samples, validation_samples)``."""
        applications = sorted({s.application for s in samples})
        for application in applications:
            train = [s for s in samples if s.application != application]
            validation = [s for s in samples if s.application == application]
            yield application, train, validation

    def num_folds(self, samples: Sequence[LabeledSample]) -> int:
        return len({s.application for s in samples})


class GroupedApplicationKFold:
    """Fold several applications together (fast profile).

    Applications are dealt round-robin into ``k`` folds after sorting, so the
    assignment is deterministic and every fold mixes PolyBench and proxy
    applications.
    """

    def __init__(self, k: int = 6) -> None:
        if k < 2:
            raise ValueError("k must be at least 2")
        self.k = k

    def split(
        self, samples: Sequence[LabeledSample]
    ) -> Iterator[Tuple[str, List[LabeledSample], List[LabeledSample]]]:
        applications = sorted({s.application for s in samples})
        folds: List[List[str]] = [applications[i :: self.k] for i in range(self.k)]
        for index, fold_apps in enumerate(folds):
            if not fold_apps:
                continue
            fold_set = set(fold_apps)
            train = [s for s in samples if s.application not in fold_set]
            validation = [s for s in samples if s.application in fold_set]
            yield f"fold{index}", train, validation

    def num_folds(self, samples: Sequence[LabeledSample]) -> int:
        return min(self.k, len({s.application for s in samples}))


def run_cross_validation(
    samples: Sequence[LabeledSample],
    model_factory,
    training_config: TrainingConfig,
    splitter=None,
    train_hook=None,
) -> Dict[str, int]:
    """Cross-validate and return ``{(sample key) : predicted label}``.

    Parameters
    ----------
    samples:
        The full labelled dataset.
    model_factory:
        Zero-argument callable returning a fresh :class:`PnPModel` per fold.
    training_config:
        Hyperparameters shared by every fold.
    splitter:
        Fold generator; defaults to :class:`LeaveOneApplicationOut`.
    train_hook:
        Optional callable ``(model, train_samples) -> parameters`` invoked
        before training each fold; used by the transfer-learning experiment
        to load pre-trained GNN weights and restrict the optimised
        parameters.  Returning ``None`` trains all parameters.

    Returns
    -------
    dict
        Mapping ``sample_key -> predicted_label`` where ``sample_key`` is
        ``(region_id, power_cap)`` — ``power_cap`` is ``None`` for EDP
        samples.
    """
    splitter = splitter if splitter is not None else LeaveOneApplicationOut()
    predictions: Dict[str, int] = {}
    for fold_name, train, validation in splitter.split(samples):
        model = model_factory()
        parameters = train_hook(model, train) if train_hook is not None else None
        train_model(model, train, training_config, parameters=parameters)
        fold_predictions = predict_labels(model, validation)
        for labeled, predicted in zip(validation, fold_predictions):
            predictions[_sample_key(labeled)] = int(predicted)
        _LOG.info("fold %s: %d validation samples", fold_name, len(validation))
    return predictions


def _sample_key(sample: LabeledSample) -> Tuple[str, Optional[float]]:
    return (sample.region_id, sample.power_cap)
