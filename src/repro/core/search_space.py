"""The tuning search space (Table I of the paper).

Per system the space is the cross product of

* 4 power caps (Skylake: 75/100/120/150 W; Haswell: 40/60/70/85 W),
* 6 thread counts (Skylake: 1,4,8,16,32,64; Haswell: 1,2,4,8,16,32),
* 3 scheduling policies (static, dynamic, guided),
* 7 chunk sizes (1, 8, 32, 64, 128, 256, 512),

giving 6·3·7 = 126 OpenMP configurations per cap, 504 in total, plus the
default OpenMP configuration at each of the four caps — the paper's 508
"valid configurations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hw.processor import get_processor
from repro.openmp.config import OpenMPConfig, ScheduleKind, default_config

__all__ = ["POWER_CAPS", "THREAD_VALUES", "CHUNK_SIZES", "SCHEDULES", "SearchSpace"]

#: Table I power limits (watts) per system.
POWER_CAPS: Dict[str, Tuple[float, ...]] = {
    "skylake": (75.0, 100.0, 120.0, 150.0),
    "haswell": (40.0, 60.0, 70.0, 85.0),
}

#: Table I thread counts per system.
THREAD_VALUES: Dict[str, Tuple[int, ...]] = {
    "skylake": (1, 4, 8, 16, 32, 64),
    "haswell": (1, 2, 4, 8, 16, 32),
}

#: Table I scheduling policies.
SCHEDULES: Tuple[ScheduleKind, ...] = (ScheduleKind.STATIC, ScheduleKind.DYNAMIC, ScheduleKind.GUIDED)

#: Table I chunk sizes.
CHUNK_SIZES: Tuple[int, ...] = (1, 8, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class SearchSpace:
    """The per-system tuning space with stable configuration indexing.

    Index conventions (used as model class labels):

    * *OpenMP-configuration index* — 0..125 for the cross-product
      configurations in (threads, schedule, chunk) lexicographic order,
      followed by index 126 for the OpenMP default configuration.
    * *Joint index* (EDP scenario) — ``cap_index * 127 + config_index``,
      covering all 508 (power cap, configuration) combinations.
    """

    system: str

    def __post_init__(self) -> None:
        if self.system not in POWER_CAPS:
            raise ValueError(f"unknown system {self.system!r}; expected one of {sorted(POWER_CAPS)}")

    # ------------------------------------------------------------ basic sets
    @property
    def power_caps(self) -> Tuple[float, ...]:
        return POWER_CAPS[self.system]

    @property
    def thread_values(self) -> Tuple[int, ...]:
        return THREAD_VALUES[self.system]

    @property
    def tdp_watts(self) -> float:
        return max(self.power_caps)

    @property
    def default_configuration(self) -> OpenMPConfig:
        """The OpenMP default: all hardware threads, static, default chunk."""
        return default_config(get_processor(self.system).hardware_threads)

    def omp_configurations(self) -> List[OpenMPConfig]:
        """The 126 cross-product OpenMP configurations (excluding the default)."""
        configs = []
        for threads in self.thread_values:
            for schedule in SCHEDULES:
                for chunk in CHUNK_SIZES:
                    configs.append(OpenMPConfig(threads, schedule, chunk))
        return configs

    def candidate_configurations(self) -> List[OpenMPConfig]:
        """The per-cap label space: 126 configurations + the default (127)."""
        return self.omp_configurations() + [self.default_configuration]

    # -------------------------------------------------------------- indexing
    @property
    def num_omp_configurations(self) -> int:
        return len(self.thread_values) * len(SCHEDULES) * len(CHUNK_SIZES) + 1

    @property
    def num_joint_configurations(self) -> int:
        """Size of the (power cap × configuration) space — 508 in the paper."""
        return len(self.power_caps) * self.num_omp_configurations

    def config_index(self, config: OpenMPConfig) -> int:
        """Index of ``config`` in :meth:`candidate_configurations`."""
        if config == self.default_configuration:
            return self.num_omp_configurations - 1
        try:
            t = self.thread_values.index(config.num_threads)
            s = SCHEDULES.index(config.schedule)
            c = CHUNK_SIZES.index(config.chunk_size)
        except ValueError as exc:
            raise KeyError(f"configuration {config} is not in the search space") from exc
        return (t * len(SCHEDULES) + s) * len(CHUNK_SIZES) + c

    def config_from_index(self, index: int) -> OpenMPConfig:
        """Inverse of :meth:`config_index`."""
        if not 0 <= index < self.num_omp_configurations:
            raise IndexError(f"configuration index {index} out of range")
        if index == self.num_omp_configurations - 1:
            return self.default_configuration
        c = index % len(CHUNK_SIZES)
        s = (index // len(CHUNK_SIZES)) % len(SCHEDULES)
        t = index // (len(CHUNK_SIZES) * len(SCHEDULES))
        return OpenMPConfig(self.thread_values[t], SCHEDULES[s], CHUNK_SIZES[c])

    def cap_index(self, power_cap: float) -> int:
        """Index of a power cap within :attr:`power_caps`."""
        for i, cap in enumerate(self.power_caps):
            if abs(cap - power_cap) < 1e-9:
                return i
        raise KeyError(f"power cap {power_cap} is not in the search space for {self.system}")

    def joint_index(self, power_cap: float, config: OpenMPConfig) -> int:
        """Index of a (cap, configuration) pair in the 508-point joint space."""
        return self.cap_index(power_cap) * self.num_omp_configurations + self.config_index(config)

    def joint_from_index(self, index: int) -> Tuple[float, OpenMPConfig]:
        """Inverse of :meth:`joint_index`."""
        if not 0 <= index < self.num_joint_configurations:
            raise IndexError(f"joint index {index} out of range")
        cap = self.power_caps[index // self.num_omp_configurations]
        return cap, self.config_from_index(index % self.num_omp_configurations)

    # ---------------------------------------------------------------- misc
    def normalized_cap(self, power_cap: float) -> float:
        """Power cap scaled to [0, 1] over the system's cap range."""
        low, high = min(self.power_caps), max(self.power_caps)
        if high == low:
            return 1.0
        return (float(power_cap) - low) / (high - low)

    def describe(self) -> Dict[str, object]:
        """Summary matching Table I (used by reports and tests)."""
        return {
            "system": self.system,
            "power_caps": list(self.power_caps),
            "thread_values": list(self.thread_values),
            "schedules": [s.value for s in SCHEDULES],
            "chunk_sizes": list(CHUNK_SIZES),
            "num_omp_configurations": self.num_omp_configurations,
            "num_joint_configurations": self.num_joint_configurations,
        }
