"""Dataset construction for the PnP tuner.

For every OpenMP region the builder produces a flow-aware code graph (via the
IR code generator, the outliner and the PROGRAML-style graph builder) plus a
class label obtained from the measurement database:

* **performance scenario** — one sample per (region, power cap); the label is
  the index of the fastest configuration at that cap and the auxiliary
  feature vector carries the normalised power cap (plus, for the "dynamic"
  model variant, the five PAPI counters of Section IV-B);
* **EDP scenario** — one sample per region; the label is the joint
  (power cap, configuration) index minimising the energy-delay product.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.benchsuite.codegen import generate_application_module, region_function_name
from repro.benchsuite.registry import regions_by_application
from repro.core.measurements import MeasurementDatabase
from repro.core.search_space import SearchSpace
from repro.graphs.encoder import GraphEncoder
from repro.graphs.flowgraph import FlowGraph
from repro.graphs.programl import build_flow_graph
from repro.graphs.vocabulary import Vocabulary, build_default_vocabulary
from repro.nn import precision
from repro.ir.outline import extract_outlined_regions
from repro.nn.data import GraphSample
from repro.openmp.region import RegionCharacteristics
from repro.utils.logging import get_logger

__all__ = ["TuningScenario", "LabeledSample", "DatasetBuilder"]

_LOG = get_logger("core.dataset")


class TuningScenario(enum.Enum):
    """The two tuning objectives of the paper."""

    PERFORMANCE = "performance"   # fastest execution at a given power cap
    EDP = "edp"                   # minimise energy-delay product over caps × configs


@dataclass(eq=False)
class LabeledSample:
    """One training/validation sample: a graph plus labelling metadata."""

    sample: GraphSample
    region_id: str
    application: str
    scenario: TuningScenario
    power_cap: Optional[float] = None

    @property
    def label(self) -> int:
        return self.sample.label


class DatasetBuilder:
    """Builds graph datasets for the two tuning scenarios.

    Parameters
    ----------
    database:
        Measurement database providing the labels (and PAPI counters).
    vocabulary:
        Token vocabulary; defaults to the closed default vocabulary so token
        ids are identical across systems (a requirement for transfer
        learning).
    regions_by_app:
        Mapping application → regions; defaults to the full benchmark suite.
    seed:
        Seed forwarded to the IR code generator.
    """

    def __init__(
        self,
        database: MeasurementDatabase,
        vocabulary: Optional[Vocabulary] = None,
        regions_by_app: Optional[Dict[str, List[RegionCharacteristics]]] = None,
        seed: int = 0,
        soft_target_temperature: Optional[float] = 0.05,
    ) -> None:
        """``soft_target_temperature`` controls the near-optimal soft labels.

        The hard label is always the argmin configuration; additionally, a
        target distribution ``p_i ∝ exp(-(m_i / m_best - 1) / τ)`` (with
        ``m`` the measured time or EDP) is attached so training can reward
        *every* near-optimal configuration.  Set it to ``None`` to train on
        hard labels only (plain cross-entropy on the argmin class).
        """
        if soft_target_temperature is not None and soft_target_temperature <= 0:
            raise ValueError("soft_target_temperature must be positive or None")
        self.soft_target_temperature = soft_target_temperature
        self.database = database
        self.search_space: SearchSpace = database.search_space
        self.vocabulary = vocabulary if vocabulary is not None else build_default_vocabulary()
        self.encoder = GraphEncoder(self.vocabulary)
        self._regions_by_app = (
            dict(regions_by_app) if regions_by_app is not None else regions_by_application()
        )
        self.seed = seed
        self._graphs: Optional[Dict[str, FlowGraph]] = None
        self._counters: Dict[str, np.ndarray] = {}
        # Content fingerprint of the characteristics each cached graph was
        # built from: a region re-submitted under the same id with different
        # characteristics invalidates its graph (and counters) instead of
        # silently serving the stale structure.
        self._graph_fingerprints: Dict[str, str] = {}
        # Structural (label-free, aux-free) inference samples memoised per
        # region content — vocabulary encoding is a Python token loop, so
        # cold sweeps over many regions shouldn't pay it per query.
        self._structural_samples: Dict[str, Tuple[str, GraphSample]] = {}

    # ---------------------------------------------------------------- graphs
    def region_graphs(self) -> Dict[str, FlowGraph]:
        """Flow graph of every region (built once, keyed by region id)."""
        if self._graphs is not None:
            return self._graphs
        graphs: Dict[str, FlowGraph] = {}
        for application, regions in self._regions_by_app.items():
            module = generate_application_module(application, list(regions), seed=self.seed)
            outlined = extract_outlined_regions(module)
            for region in regions:
                function_name = region_function_name(region)
                if function_name not in outlined:
                    raise RuntimeError(
                        f"outlined function {function_name!r} missing for region {region.region_id!r}"
                    )
                graphs[region.region_id] = build_flow_graph(
                    outlined[function_name], name=region.region_id
                )
                self._graph_fingerprints[region.region_id] = region.fingerprint()
        self._graphs = graphs
        _LOG.info("built %d region graphs", len(graphs))
        return graphs

    def regions(self) -> List[RegionCharacteristics]:
        return [r for regions in self._regions_by_app.values() for r in regions]

    @property
    def regions_by_app(self) -> Dict[str, List[RegionCharacteristics]]:
        """The application → regions mapping this builder covers (a copy)."""
        return {app: list(regions) for app, regions in self._regions_by_app.items()}

    def applications(self) -> List[str]:
        return list(self._regions_by_app)

    # -------------------------------------------------------------- counters
    def performance_counters(self, region_id: str) -> np.ndarray:
        """Normalised PAPI counters of a region (profiled at the default config).

        The paper's dynamic variant needs two profiling executions per region
        at inference time; here the counters are deterministic functions of
        the region and machine, profiled once and cached.
        """
        if region_id not in self._counters:
            region = self.database.region(region_id)
            counters = self.database.engine.profile_counters(
                region, self.search_space.default_configuration
            )
            self._counters[region_id] = counters.normalized()
        return self._counters[region_id]

    # --------------------------------------------------------------- samples
    def performance_samples(
        self,
        power_caps: Optional[Sequence[float]] = None,
        include_counters: bool = False,
    ) -> List[LabeledSample]:
        """Samples for the power-constrained performance scenario."""
        caps = tuple(power_caps) if power_caps is not None else self.search_space.power_caps
        graphs = self.region_graphs()
        samples: List[LabeledSample] = []
        for application, regions in self._regions_by_app.items():
            for region in regions:
                for cap in caps:
                    label = self.database.label_by_time(region.region_id, cap)
                    aux = self._aux_features(region.region_id, cap, include_counters)
                    graph_sample = self.encoder.encode(
                        graphs[region.region_id],
                        label=label,
                        aux_features=aux,
                        region_id=region.region_id,
                    )
                    graph_sample.target_distribution = self._performance_soft_target(
                        region.region_id, cap
                    )
                    samples.append(
                        LabeledSample(
                            sample=graph_sample,
                            region_id=region.region_id,
                            application=application,
                            scenario=TuningScenario.PERFORMANCE,
                            power_cap=cap,
                        )
                    )
        return samples

    def edp_samples(self, include_counters: bool = False) -> List[LabeledSample]:
        """Samples for the EDP scenario (one per region)."""
        graphs = self.region_graphs()
        samples: List[LabeledSample] = []
        for application, regions in self._regions_by_app.items():
            for region in regions:
                label = self.database.label_by_edp(region.region_id)
                aux = self._edp_aux_features(region.region_id, include_counters)
                graph_sample = self.encoder.encode(
                    graphs[region.region_id],
                    label=label,
                    aux_features=aux,
                    region_id=region.region_id,
                )
                graph_sample.target_distribution = self._edp_soft_target(region.region_id)
                samples.append(
                    LabeledSample(
                        sample=graph_sample,
                        region_id=region.region_id,
                        application=application,
                        scenario=TuningScenario.EDP,
                        power_cap=None,
                    )
                )
        return samples

    def inference_sample(
        self,
        region: RegionCharacteristics,
        power_cap: Optional[float] = None,
        include_counters: bool = False,
        scenario: TuningScenario = TuningScenario.PERFORMANCE,
    ) -> LabeledSample:
        """Build an unlabeled sample for a (possibly unseen) region.

        Graphs are cached per region id *and* content fingerprint: a region
        re-submitted under a known id with changed characteristics gets a
        freshly generated graph (and its cached PAPI counters dropped), and
        the measurement database's registration is updated, so no stale
        structure leaks into the prediction.
        """
        graphs = self.region_graphs()
        fingerprint = region.fingerprint()
        graph = graphs.get(region.region_id)
        if graph is None or self._graph_fingerprints.get(region.region_id) != fingerprint:
            module = generate_application_module(region.application, [region], seed=self.seed)
            outlined = extract_outlined_regions(module)
            graph = build_flow_graph(outlined[region_function_name(region)], name=region.region_id)
            graphs[region.region_id] = graph
            self._graph_fingerprints[region.region_id] = fingerprint
            self._counters.pop(region.region_id, None)
            self._structural_samples.pop(region.region_id, None)
            self.database.add_region(region)
        if scenario == TuningScenario.PERFORMANCE:
            if power_cap is None:
                raise ValueError("power_cap is required for the performance scenario")
            aux = self._aux_features(region.region_id, power_cap, include_counters)
        else:
            aux = self._edp_aux_features(region.region_id, include_counters)
        memo = self._structural_samples.get(region.region_id)
        if memo is None or memo[0] != fingerprint:
            structural = self.encoder.encode(graph, label=-1, region_id=region.region_id)
            self._structural_samples[region.region_id] = (fingerprint, structural)
        else:
            structural = memo[1]
        # Per-query sample: the memoised index arrays by reference, the
        # query's auxiliary features attached — exactly the sample a fresh
        # ``encoder.encode`` call would build.
        graph_sample = replace(structural, aux_features=aux)
        return LabeledSample(
            sample=graph_sample,
            region_id=region.region_id,
            application=region.application,
            scenario=scenario,
            power_cap=power_cap,
        )

    # -------------------------------------------------------- feature vectors
    def aux_feature_matrix(
        self,
        region_id: str,
        power_caps: Sequence[float],
        include_counters: bool = False,
    ) -> np.ndarray:
        """Auxiliary feature rows for sweeping many power caps on one region.

        Used by :meth:`repro.core.tuner.PnPTuner.predict_sweep` to batch all
        cap candidates through the dense head after a single graph encoding.
        """
        return np.stack(
            [self._aux_features(region_id, cap, include_counters) for cap in power_caps]
        )

    def edp_aux_features(self, region_id: str, include_counters: bool = False) -> np.ndarray:
        """Auxiliary feature row of one EDP-scenario query.

        Used by the tuner's warm ``predict`` path: when a region's pooled
        embedding is already cached (same id *and* content fingerprint), the
        aux row is the only per-query input left, so the full inference
        sample need not be rebuilt.  Requires the region to be registered
        (any cold query on it registers it first).
        """
        return self._edp_aux_features(region_id, include_counters)

    def aux_feature_dim(self, scenario: TuningScenario, include_counters: bool) -> int:
        """Dimensionality of the auxiliary feature vector for a scenario."""
        if scenario == TuningScenario.PERFORMANCE:
            return 1 + (5 if include_counters else 0)
        return 1 + (5 if include_counters else 0)

    def _soft_distribution(self, metrics: np.ndarray) -> Optional[np.ndarray]:
        """Near-optimal target distribution over classes from measured metrics."""
        if self.soft_target_temperature is None:
            return None
        metrics = np.asarray(metrics, dtype=precision.get_default_dtype())
        best = metrics.min()
        relative = metrics / best - 1.0
        weights = np.exp(-relative / self.soft_target_temperature)
        return weights / weights.sum()

    def _performance_soft_target(self, region_id: str, cap: float) -> Optional[np.ndarray]:
        if self.soft_target_temperature is None:
            return None
        times = np.array([r.time_s for r in self.database.sweep_region(region_id, cap)])
        return self._soft_distribution(times)

    def _edp_soft_target(self, region_id: str) -> Optional[np.ndarray]:
        if self.soft_target_temperature is None:
            return None
        edps = []
        for cap in self.search_space.power_caps:
            edps.extend(r.edp for r in self.database.sweep_region(region_id, cap))
        return self._soft_distribution(np.array(edps))

    def _aux_features(self, region_id: str, cap: float, include_counters: bool) -> np.ndarray:
        features = [self.search_space.normalized_cap(cap)]
        if include_counters:
            features.extend(self.performance_counters(region_id).tolist())
        # Ingest boundary: auxiliary features adopt the active policy dtype.
        return np.asarray(features, dtype=precision.get_default_dtype())

    def _edp_aux_features(self, region_id: str, include_counters: bool) -> np.ndarray:
        # The EDP model chooses the cap itself; its auxiliary input carries a
        # constant bias slot (so static and dynamic variants share the code
        # path) plus, optionally, the counters.
        features = [1.0]
        if include_counters:
            features.extend(self.performance_counters(region_id).tolist())
        return np.asarray(features, dtype=precision.get_default_dtype())
