"""The user-facing PnP tuner API.

:class:`PnPTuner` wraps dataset construction, model training and inference
behind a small interface:

>>> tuner = PnPTuner(system="haswell", objective="time")
>>> tuner.fit()                                    # train on the benchmark suite
>>> result = tuner.predict(my_region, power_cap=60.0)
>>> result.config                                  # the OpenMP configuration to use

With ``objective="edp"`` the tuner additionally chooses the power cap:

>>> tuner = PnPTuner(system="skylake", objective="edp")
>>> tuner.fit()
>>> result = tuner.predict(my_region)
>>> result.power_cap, result.config

No code execution of the target region is required for ``predict`` when the
tuner is configured with static features only (the paper's headline setting);
with ``include_counters=True`` the tuner additionally profiles the region
once to collect its PAPI counters (the paper's "dynamic" variant).

Inference uses the split encoder/head engine: the pooled graph embedding of
each region (independent of the power cap and other auxiliary features) is
computed once and held in an LRU cache keyed by (region id, content
fingerprint, dtype), so repeated queries on a region — and in particular
:meth:`PnPTuner.predict_sweep`, which scores many power caps in one
dense-head batch — skip the GNN entirely after the first call.  The cache
is invalidated whenever the model weights change (``fit`` /
``load_state_dict``), and a region whose characteristics change under the
same id misses the cache instead of serving a stale embedding.

:meth:`PnPTuner.predict_sweep_many` extends the amortisation across
*regions*: all cache-miss graphs of a multi-region sweep are collated into
one batch, encoded by a single GNN pass, and every (region, cap) pair is
scored through one dense-head product — the batched layer under
:class:`repro.serve.SweepServer`'s process-sharded fleet serving.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import DatasetBuilder, LabeledSample, TuningScenario
from repro.core.measurements import MeasurementDatabase, get_measurement_database
from repro.core.model import ModelConfig, PnPModel
from repro.core.search_space import SearchSpace
from repro.core.training import TrainingConfig, _predict_labels, train_model
from repro.nn import precision
from repro.nn.data import GraphSample, collate_graphs
from repro.nn.inference import InferenceProgram
from repro.openmp.config import OpenMPConfig
from repro.openmp.region import RegionCharacteristics
from repro.utils.caching import LRUCache
from repro.utils.logging import get_logger

__all__ = ["TuningResult", "PnPTuner", "labels_to_performance_selections", "labels_to_edp_selections"]

_LOG = get_logger("core.tuner")


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning query."""

    region_id: str
    objective: str
    config: OpenMPConfig
    power_cap: Optional[float]
    label: int

    def describe(self) -> str:
        cap = f" @ {self.power_cap:.0f}W" if self.power_cap is not None else ""
        return f"{self.region_id}: {self.config.label()}{cap} (objective={self.objective})"


class PnPTuner:
    """Static (or static+counters) GNN-based OpenMP auto-tuner.

    Parameters
    ----------
    system:
        Target system name ("haswell" or "skylake").
    objective:
        ``"time"`` — fastest configuration at a prescribed power cap;
        ``"edp"`` — jointly choose power cap and configuration minimising EDP.
    include_counters:
        Add PAPI counters to the feature set (the paper's dynamic variant).
    model_config / training_config:
        Optional overrides of the network and optimisation hyperparameters.
    database:
        Measurement database used for labels; defaults to the shared per-
        process database over the full benchmark suite.
    seed:
        Controls weight initialisation, IR generation and shuffling.
    dtype:
        Model precision ("float64" default, "float32" fast path).  Overrides
        the ``model_config`` dtype when both are given.  Independently of the
        training precision, :meth:`predict_sweep` can serve a sweep at a
        different precision via its own ``dtype=`` argument (the weights are
        cast once and cached).
    """

    #: Capacity of the per-tuner pooled-embedding LRU cache (regions×dtypes).
    EMBEDDING_CACHE_SIZE = 512

    #: Route every inference entry point through compiled
    #: :class:`~repro.nn.inference.InferenceProgram`\ s (autograd-free
    #: raw-ndarray kernels, bit-identical to the ``Module`` path).  Disable
    #: to fall back to the ``Module`` forward — retained as the reference
    #: the benchmarks compare against.
    use_inference_programs = True

    #: Memoised collated batches (and their EdgePlans) per fleet composition
    #: served by :meth:`predict_sweep_many` — content-addressed by the
    #: regions' (id, fingerprint) pairs, so repeated cold sweeps over the
    #: same fleet skip collation and plan construction entirely.
    SWEEP_BATCH_MEMO_SIZE = 32

    def __init__(
        self,
        system: str,
        objective: str = "time",
        include_counters: bool = False,
        model_config: Optional[ModelConfig] = None,
        training_config: Optional[TrainingConfig] = None,
        database: Optional[MeasurementDatabase] = None,
        seed: int = 0,
        dtype: Optional[str] = None,
    ) -> None:
        if objective not in ("time", "edp"):
            raise ValueError("objective must be 'time' or 'edp'")
        self.system = system
        self.objective = objective
        self.include_counters = include_counters
        self.seed = seed
        self.database = database if database is not None else get_measurement_database(system, seed=seed)
        self.search_space: SearchSpace = self.database.search_space
        self.builder = DatasetBuilder(self.database, seed=seed)
        self.scenario = TuningScenario.PERFORMANCE if objective == "time" else TuningScenario.EDP

        num_classes = (
            self.search_space.num_omp_configurations
            if objective == "time"
            else self.search_space.num_joint_configurations
        )
        aux_dim = self.builder.aux_feature_dim(self.scenario, include_counters)
        default_optimizer = "adamw" if objective == "time" else "adam"
        self.model_config = model_config if model_config is not None else ModelConfig(
            vocabulary_size=len(self.builder.vocabulary),
            num_classes=num_classes,
            aux_dim=aux_dim,
            seed=seed,
        )
        if dtype is not None:
            self.model_config = replace(
                self.model_config, dtype=precision.resolve_dtype(dtype).name
            )
        self.training_config = training_config if training_config is not None else TrainingConfig(
            optimizer=default_optimizer, seed=seed
        )
        self.model = PnPModel(self.model_config)
        self._fitted = False
        # Parameter arrays the serving caches were built from (identity
        # snapshot).  Every serving entry point compares against the model's
        # current arrays, so a weight change that bypasses the tuner
        # (direct load_state_dict/astype/training on self.model) flushes the
        # embedding cache, cast models and compiled programs instead of
        # serving stale results.
        self._served_arrays: Optional[List[np.ndarray]] = None
        # Pooled graph embeddings are independent of the auxiliary features,
        # so repeated queries (and power-cap sweeps) on the same region reuse
        # one GNN encoding.  Keys are (region id, content fingerprint,
        # dtype) — the fingerprint catches a region whose characteristics
        # change under the same id — and the cache is invalidated whenever
        # the weights change.
        self._embedding_cache: LRUCache = LRUCache(maxsize=self.EMBEDDING_CACHE_SIZE)
        # Weight casts of self.model at other precisions, built lazily for
        # dtype-overridden sweeps and invalidated with the embedding cache.
        self._cast_models: Dict[str, PnPModel] = {}
        # Compiled inference programs per serving dtype (autograd-free
        # raw-ndarray runtime), invalidated with the cast models whenever
        # the weights change; InferenceProgram.stale() additionally catches
        # any weight rebinding that bypasses the tuner (direct
        # load_state_dict/astype/training on the underlying model).
        self._programs: Dict[str, InferenceProgram] = {}
        # Fleet-composition batch memo for predict_sweep_many.  Keyed by
        # content (ids + fingerprints), so it survives weight changes — the
        # graphs don't depend on the weights — and never serves stale
        # structure.
        self._sweep_batch_memo: LRUCache = LRUCache(maxsize=self.SWEEP_BATCH_MEMO_SIZE)
        # Micro-model runtimes (repro.distill.runtime.MicroRuntime) serving
        # through this tuner's head.  Weak: the tuner accounts for and sheds
        # their buffers (inference_cache_stats / clear_inference_buffers)
        # but never keeps a retired tier alive.
        self._micro_runtimes: "weakref.WeakSet" = weakref.WeakSet()

    # ------------------------------------------------------------------ fit
    def build_training_samples(
        self, power_caps: Optional[Sequence[float]] = None
    ) -> List[LabeledSample]:
        """The labelled training set for the configured objective."""
        if self.objective == "time":
            return self.builder.performance_samples(
                power_caps=power_caps, include_counters=self.include_counters
            )
        return self.builder.edp_samples(include_counters=self.include_counters)

    def fit(
        self,
        samples: Optional[Sequence[LabeledSample]] = None,
        parameters=None,
    ) -> "PnPTuner":
        """Train the model (on the benchmark suite unless ``samples`` given)."""
        samples = list(samples) if samples is not None else self.build_training_samples()
        history = train_model(self.model, samples, self.training_config, parameters=parameters)
        self._fitted = True
        self._embedding_cache.clear()
        self._cast_models.clear()
        self._programs.clear()
        self._served_arrays = [param.data for param in self.model.parameters()]
        _LOG.info(
            "PnP tuner fitted (%s, %s): final loss %.4f, accuracy %.3f",
            self.system,
            self.objective,
            history.final_loss,
            history.final_accuracy,
        )
        return self

    # -------------------------------------------------------------- predict
    def _model_at(self, dtype: Optional[str]) -> PnPModel:
        """``self.model`` or a cached weight-cast copy at ``dtype``."""
        if dtype is None:
            return self.model
        resolved = precision.resolve_dtype(dtype)
        if resolved == self.model.dtype:
            return self.model
        cast = self._cast_models.get(resolved.name)
        if cast is None:
            cast = PnPModel(replace(self.model_config, dtype=resolved.name))
            # Module.load_state_dict casts each value to the parameter dtype.
            cast.load_state_dict(self.model.state_dict())
            cast.eval()
            self._cast_models[resolved.name] = cast
        return cast

    def _program_for(
        self, model: Optional[PnPModel] = None, force: bool = False
    ) -> Optional[InferenceProgram]:
        """The cached compiled program serving ``model`` (or ``None``).

        Programs are compiled lazily per serving dtype and cached until the
        weights change (``fit`` / :meth:`load_state_dict` clear the cache; a
        direct ``load_state_dict``/``astype`` on the model is caught by
        :meth:`InferenceProgram.stale`).  Returns ``None`` when program
        routing is disabled (``use_inference_programs``) and ``force`` is
        not set.
        """
        if not (self.use_inference_programs or force):
            return None
        model = model if model is not None else self.model
        key = model.dtype.name
        program = self._programs.get(key)
        if program is None or program.stale():
            program = model.compile_inference()
            self._programs[key] = program
        return program

    def compile_inference(self, dtype: Optional[str] = None) -> InferenceProgram:
        """Compile (and cache) the serving program at ``dtype``.

        Returns the same cached :class:`~repro.nn.inference.InferenceProgram`
        the tuner's ``predict`` / ``predict_sweep`` / ``predict_sweep_many``
        entry points execute, compiling it eagerly — serving replicas (e.g.
        :class:`repro.serve.SweepServer` workers) call this at start-up so
        the first query pays no lowering cost.
        """
        self._require_fitted()
        program = self._program_for(self._model_at(dtype), force=True)
        assert program is not None  # force=True always compiles
        return program

    def _encode_pooled(self, model: PnPModel, batch) -> np.ndarray:
        """One encoder pass — compiled program when enabled, Module otherwise."""
        program = self._program_for(model)
        if program is not None:
            return program.encode_pooled(batch)
        return model.encode_pooled(batch)

    def _head_labels(
        self, model: PnPModel, pooled: np.ndarray, aux: Optional[np.ndarray]
    ) -> np.ndarray:
        """Dense-head label prediction — program-routed like the encoder."""
        program = self._program_for(model)
        if program is not None:
            return program.predict_from_pooled(pooled, aux)
        return model.predict_from_pooled(pooled, aux)

    def _embedding_key(
        self, region: RegionCharacteristics, model: PnPModel
    ) -> Tuple[str, str, str]:
        """LRU key of a region's pooled embedding: (id, fingerprint, dtype)."""
        return (region.region_id, region.fingerprint(), model.dtype.name)

    def _pooled_embedding(
        self,
        sample: GraphSample,
        model: Optional[PnPModel] = None,
        key: Optional[Tuple[str, str, str]] = None,
    ) -> np.ndarray:
        """The region's pooled graph embedding, via the fingerprinted LRU cache."""
        model = model if model is not None else self.model
        if key is not None:
            cached = self._embedding_cache.get(key)
            if cached is not None:
                return cached
        pooled = self._encode_pooled(model, collate_graphs([sample]))
        if key is not None:
            self._embedding_cache.put(key, pooled)
        return pooled

    def predict(
        self, region: RegionCharacteristics, power_cap: Optional[float] = None
    ) -> TuningResult:
        """Tune one region (no execution of the region is required).

        Point predictions share the fingerprint-keyed pooled-embedding cache
        with the sweep entry points: a repeated query on an unchanged region
        skips graph construction and the GNN entirely — the performance
        objective delegates to :meth:`predict_sweep`, and the EDP warm path
        rebuilds only the auxiliary feature row (a cache hit guarantees the
        region was fully registered with these exact characteristics).
        """
        self._require_fitted()
        if self.objective == "time":
            if power_cap is None:
                raise ValueError("power_cap is required for the performance scenario")
            return self.predict_sweep(region, [power_cap])[0]
        key = self._embedding_key(region, self.model)
        pooled = self._embedding_cache.get(key)
        if pooled is not None and not self.include_counters:
            # Static features: the EDP aux row is registration-independent,
            # so a cached embedding answers the query without rebuilding the
            # inference sample at all.
            aux = self.builder.edp_aux_features(region.region_id)
        else:
            # Cold — or the dynamic variant, whose counters must come from
            # *this* region version's registration: inference_sample
            # re-registers a changed region before profiling, and the
            # embedding cache still skips the encoder on a warm key.
            sample = self.builder.inference_sample(
                region,
                power_cap=power_cap,
                include_counters=self.include_counters,
                scenario=self.scenario,
            )
            pooled = self._pooled_embedding(sample.sample, key=key)
            aux = sample.sample.aux_features
        aux = aux[None, :] if aux is not None else None
        label = int(self._head_labels(self.model, pooled, aux)[0])
        return self._result_from_label(region.region_id, label, power_cap)

    def predict_sweep(
        self,
        region: RegionCharacteristics,
        power_caps: Sequence[float],
        dtype: Optional[str] = None,
    ) -> List[TuningResult]:
        """Tune one region at many power caps with a single graph encoding.

        The GNN encoder runs (at most) once — reusing the pooled-embedding
        cache when warm — and all cap candidates are batched through the
        dense head, making per-candidate cost a single small matrix product.
        Only meaningful for the ``"time"`` objective, where the power cap is
        an auxiliary input; the EDP model chooses the cap itself, so a sweep
        degenerates to :meth:`predict`.

        ``dtype`` overrides the serving precision for this sweep: the model
        weights are cast once (cached until the next ``fit``/weight load) and
        the encoding + dense-head batch run entirely at that precision —
        e.g. ``dtype="float32"`` halves the sweep's memory traffic on a
        float64-trained tuner.
        """
        self._require_fitted()
        if self.objective != "time":
            raise ValueError(
                "predict_sweep sweeps the power-cap auxiliary input and needs "
                "objective='time'; the EDP objective picks the cap itself — "
                "use predict()"
            )
        caps = [float(cap) for cap in power_caps]
        if not caps:
            return []
        model = self._model_at(dtype)
        key = self._embedding_key(region, model)
        # Warm path: a cached embedding means the region was fully prepared
        # (graph built, registered, counters profiled) by an earlier query
        # with these exact characteristics, so the sample construction can
        # be skipped outright.
        pooled = self._embedding_cache.get(key)
        if pooled is None:
            sample = self.builder.inference_sample(
                region,
                power_cap=caps[0],
                include_counters=self.include_counters,
                scenario=self.scenario,
            )
            pooled = self._pooled_embedding(sample.sample, model, key=key)
        aux = self.builder.aux_feature_matrix(
            region.region_id, caps, include_counters=self.include_counters
        )
        rows = np.repeat(pooled, len(caps), axis=0)
        labels = self._head_labels(model, rows, aux)
        return [
            self._result_from_label(region.region_id, int(label), cap)
            for cap, label in zip(caps, labels)
        ]

    def predict_sweep_many(
        self,
        regions: Sequence[RegionCharacteristics],
        power_caps: Sequence[float],
        dtype: Optional[str] = None,
    ) -> List[List[TuningResult]]:
        """Sweep many regions at many power caps with one batched encoding.

        The fleet-serving entry point: all cache-miss region graphs are
        collated into a *single* batch and encoded by one GNN forward pass
        (one :class:`~repro.nn.data.EdgePlan`, one set of matrix products for
        R graphs instead of R), the pooled rows are split back into the
        per-(region, dtype) LRU cache, and every (region, cap) pair is scored
        through a single dense-head batch.  Results are returned per region,
        in input order — element ``i`` equals ``predict_sweep(regions[i],
        power_caps, dtype=dtype)``, and on this suite's graphs the batched
        encoding is bit-identical to the per-region path (row-independent
        kernels; see ``tests/core/test_sweep_many.py``).

        Duplicate regions (same id and content fingerprint) are encoded
        once.  ``dtype`` overrides the serving precision exactly as in
        :meth:`predict_sweep`.
        """
        self._require_fitted()
        if self.objective != "time":
            raise ValueError(
                "predict_sweep_many sweeps the power-cap auxiliary input and "
                "needs objective='time'; the EDP objective picks the cap "
                "itself — use predict()"
            )
        regions = list(regions)
        caps = [float(cap) for cap in power_caps]
        if not regions:
            return []
        if not caps:
            return [[] for _ in regions]
        model = self._model_at(dtype)
        keys = [self._embedding_key(region, model) for region in regions]

        # Collect the cache-miss regions (first occurrence of each key only).
        miss_keys: List[Tuple[str, str, str]] = []
        miss_regions: List[RegionCharacteristics] = []
        pooled_by_key: Dict[Tuple[str, str, str], np.ndarray] = {}
        for region, key in zip(regions, keys):
            if key in pooled_by_key:
                continue
            cached = self._embedding_cache.get(key)
            if cached is not None:
                pooled_by_key[key] = cached
                continue
            miss_keys.append(key)
            miss_regions.append(region)
            pooled_by_key[key] = np.empty(0)  # placeholder, filled below

        if miss_keys:
            # The collated miss batch (and its EdgePlan) is memoised per
            # fleet composition — content-addressed, weight-independent.
            structure_key = tuple((key[0], key[1]) for key in miss_keys)
            batch = self._sweep_batch_memo.get(structure_key)
            if batch is None:
                miss_samples: List[GraphSample] = [
                    self.builder.inference_sample(
                        region,
                        power_cap=caps[0],
                        include_counters=self.include_counters,
                        scenario=self.scenario,
                    ).sample
                    for region in miss_regions
                ]
                batch = collate_graphs(miss_samples)
                self._sweep_batch_memo.put(structure_key, batch)
            pooled = self._encode_pooled(model, batch)
            for row_index, key in enumerate(miss_keys):
                # Copy so a cached row doesn't pin the whole batch array.
                row = pooled[row_index : row_index + 1].copy()
                pooled_by_key[key] = row
                self._embedding_cache.put(key, row)

        # One dense-head batch over all R x C (region, cap) pairs.
        rows = np.concatenate(
            [np.repeat(pooled_by_key[key], len(caps), axis=0) for key in keys]
        )
        if not self.include_counters:
            # Static features: the aux rows carry only the normalised caps
            # and are identical for every region — build once, tile R times.
            aux = np.tile(
                self.builder.aux_feature_matrix(regions[0].region_id, caps),
                (len(regions), 1),
            )
        else:
            aux = np.concatenate(
                [
                    self.builder.aux_feature_matrix(
                        region.region_id, caps, include_counters=True
                    )
                    for region in regions
                ]
            )
        labels = self._head_labels(model, rows, aux)
        results: List[List[TuningResult]] = []
        for region_index, region in enumerate(regions):
            offset = region_index * len(caps)
            results.append(
                [
                    self._result_from_label(
                        region.region_id, int(labels[offset + cap_index]), cap
                    )
                    for cap_index, cap in enumerate(caps)
                ]
            )
        return results

    def predict_samples(self, samples: Sequence[LabeledSample]) -> List[TuningResult]:
        """Batch prediction for pre-built samples (used by the experiments).

        Shares the compiled inference runtime with the serving entry points,
        so experiment sweeps pay no autograd overhead either.  (The public
        ``predict_labels(program=...)`` plumbing this used to ride on is
        deprecated — serving routes through :mod:`repro.serve.predictor`.)
        """
        self._require_fitted()
        labels = _predict_labels(
            self.model, list(samples), program=self._program_for(self.model)
        )
        return [
            self._result_from_label(s.region_id, int(label), s.power_cap)
            for s, label in zip(samples, labels)
        ]

    def _result_from_label(
        self, region_id: str, label: int, power_cap: Optional[float]
    ) -> TuningResult:
        if self.objective == "time":
            if power_cap is None:
                raise ValueError("power_cap is required for the 'time' objective")
            config = self.search_space.config_from_index(label)
            return TuningResult(region_id, self.objective, config, float(power_cap), label)
        cap, config = self.search_space.joint_from_index(label)
        return TuningResult(region_id, self.objective, config, cap, label)

    def _require_fitted(self) -> None:
        """Entry gate of every serving call: fitted, and caches current.

        Beyond the fitted check, this compares the model's parameter arrays
        (by identity) against the snapshot the serving caches were built
        from; a mismatch means the weights were rebound behind the tuner's
        back, so every weights-derived cache is flushed before serving.
        """
        if not self._fitted:
            raise RuntimeError("PnPTuner.predict called before fit()")
        current = [param.data for param in self.model.parameters()]
        if self._served_arrays is None:
            self._served_arrays = current
        elif len(current) != len(self._served_arrays) or any(
            array is not served
            for array, served in zip(current, self._served_arrays)
        ):
            self._embedding_cache.clear()
            self._cast_models.clear()
            self._programs.clear()
            self._served_arrays = current

    # ------------------------------------------------------------- weights
    def state_dict(self) -> Dict[str, np.ndarray]:
        return self.model.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.model.load_state_dict(state)
        self._fitted = True
        self._embedding_cache.clear()
        self._cast_models.clear()
        self._programs.clear()
        self._served_arrays = [param.data for param in self.model.parameters()]

    # ----------------------------------------------------- inference buffers
    def attach_micro_runtime(self, runtime) -> None:
        """Register a micro-model runtime serving through this tuner.

        :class:`repro.distill.runtime.MicroRuntime` calls this on
        construction; the tuner then folds the runtime's buffers into
        :meth:`inference_cache_stats` and sheds them in
        :meth:`clear_inference_buffers` — so a serving node's ``"clear"``
        (and the buffer shedding after rolling weight updates) covers both
        tiers.  The registry holds weak references only.
        """
        self._micro_runtimes.add(runtime)

    def inference_cache_stats(self) -> Dict[str, int]:
        """Sizes of the compiled-inference buffer caches, entries and bytes.

        Aggregates :meth:`InferenceProgram.buffer_stats` across the tuner's
        compiled programs (one per served dtype) — bound plans, arena
        slabs/bytes, head workspaces — plus the entry counts of the tuner's
        own plan-pinning memos and the buffers of every attached micro-model
        runtime (``micro_*`` keys).  Arenas are keyed by weakly-referenced
        ``EdgePlan``s, so whatever keeps plans alive (the sweep batch memo
        foremost) is what keeps arena bytes on the books.
        """
        stats = {
            "programs": len(self._programs),
            "bound_plans": 0,
            "arena_slabs": 0,
            "arena_buffers": 0,
            "arena_bytes": 0,
            "head_workspaces": 0,
            "head_bytes": 0,
            "embedding_cache_entries": len(self._embedding_cache),
            "sweep_batch_memo_entries": len(self._sweep_batch_memo),
            "micro_runtimes": 0,
            "micro_programs": 0,
            "micro_workspaces": 0,
            "micro_bytes": 0,
        }
        for program in self._programs.values():
            for key, value in program.buffer_stats().items():
                stats[key] += value
        for runtime in list(self._micro_runtimes):
            stats["micro_runtimes"] += 1
            for key, value in runtime.buffer_stats().items():
                stats[key] += value
        return stats

    def clear_inference_buffers(self) -> None:
        """Shed every compiled-inference buffer (arenas, head workspaces).

        Keeps the compiled programs themselves (lowering is cheap to reuse,
        holds only parameter references) but drops their per-plan arenas and
        per-row-count head workspaces, and clears the sweep batch memo whose
        cached ``GraphBatch``es pin plans — and therefore arenas — alive.
        Attached micro-model runtimes are shed too, so both serving tiers
        drop to their weight-only footprint.  Long-lived
        :class:`repro.serve.NodeServer`s call this after rolling weight
        updates so superseded buffers are reclaimed immediately; everything
        is rebuilt lazily on the next query.
        """
        for program in self._programs.values():
            program.clear_buffers()
        self._sweep_batch_memo.clear()
        for runtime in list(self._micro_runtimes):
            runtime.clear_buffers()


# ------------------------------------------------------- label → selection
def labels_to_performance_selections(
    predictions: Mapping[Tuple[str, Optional[float]], int], search_space: SearchSpace
) -> Dict[Tuple[str, float], OpenMPConfig]:
    """Convert scenario-1 predicted labels into configuration selections."""
    selections: Dict[Tuple[str, float], OpenMPConfig] = {}
    for (region_id, cap), label in predictions.items():
        if cap is None:
            raise ValueError("performance predictions must carry a power cap")
        selections[(region_id, float(cap))] = search_space.config_from_index(int(label))
    return selections


def labels_to_edp_selections(
    predictions: Mapping[Tuple[str, Optional[float]], int], search_space: SearchSpace
) -> Dict[str, Tuple[float, OpenMPConfig]]:
    """Convert scenario-2 predicted labels into (cap, configuration) selections."""
    selections: Dict[str, Tuple[float, OpenMPConfig]] = {}
    for (region_id, _cap), label in predictions.items():
        cap, config = search_space.joint_from_index(int(label))
        selections[region_id] = (cap, config)
    return selections
