"""The measurement database: exhaustive (oracle) sweeps over Table I's space.

Every tuner in the reproduction — the exhaustive oracle, BLISS, OpenTuner and
the label builder for the PnP tuner's training set — consumes executions of
(region, configuration, power cap) points.  The database runs those points on
the simulated machine once and memoises them, so the oracle labels, the
baseline tuners' sampling runs and the evaluation all see consistent numbers,
exactly as they would when measured on one physical node.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.search_space import SearchSpace
from repro.hw.machine import Machine
from repro.openmp.config import OpenMPConfig
from repro.openmp.execution import ExecutionEngine, ExecutionResult
from repro.openmp.region import RegionCharacteristics
from repro.utils.logging import get_logger

__all__ = ["MeasurementKey", "MeasurementDatabase", "get_measurement_database"]

_LOG = get_logger("core.measurements")

#: (region_id, power_cap, (threads, schedule, chunk))
MeasurementKey = Tuple[str, float, Tuple[int, str, Optional[int]]]


class MeasurementDatabase:
    """Lazily filled store of execution measurements for one machine.

    Parameters
    ----------
    machine:
        The simulated node measurements are taken on.
    search_space:
        The system's Table I search space.
    regions:
        Regions that may be measured (indexed by ``region_id``).
    """

    def __init__(
        self,
        machine: Machine,
        search_space: SearchSpace,
        regions: Iterable[RegionCharacteristics],
    ) -> None:
        if machine.name != search_space.system:
            raise ValueError(
                f"machine {machine.name!r} does not match search space system "
                f"{search_space.system!r}"
            )
        self.machine = machine
        self.search_space = search_space
        self.engine = ExecutionEngine(machine)
        self._regions: Dict[str, RegionCharacteristics] = {r.region_id: r for r in regions}
        self._cache: Dict[MeasurementKey, ExecutionResult] = {}
        self._execution_count = 0

    # --------------------------------------------------------------- regions
    @property
    def region_ids(self) -> List[str]:
        return list(self._regions)

    def region(self, region_id: str) -> RegionCharacteristics:
        if region_id not in self._regions:
            raise KeyError(f"unknown region {region_id!r}")
        return self._regions[region_id]

    def add_region(self, region: RegionCharacteristics) -> None:
        """Register an extra region (e.g. a user-provided kernel).

        Re-registering a known id with *changed* characteristics replaces
        the registration and drops the region's cached executions — results
        measured against the old characteristics must not be served for the
        new ones.
        """
        previous = self._regions.get(region.region_id)
        if previous is not None and previous != region:
            self._cache = {
                key: value
                for key, value in self._cache.items()
                if key[0] != region.region_id
            }
        self._regions[region.region_id] = region

    # ----------------------------------------------------------- measurement
    def measure(
        self, region_id: str, config: OpenMPConfig, power_cap: float, trial: int = 0
    ) -> ExecutionResult:
        """Execute (or fetch the cached execution of) one configuration point."""
        key: MeasurementKey = (region_id, float(power_cap), config.as_tuple())
        if trial == 0 and key in self._cache:
            return self._cache[key]
        result = self.engine.run(
            self.region(region_id), config, power_cap_watts=power_cap, trial=trial,
            account_rapl=False,
        )
        self._execution_count += 1
        if trial == 0:
            self._cache[key] = result
        return result

    @property
    def execution_count(self) -> int:
        """Number of simulated executions performed so far (cache misses)."""
        return self._execution_count

    # ----------------------------------------------------------- exhaustive
    def sweep_region(self, region_id: str, power_cap: float) -> List[ExecutionResult]:
        """Measure every candidate configuration of a region at one cap."""
        return [
            self.measure(region_id, config, power_cap)
            for config in self.search_space.candidate_configurations()
        ]

    def default_result(self, region_id: str, power_cap: float) -> ExecutionResult:
        """The OpenMP-default execution at ``power_cap``."""
        return self.measure(region_id, self.search_space.default_configuration, power_cap)

    def best_by_time(self, region_id: str, power_cap: float) -> Tuple[OpenMPConfig, ExecutionResult]:
        """Oracle for scenario 1: the fastest configuration at ``power_cap``."""
        results = self.sweep_region(region_id, power_cap)
        configs = self.search_space.candidate_configurations()
        best = min(range(len(results)), key=lambda i: results[i].time_s)
        return configs[best], results[best]

    def best_by_edp(self, region_id: str) -> Tuple[float, OpenMPConfig, ExecutionResult]:
        """Oracle for scenario 2: the (cap, configuration) minimising EDP."""
        best: Optional[Tuple[float, OpenMPConfig, ExecutionResult]] = None
        for cap in self.search_space.power_caps:
            config, result = min(
                zip(self.search_space.candidate_configurations(), self.sweep_region(region_id, cap)),
                key=lambda pair: pair[1].edp,
            )
            if best is None or result.edp < best[2].edp:
                best = (cap, config, result)
        assert best is not None
        return best

    def best_by_energy(self, region_id: str) -> Tuple[float, OpenMPConfig, ExecutionResult]:
        """The (cap, configuration) minimising energy (used in the discussion)."""
        best: Optional[Tuple[float, OpenMPConfig, ExecutionResult]] = None
        for cap in self.search_space.power_caps:
            config, result = min(
                zip(self.search_space.candidate_configurations(), self.sweep_region(region_id, cap)),
                key=lambda pair: pair[1].energy_joules,
            )
            if best is None or result.energy_joules < best[2].energy_joules:
                best = (cap, config, result)
        assert best is not None
        return best

    def label_by_time(self, region_id: str, power_cap: float) -> int:
        """Class label (configuration index) for scenario-1 training."""
        config, _ = self.best_by_time(region_id, power_cap)
        return self.search_space.config_index(config)

    def label_by_edp(self, region_id: str) -> int:
        """Class label (joint index) for scenario-2 training."""
        cap, config, _ = self.best_by_edp(region_id)
        return self.search_space.joint_index(cap, config)

    def prefill(self, power_caps: Optional[Iterable[float]] = None) -> None:
        """Eagerly run the full sweep (all regions × caps × configurations)."""
        caps = tuple(power_caps) if power_caps is not None else self.search_space.power_caps
        for region_id in self.region_ids:
            for cap in caps:
                self.sweep_region(region_id, cap)
        _LOG.info(
            "measurement database prefilled: %d cached points for %s",
            len(self._cache),
            self.machine.name,
        )


# ----------------------------------------------------------------- factory
_DATABASE_CACHE: Dict[Tuple[str, int, float], MeasurementDatabase] = {}


def get_measurement_database(
    system: str,
    regions: Optional[Iterable[RegionCharacteristics]] = None,
    seed: int = 0,
    noise_fraction: float = 0.015,
) -> MeasurementDatabase:
    """Shared per-process measurement database for ``system``.

    The exhaustive sweep is the dominant cost of every experiment, so tests,
    benchmarks and examples share one database per (system, seed, noise)
    triple.  ``regions`` defaults to the full 68-region benchmark suite.
    """
    key = (system, seed, noise_fraction)
    if key not in _DATABASE_CACHE:
        if regions is None:
            from repro.benchsuite.registry import all_regions

            regions = all_regions()
        machine = Machine.named(system, seed=seed, noise_fraction=noise_fraction)
        _DATABASE_CACHE[key] = MeasurementDatabase(machine, SearchSpace(system), regions)
    else:
        if regions is not None:
            database = _DATABASE_CACHE[key]
            for region in regions:
                if region.region_id not in database.region_ids:
                    database.add_region(region)
    return _DATABASE_CACHE[key]
