"""The PnP tuner's neural network (Table II of the paper).

Architecture: a learned token embedding feeds a stack of RGCN layers (4 in
the paper) whose node representations are mean-pooled per graph; the pooled
vector, concatenated with the auxiliary features (normalised power cap and,
for the "dynamic" variant, PAPI counters), goes through a fully connected
classifier (3 layers) that predicts the best configuration's index.

Activations are Leaky ReLU inside the GNN stack and ReLU inside the dense
stack; the loss is cross-entropy; the optimiser is AdamW (amsgrad) or Adam at
a learning rate of 1e-3 with batch size 16 — all per Table II.

Inference is split into two public stages so callers can amortise the
expensive graph encoding across many auxiliary-feature candidates:

* :meth:`PnPModel.encode` runs the GNN encoder once per batch and returns the
  pooled per-graph embedding (independent of auxiliary features);
* :meth:`PnPModel.head` (the dense classifier sub-module) maps
  ``(pooled, aux)`` to logits; :meth:`PnPModel.predict_from_pooled` wraps it
  for label prediction from cached embeddings.

The encoder consumes the batch's precompiled
:class:`~repro.nn.data.EdgePlan`, so the per-relation edge grouping and
normalisations are computed once per batch and shared by all RGCN layers
(set ``model.gnn.use_edge_plan = False`` to fall back to the naive
per-layer path, retained as a bit-identical reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.graphs.flowgraph import EdgeRelation, NodeKind
from repro.nn import _scatter
from repro.nn import functional as F
from repro.nn import precision
from repro.nn.data import GraphBatch
from repro.nn.inference import DenseHeadProgram, InferenceProgram, KernelStep, LeakyReLUStep
from repro.nn.layers import Dropout, Embedding, Linear, Module, ModuleList
from repro.nn.pooling import global_mean_pool, lower_global_mean_pool
from repro.nn.rgcn import RGCNConv
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import new_rng

__all__ = ["ModelConfig", "PnPModel"]


@dataclass(frozen=True)
class ModelConfig:
    """Hyperparameters of the PnP model.

    Defaults follow Table II; ``hidden_dim`` and ``embedding_dim`` are not
    listed in the paper and default to moderate values that train quickly on
    the 68-region dataset.

    ``dtype`` selects the model precision ("float64" or "float32"); float32
    halves parameter/activation memory and unlocks single-precision BLAS on
    the message-passing hot path (see :mod:`repro.nn.precision`).
    """

    vocabulary_size: int
    num_classes: int
    aux_dim: int = 1
    embedding_dim: int = 32
    hidden_dim: int = 32
    num_rgcn_layers: int = 4
    num_dense_layers: int = 3
    num_relations: int = len(EdgeRelation)
    num_node_kinds: int = len(NodeKind)
    dense_hidden_dim: int = 64
    dropout: float = 0.1
    leaky_slope: float = 0.01
    seed: int = 0
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.vocabulary_size <= 0 or self.num_classes <= 0:
            raise ValueError("vocabulary_size and num_classes must be positive")
        if self.aux_dim < 0:
            raise ValueError("aux_dim must be non-negative")
        if self.num_rgcn_layers < 1 or self.num_dense_layers < 1:
            raise ValueError("the model needs at least one RGCN and one dense layer")
        # Normalise to the canonical dtype name (raises on unsupported ones)
        # while keeping the field a plain string (frozen dataclass).
        object.__setattr__(self, "dtype", precision.resolve_dtype(self.dtype).name)


class _GnnEncoder(Module):
    """Embedding + RGCN stack producing a per-graph representation.

    Kept as a separate sub-module (registered under the name ``gnn``) so the
    transfer-learning step can save/load/freeze exactly these weights.
    """

    #: Consume the batch's precompiled EdgePlan (bit-identical to the naive
    #: path; disable only for benchmarking/equivalence checks).
    use_edge_plan: bool = True

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        rng = new_rng(config.seed, "model/gnn")
        self.config = config
        self.token_embedding = Embedding(config.vocabulary_size, config.embedding_dim, rng=rng)
        self.kind_embedding = Embedding(config.num_node_kinds, config.embedding_dim, rng=rng)
        self.convs = ModuleList()
        in_dim = config.embedding_dim
        for _ in range(config.num_rgcn_layers):
            self.convs.append(RGCNConv(in_dim, config.hidden_dim, config.num_relations, rng=rng))
            in_dim = config.hidden_dim

    def forward(self, batch: GraphBatch) -> Tensor:
        plan = (
            batch.edge_plan(self.config.num_relations, dtype=self.dtype)
            if self.use_edge_plan
            else None
        )
        x = self.token_embedding(batch.token_ids) + self.kind_embedding(batch.node_types)
        for conv in self.convs:
            x = F.leaky_relu(
                conv(x, batch.edge_index, batch.edge_type, plan=plan), self.config.leaky_slope
            )
        if plan is None:
            return global_mean_pool(x, batch.batch, batch.num_graphs)
        use_segments = _scatter.segments_active(x.data.dtype)
        return global_mean_pool(
            x,
            batch.batch,
            batch.num_graphs,
            node_counts=plan.graph_node_counts,
            flat_index=plan.pool_flat(x.shape[1]),
            segments=plan.pool_segments() if use_segments else None,
        )

    def lower(self) -> List[KernelStep]:
        """Lower the encoder to the flat raw-ndarray step list.

        Embedding sum, then per layer convolution + in-place leaky ReLU
        ping-ponging between two hidden slots, then the mean-pool read-out —
        the exact op order of :meth:`forward` on the planned path.
        """
        steps = self.token_embedding.lower("token_ids", "embed")
        steps += self.kind_embedding.lower("node_types", "embed", accumulate=True)
        in_slot = "embed"
        for index, conv in enumerate(self.convs):
            out_slot = "hidden0" if index % 2 == 0 else "hidden1"
            steps += conv.lower(in_slot, out_slot)
            steps.append(LeakyReLUStep(out_slot, self.config.leaky_slope))
            in_slot = out_slot
        steps += lower_global_mean_pool(in_slot)
        return steps


class _DenseHead(Module):
    """Fully connected classifier over pooled graph + auxiliary features."""

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        rng = new_rng(config.seed, "model/dense")
        dropout_rng = new_rng(config.seed, "model/dropout")
        self.config = config
        dims: List[int] = [config.hidden_dim + config.aux_dim]
        dims += [config.dense_hidden_dim] * (config.num_dense_layers - 1)
        dims += [config.num_classes]
        self.layers = ModuleList(
            Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)
        )
        self.dropout = Dropout(config.dropout, rng=dropout_rng)

    def forward(self, pooled: Tensor, aux: Optional[np.ndarray]) -> Tensor:
        if self.config.aux_dim > 0:
            if aux is None:
                raise ValueError(
                    f"model expects {self.config.aux_dim} auxiliary features but got none"
                )
            # Auxiliary features cross the tensor boundary here: convert to
            # the pooled embedding's dtype so the head never promotes.
            aux = np.asarray(aux, dtype=pooled.data.dtype)
            if aux.ndim != 2 or aux.shape[1] != self.config.aux_dim:
                raise ValueError(
                    f"auxiliary features must have shape (batch, {self.config.aux_dim}), "
                    f"got {aux.shape}"
                )
            x = Tensor.concatenate([pooled, Tensor(aux, dtype=aux.dtype)], axis=1)
        else:
            x = pooled
        last = len(self.layers) - 1
        for index, layer in enumerate(self.layers):
            x = layer(x)
            if index != last:
                x = F.relu(x)
                x = self.dropout(x)
        return x

    def lower(self) -> DenseHeadProgram:
        """Lower the classifier to its raw-ndarray inference program.

        Eval-mode semantics (dropout is the identity): affine steps with the
        in-place ReLU between, plus the same pooled/aux dtype-cast boundary
        as :meth:`forward`.
        """
        return DenseHeadProgram(
            [layer.lower() for layer in self.layers],
            aux_dim=self.config.aux_dim,
            dtype=self.dtype,
        )


class PnPModel(Module):
    """The complete PnP tuner network (GNN encoder + dense classifier).

    The model is built at ``config.dtype`` — parameters are initialised from
    the same random stream regardless of precision (float32 weights are the
    float64 draws rounded once), so a float32 model is the numerical twin of
    its float64 counterpart.  :meth:`Module.astype` re-casts an existing
    model in place.
    """

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        self.config = config
        with precision.autocast(config.dtype):
            self.gnn = _GnnEncoder(config)
            self.head = _DenseHead(config)

    # ------------------------------------------------------------ inference
    def compile_inference(self) -> InferenceProgram:
        """Lower this model to an autograd-free :class:`InferenceProgram`.

        The program is a flat, ordered list of raw-ndarray kernel steps
        (embedding lookup, planned RGCN message passing, mean pooling, dense
        head) sharing this model's parameter arrays by reference — no
        ``Tensor`` wrappers, no autograd graph — and is bit-identical to the
        ``Module`` inference path at float64 and float32.  Buffers are
        preallocated per ``(EdgePlan, dtype)`` on first use and reused
        across calls.

        Programs snapshot the current parameter arrays: any path that
        rebinds them (training steps, ``load_state_dict``, ``astype``)
        makes the program report :meth:`InferenceProgram.stale`, and the
        tuner's program cache recompiles automatically.
        """
        return InferenceProgram(
            encoder_steps=self.gnn.lower(),
            head=self.head.lower(),
            num_relations=self.config.num_relations,
            dtype=self.dtype,
            source=self,
        )
    def encode(self, batch: GraphBatch) -> Tensor:
        """Pooled per-graph embedding of shape ``(num_graphs, hidden_dim)``.

        The embedding is independent of the auxiliary features, so one
        encoding can be reused across any number of aux candidates via
        :meth:`head` / :meth:`predict_from_pooled`.
        """
        return self.gnn(batch)

    def encode_pooled(self, batch: GraphBatch) -> np.ndarray:
        """:meth:`encode` under eval/no-grad, returned as a plain array."""
        self.eval()
        with no_grad():
            return self.encode(batch).data

    def forward(self, batch: GraphBatch) -> Tensor:
        """Return raw class logits of shape ``(num_graphs, num_classes)``."""
        pooled = self.encode(batch)
        return self.head(pooled, batch.aux_features)

    def predict(self, batch: GraphBatch) -> np.ndarray:
        """Predicted class index per graph (no gradient recorded)."""
        self.eval()
        with no_grad():
            logits = self.forward(batch)
        return np.argmax(logits.data, axis=1)

    def predict_from_pooled(
        self, pooled: np.ndarray, aux: Optional[np.ndarray]
    ) -> np.ndarray:
        """Predicted class index per row of a precomputed pooled embedding.

        ``pooled`` has shape ``(rows, hidden_dim)`` (e.g. one graph embedding
        repeated per aux candidate) and ``aux`` the matching auxiliary
        feature rows; only the dense head is executed.  ``pooled`` is
        converted to the model dtype at this boundary, so float64 cached
        embeddings can feed a float32 head (and vice versa).
        """
        self.eval()
        with no_grad():
            logits = self.head(Tensor(pooled, dtype=self.dtype), aux)
        return np.argmax(logits.data, axis=1)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        """Class-probability matrix per graph."""
        self.eval()
        with no_grad():
            logits = self.forward(batch)
            probabilities = F.softmax(logits, axis=-1)
        return probabilities.data

    # ------------------------------------------------------------- weights
    def gnn_state_dict(self) -> Dict[str, np.ndarray]:
        """State dictionary restricted to the GNN encoder (for transfer)."""
        return {name: value for name, value in self.state_dict().items() if name.startswith("gnn.")}

    def dense_parameters(self):
        """Parameters of the dense head only (re-trained during transfer)."""
        return self.head.parameters()

    def describe(self) -> Dict[str, object]:
        """Hyperparameter summary mirroring Table II."""
        return {
            "rgcn_layers": self.config.num_rgcn_layers,
            "dense_layers": self.config.num_dense_layers,
            "activations": ["leaky_relu (GNN)", "relu (dense)"],
            "hidden_dim": self.config.hidden_dim,
            "embedding_dim": self.config.embedding_dim,
            "num_classes": self.config.num_classes,
            "aux_dim": self.config.aux_dim,
            "dtype": self.dtype.name,
            "parameters": self.num_parameters(),
        }
