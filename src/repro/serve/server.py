"""Process-sharded sweep serving: the :class:`SweepServer` worker pool.

Serving answers power-cap sweeps for fleets of regions.  One region's sweep
is a single cached encoder pass plus a dense-head batch, and regions are
independent — embarrassingly parallel.  The server therefore:

* assigns each region to a shard with the **deterministic content hash**
  shared by every serving layer (:mod:`repro.serve.sharding`).  The pool's
  worker count is fixed for its lifetime, so the cheap *flat modulo* scheme
  is the right one here (the elastic multi-node fleet uses the
  consistent-hash ring instead) — the same region always lands on the same
  shard, per-worker embedding caches stay hot, and a re-run reproduces the
  exact same batch compositions;
* runs one **worker process per shard**.  A worker reconstructs the tuner
  from the picklable :class:`~repro.serve.spec.TunerSpec` (system,
  objective, model configuration, the benchmark-suite regions) and loads
  the fitted weights from an ``.npz`` archive written **once** by the
  parent (the existing serialization round-trip) — workers never share
  mutable state;
* serves each shard's regions through
  :meth:`~repro.core.tuner.PnPTuner.predict_sweep_many`, i.e. batched
  encoding within the shard, sharding across processes.  Each worker lowers
  its loaded weights into a compiled
  :class:`~repro.nn.inference.InferenceProgram` at start-up
  (:func:`~repro.serve.spec.build_serving_tuner` does this eagerly), so
  shard serving runs the autograd-free raw-ndarray runtime — no ``Tensor``
  wrappers or graph bookkeeping on any worker's hot path.

Results are reassembled in input order and are byte-identical to serial
per-region ``predict_sweep`` calls on the parent tuner (every kernel is
row-independent and per-region quantities are computed identically in any
shard composition; ``tests/serve/test_sweep_server.py`` asserts equality at
both precisions).

The machine-boundary analogue of this pool — the same spec/weight shipping
and shard assignment over TCP instead of pipes — lives in
:mod:`repro.serve.node` / :mod:`repro.serve.fleet`.

:func:`parallel_map` exposes the same deterministic pool machinery as a
generic primitive; the experiment runners use it to shard cross-validation
folds.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.core.tuner import PnPTuner, TuningResult
from repro.nn import serialization
from repro.openmp.region import RegionCharacteristics
from repro.serve.sharding import shard_positions
from repro.serve.spec import (
    TunerSpec,
    build_serving_tuner,
    default_start_method,
    tuner_spec,
)
from repro.utils.logging import get_logger

__all__ = ["SweepServer", "parallel_map"]

_LOG = get_logger("serve.server")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class _WorkerSpec:
    """A shared :class:`TunerSpec` plus where this pool parked the weights.

    ``distilled`` optionally carries a
    :meth:`~repro.distill.student.DistilledModel.to_blob` payload; workers
    then serve through the tiered micro/GNN
    :class:`~repro.serve.predictor.TieredPredictor` instead of the plain
    GNN path.
    """

    tuner: TunerSpec
    weights_path: str
    distilled: Optional[bytes] = None


def _worker_main(connection, spec: _WorkerSpec) -> None:
    """Worker loop: build the tuner and predictor once, then serve sweeps."""
    from repro.serve.predictor import GNNPredictor

    try:
        tuner = build_serving_tuner(spec.tuner, weights_path=spec.weights_path)
        if spec.distilled is not None:
            from repro.distill.student import DistilledModel
            from repro.serve.predictor import tiered_predictor

            predictor = tiered_predictor(
                tuner, DistilledModel.from_blob(spec.distilled)
            )
        else:
            predictor = GNNPredictor(tuner)
        connection.send(("ready", None))
    except Exception:  # noqa: BLE001 - report startup failures to the parent
        connection.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            message = connection.recv()
        except EOFError:
            return
        command = message[0]
        try:
            if command == "stop":
                return
            if command == "sweep":
                _, regions, caps, dtype = message
                results = predictor.predict_sweep_many(regions, caps, dtype=dtype)
                connection.send(("ok", results))
            elif command == "clear":
                tuner._embedding_cache.clear()
                tuner._sweep_batch_memo.clear()
                tuner.clear_inference_buffers()
                connection.send(("ok", None))
            elif command == "stats":
                cache = tuner._embedding_cache
                tier_stats = getattr(predictor, "tier_stats", None)
                stats = {
                    "size": len(cache),
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "tier": tier_stats()
                    if tier_stats is not None
                    else {"micro_hits": 0, "fallbacks": 0, "micro_families": 0},
                }
                connection.send(("ok", stats))
            else:
                connection.send(("error", f"unknown command {command!r}"))
        except Exception:  # noqa: BLE001 - keep serving after a bad request
            connection.send(("error", traceback.format_exc()))


class SweepServer:
    """A pool of sweep-serving worker processes with deterministic sharding.

    Build one with :meth:`from_tuner`; the server owns the worker processes
    and the one-time ``.npz`` weight serialization, and is reusable across
    many :meth:`sweep` calls (per-worker embedding caches persist between
    calls).  Close it explicitly or use it as a context manager::

        with SweepServer.from_tuner(tuner, num_workers=4) as server:
            results = server.sweep(regions, power_caps)

    ``results[i]`` is byte-identical to
    ``tuner.predict_sweep(regions[i], power_caps)``.
    """

    def __init__(
        self,
        spec: _WorkerSpec,
        num_workers: int = 2,
        start_method: Optional[str] = None,
        _owns_weights: bool = False,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._spec = spec
        self._owns_weights = _owns_weights
        self._closed = False
        context = multiprocessing.get_context(start_method or default_start_method())
        self._connections = []
        self._processes = []
        for _ in range(num_workers):
            parent_end, worker_end = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(worker_end, spec), daemon=True
            )
            process.start()
            worker_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
        for connection in self._connections:
            status, payload = connection.recv()
            if status != "ready":
                self.close()
                raise RuntimeError(f"sweep worker failed to start:\n{payload}")
        _LOG.info(
            "sweep server up: %d worker(s), pids %s",
            num_workers,
            [process.pid for process in self._processes],
        )

    # ------------------------------------------------------------- factory
    @classmethod
    def from_tuner(
        cls,
        tuner: PnPTuner,
        num_workers: int = 2,
        start_method: Optional[str] = None,
        weights_path: Optional[str] = None,
        distilled: Optional[bytes] = None,
    ) -> "SweepServer":
        """Serve a fitted tuner: weights are serialized once for the pool.

        ``weights_path`` overrides where the ``.npz`` archive is written
        (default: a temporary file removed on :meth:`close`).  ``distilled``
        optionally ships a :meth:`~repro.distill.student.DistilledModel.
        to_blob` payload so the workers serve the tiered micro/GNN stack.
        """
        tuner._require_fitted()
        owns = weights_path is None
        if weights_path is None:
            handle = tempfile.NamedTemporaryFile(
                prefix="pnp_sweep_server_", suffix=".npz", delete=False
            )
            handle.close()
            weights_path = handle.name
        serialization.save_state_dict(tuner.state_dict(), weights_path)
        spec = _WorkerSpec(
            tuner=tuner_spec(tuner), weights_path=weights_path, distilled=distilled
        )
        return cls(
            spec,
            num_workers=num_workers,
            start_method=start_method,
            _owns_weights=owns,
        )

    # ------------------------------------------------------------- serving
    def sweep(
        self,
        regions: Sequence[RegionCharacteristics],
        power_caps: Sequence[float],
        dtype: Optional[str] = None,
    ) -> List[List[TuningResult]]:
        """Sweep every region, sharded across the pool; input order preserved."""
        self._require_open()
        regions = list(regions)
        if not regions:
            return []
        positions = shard_positions([r.region_id for r in regions], self.num_workers)
        # Dispatch every shard before collecting any result so the workers
        # run concurrently.
        for shard, members in positions.items():
            shard_regions = [regions[i] for i in members]
            self._send(shard, ("sweep", shard_regions, list(power_caps), dtype))
        results: List[Optional[List[TuningResult]]] = [None] * len(regions)
        for shard, members in positions.items():
            payload = self._receive(shard)
            for position, swept in zip(members, payload):
                results[position] = swept
        return results  # type: ignore[return-value]

    def clear_caches(self) -> None:
        """Reset every worker to the cold path (cold-path benches).

        Clears both the pooled-embedding caches and the fleet-composition
        batch memos, so the next sweep re-collates, re-plans and re-encodes.
        """
        self._require_open()
        for shard in range(self.num_workers):
            self._send(shard, ("clear",))
        for shard in range(self.num_workers):
            self._receive(shard)

    def cache_stats(self) -> List[Dict[str, int]]:
        """Per-worker embedding cache statistics (size / hits / misses)."""
        self._require_open()
        for shard in range(self.num_workers):
            self._send(shard, ("stats",))
        return [self._receive(shard) for shard in range(self.num_workers)]

    def _send(self, shard: int, message) -> None:
        """Send one request to a worker; a dead worker raises, never hangs."""
        try:
            self._connections[shard].send(message)
        except (BrokenPipeError, OSError):
            raise self._worker_died(shard) from None

    def _receive(self, shard: int):
        try:
            status, payload = self._connections[shard].recv()
        except (EOFError, ConnectionError, OSError):
            # The worker process died mid-request: its end of the pipe is
            # gone, so recv() raises instead of blocking forever.  Surface
            # what happened (who died, with what exit code) to the caller.
            raise self._worker_died(shard) from None
        if status != "ok":
            raise RuntimeError(f"sweep worker {shard} failed:\n{payload}")
        return payload

    def _worker_died(self, shard: int) -> RuntimeError:
        process = self._processes[shard]
        process.join(timeout=0.5)
        exitcode = process.exitcode
        _LOG.warning(
            "sweep worker %d (pid %s) died mid-request with exitcode %s",
            shard,
            process.pid,
            exitcode,
        )
        return RuntimeError(
            f"sweep worker {shard} died mid-request "
            f"(exitcode {exitcode}); the pool is no longer consistent — "
            "close() this server and build a new one"
        )

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("SweepServer is closed")

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Stop the workers and remove the owned weight archive."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)
        for connection in self._connections:
            connection.close()
        if self._owns_weights and os.path.exists(self._spec.weights_path):
            os.unlink(self._spec.weights_path)

    def __enter__(self) -> "SweepServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass


# ---------------------------------------------------------------- generic map
def parallel_map(
    function: Callable[[T], R],
    items: Sequence[T],
    num_workers: int,
    start_method: Optional[str] = None,
) -> List[R]:
    """``[function(item) for item in items]`` over a worker-process pool.

    Results come back in input order, so any deterministic ``function``
    yields output identical to the serial list comprehension.  ``function``
    and the items must be picklable (a module-level callable or a dataclass
    instance — the experiment runners pass fold-runner objects).  With
    ``num_workers <= 1`` (or a single item) no processes are spawned.
    """
    items = list(items)
    if num_workers <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    context = multiprocessing.get_context(start_method or default_start_method())
    with context.Pool(processes=min(num_workers, len(items))) as pool:
        return pool.map(function, items, chunksize=1)
