"""The unified ``Predictor`` protocol and its three implementations.

Before this module, prediction entry points had grown organically:
``PnPTuner.predict`` (no ``dtype=``), ``predict_sweep`` /
``predict_sweep_many`` (``dtype=`` but no deadline), ``predict_samples``
(its own ``program=`` plumbing), and the gateway's async ``predict_sweep``
(``timeout=``).  The serving stack now speaks **one canonical signature
family**:

.. code-block:: python

    predict(region, power_cap=None, *, dtype=None, deadline=None)
    predict_sweep(region, power_caps, *, dtype=None, deadline=None)
    predict_sweep_many(regions, power_caps, *, dtype=None, deadline=None)

``dtype`` overrides the serving precision (cast-once, exactly as in the
tuner); ``deadline`` is a time budget in seconds — implementations check it
on entry and refuse to *return* past it (:class:`DeadlineExceeded`), they do
not preempt a running kernel.

Three implementations:

:class:`GNNPredictor`
    The full tuner path (graph → RGCN → pooled → head).  A thin conformance
    wrapper over :class:`~repro.core.tuner.PnPTuner`.
:class:`MicroPredictor`
    The distilled micro-model tier (:class:`~repro.distill.runtime.MicroRuntime`):
    dense-only, no message passing.  Raises :class:`UntrustedRegion` for
    inputs its trust gate rejects.
:class:`TieredPredictor`
    The router: trusted regions → micro tier, everything else → fallback
    (byte-identical to the tuner, since the fallback *is* the tuner path).
    Tier counters (``micro_hits`` / ``fallbacks``) feed node and gateway
    stats.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

from repro.core.tuner import PnPTuner, TuningResult
from repro.distill.runtime import MicroRuntime
from repro.distill.student import DistilledModel
from repro.openmp.region import RegionCharacteristics

__all__ = [
    "DeadlineExceeded",
    "UntrustedRegion",
    "Predictor",
    "GNNPredictor",
    "MicroPredictor",
    "TieredPredictor",
    "tiered_predictor",
]


class DeadlineExceeded(TimeoutError):
    """The request's deadline elapsed (or cannot be met) — failed fast."""


class UntrustedRegion(LookupError):
    """The micro tier's trust gate rejected the region (use the GNN path)."""


def _deadline_at(deadline: Optional[float]) -> Optional[float]:
    """Absolute expiry for a relative ``deadline`` budget; checks it is open."""
    if deadline is None:
        return None
    if deadline <= 0:
        raise DeadlineExceeded(f"deadline budget {deadline:.6f}s is not positive")
    return time.monotonic() + float(deadline)


def _check_deadline(expires_at: Optional[float]) -> None:
    if expires_at is not None and time.monotonic() > expires_at:
        raise DeadlineExceeded("prediction exceeded its deadline")


@runtime_checkable
class Predictor(Protocol):
    """What every serving tier implements — the one signature family."""

    def predict(
        self,
        region: RegionCharacteristics,
        power_cap: Optional[float] = None,
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> TuningResult: ...

    def predict_sweep(
        self,
        region: RegionCharacteristics,
        power_caps: Sequence[float],
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[TuningResult]: ...

    def predict_sweep_many(
        self,
        regions: Sequence[RegionCharacteristics],
        power_caps: Sequence[float],
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[List[TuningResult]]: ...


class GNNPredictor:
    """The full GNN tuner path behind the canonical signatures."""

    def __init__(self, tuner: PnPTuner) -> None:
        self.tuner = tuner

    def predict(
        self,
        region: RegionCharacteristics,
        power_cap: Optional[float] = None,
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> TuningResult:
        expires_at = _deadline_at(deadline)
        if self.tuner.objective == "time":
            if power_cap is None:
                raise ValueError("power_cap is required for the performance scenario")
            result = self.tuner.predict_sweep(region, [power_cap], dtype=dtype)[0]
        else:
            if dtype is not None:
                raise ValueError(
                    "dtype overrides are supported for the 'time' objective only"
                )
            result = self.tuner.predict(region, power_cap)
        _check_deadline(expires_at)
        return result

    def predict_sweep(
        self,
        region: RegionCharacteristics,
        power_caps: Sequence[float],
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[TuningResult]:
        expires_at = _deadline_at(deadline)
        results = self.tuner.predict_sweep(region, power_caps, dtype=dtype)
        _check_deadline(expires_at)
        return results

    def predict_sweep_many(
        self,
        regions: Sequence[RegionCharacteristics],
        power_caps: Sequence[float],
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[List[TuningResult]]:
        expires_at = _deadline_at(deadline)
        results = self.tuner.predict_sweep_many(regions, power_caps, dtype=dtype)
        _check_deadline(expires_at)
        return results


class MicroPredictor:
    """The distilled micro tier behind the canonical signatures.

    Every entry point enforces the trust gate — callers that want automatic
    fallback route through :class:`TieredPredictor` instead.
    """

    def __init__(self, runtime: MicroRuntime) -> None:
        self.runtime = runtime

    def trusted(self, region: RegionCharacteristics) -> bool:
        return self.runtime.trusted(region)

    def _require_trusted(self, region: RegionCharacteristics) -> None:
        if not self.runtime.trusted(region):
            raise UntrustedRegion(
                f"region {region.region_id!r} is outside the calibrated "
                "micro-model ranges"
            )

    def predict(
        self,
        region: RegionCharacteristics,
        power_cap: Optional[float] = None,
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> TuningResult:
        expires_at = _deadline_at(deadline)
        self._require_trusted(region)
        result = self.runtime.predict(region, power_cap, dtype=dtype)
        _check_deadline(expires_at)
        return result

    def predict_sweep(
        self,
        region: RegionCharacteristics,
        power_caps: Sequence[float],
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[TuningResult]:
        expires_at = _deadline_at(deadline)
        self._require_trusted(region)
        results = self.runtime.predict_sweep(region, power_caps, dtype=dtype)
        _check_deadline(expires_at)
        return results

    def predict_sweep_many(
        self,
        regions: Sequence[RegionCharacteristics],
        power_caps: Sequence[float],
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[List[TuningResult]]:
        expires_at = _deadline_at(deadline)
        for region in regions:
            self._require_trusted(region)
        results = self.runtime.predict_sweep_many(regions, power_caps, dtype=dtype)
        _check_deadline(expires_at)
        return results


class TieredPredictor:
    """Route trusted regions to the micro tier, the rest to the fallback.

    The fallback path is the plain tuner path — results for untrusted
    regions are byte-identical to calling the tuner directly.  Counters
    tally *regions served* per tier and surface in node/gateway stats.
    """

    def __init__(self, micro: MicroPredictor, fallback: Predictor) -> None:
        self.micro = micro
        self.fallback = fallback
        self._micro_hits = 0
        self._fallbacks = 0

    # ---------------------------------------------------------------- stats
    def tier_stats(self) -> Dict[str, int]:
        return {
            "micro_hits": self._micro_hits,
            "fallbacks": self._fallbacks,
            "micro_families": len(self.micro.runtime.families()),
        }

    def reset_tier_stats(self) -> None:
        self._micro_hits = 0
        self._fallbacks = 0

    # -------------------------------------------------------------- serving
    def predict(
        self,
        region: RegionCharacteristics,
        power_cap: Optional[float] = None,
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> TuningResult:
        if self.micro.trusted(region):
            self._micro_hits += 1
            return self.micro.predict(region, power_cap, dtype=dtype, deadline=deadline)
        self._fallbacks += 1
        return self.fallback.predict(region, power_cap, dtype=dtype, deadline=deadline)

    def predict_sweep(
        self,
        region: RegionCharacteristics,
        power_caps: Sequence[float],
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[TuningResult]:
        if self.micro.trusted(region):
            self._micro_hits += 1
            return self.micro.predict_sweep(
                region, power_caps, dtype=dtype, deadline=deadline
            )
        self._fallbacks += 1
        return self.fallback.predict_sweep(
            region, power_caps, dtype=dtype, deadline=deadline
        )

    def predict_sweep_many(
        self,
        regions: Sequence[RegionCharacteristics],
        power_caps: Sequence[float],
        *,
        dtype: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[List[TuningResult]]:
        expires_at = _deadline_at(deadline)
        regions = list(regions)
        trusted_flags = [self.micro.trusted(region) for region in regions]
        untrusted = [
            region for region, flag in zip(regions, trusted_flags) if not flag
        ]
        # One batched GNN pass over every untrusted region — identical to
        # handing the whole set to the tuner, region for region.
        fallback_results = (
            iter(self.fallback.predict_sweep_many(untrusted, power_caps, dtype=dtype))
            if untrusted
            else iter(())
        )
        results: List[List[TuningResult]] = []
        for region, flag in zip(regions, trusted_flags):
            if flag:
                self._micro_hits += 1
                results.append(
                    self.micro.predict_sweep(region, power_caps, dtype=dtype)
                )
            else:
                self._fallbacks += 1
                results.append(next(fallback_results))
        _check_deadline(expires_at)
        return results


def tiered_predictor(tuner: PnPTuner, distilled: DistilledModel) -> TieredPredictor:
    """Wire the standard two-tier stack over one tuner + distilled model."""
    runtime = MicroRuntime(distilled, tuner)
    return TieredPredictor(MicroPredictor(runtime), GNNPredictor(tuner))
