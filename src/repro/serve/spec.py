"""Picklable tuner specs and one-time weight shipping for serving replicas.

Every serving layer rebuilds the same read-only tuner on the far side of a
process or machine boundary: :class:`~repro.serve.server.SweepServer` ships
a spec plus an ``.npz`` weight *path* over a pipe, and
:class:`~repro.serve.node.NodeServer` receives the spec plus the ``.npz``
weight *bytes* over a TCP socket.  This module owns the pieces both share:

* :class:`TunerSpec` — everything needed to reconstruct a serving
  :class:`~repro.core.tuner.PnPTuner` (system, objective, model
  configuration, seeds, the benchmark-suite regions);
* :func:`tuner_spec` — capture the spec of a fitted tuner;
* :func:`build_serving_tuner` — rebuild the tuner from a spec and a state
  dictionary, and eagerly compile the autograd-free inference program so the
  replica's first request pays no lowering cost;
* :func:`weights_blob` / :func:`state_from_blob` — the ``.npz``
  serialization round-trip as in-memory bytes, for transports without a
  shared filesystem;
* :class:`WeightsUpdate` — the fleet's *versioned* weight payload: the
  ``.npz`` bytes plus a monotonically increasing version number, so nodes
  can reject stale registrations and a rolling update
  (:meth:`~repro.serve.fleet.FleetClient.update_weights`) can upgrade a
  live fleet one node at a time without ever serving mixed generations to
  a single synchronous client.

The weights always travel through the dtype-faithful ``.npz`` round-trip
(:mod:`repro.nn.serialization`), so every replica serves from byte-identical
parameter arrays.
"""

from __future__ import annotations

import io
import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.model import ModelConfig
from repro.core.tuner import PnPTuner
from repro.nn import serialization
from repro.openmp.region import RegionCharacteristics

__all__ = [
    "TunerSpec",
    "WeightsUpdate",
    "tuner_spec",
    "build_serving_tuner",
    "build_from_update",
    "build_predictor_from_update",
    "weights_blob",
    "state_from_blob",
    "default_start_method",
]


def default_start_method() -> str:
    """Replica start method: ``fork`` where available, ``spawn`` otherwise.

    ``fork`` is cheap on the Linux CI machines; the one policy is shared by
    the :class:`~repro.serve.server.SweepServer` worker pool and
    :class:`~repro.serve.fleet.LocalFleet`'s node subprocesses so the two
    serving layers never silently diverge.
    """
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class TunerSpec:
    """Everything a serving replica needs to rebuild a read-only tuner."""

    system: str
    objective: str
    include_counters: bool
    seed: int
    machine_seed: int
    noise_fraction: float
    model_config: ModelConfig
    regions_by_app: Dict[str, List[RegionCharacteristics]]


@dataclass(frozen=True)
class WeightsUpdate:
    """A versioned fleet weight payload: ``.npz`` bytes + generation number.

    Versions are assigned by the :class:`~repro.serve.fleet.FleetClient`
    (``register_tuner`` starts the counter, ``update_weights`` bumps it) and
    increase monotonically; a node atomically swaps to the new weights only
    when ``version`` is at least its current one, so a delayed or replayed
    registration can never roll a node *back* mid-rolling-update.
    """

    version: int
    blob: bytes
    #: Optional :meth:`~repro.distill.student.DistilledModel.to_blob` bytes.
    #: When present, replicas serve through a
    #: :class:`~repro.serve.predictor.TieredPredictor` (micro tier + GNN
    #: fallback); when absent they serve the plain GNN path.  Defaulted so
    #: pre-distillation payloads keep decoding unchanged.
    distilled: Optional[bytes] = None


def tuner_spec(tuner: PnPTuner) -> TunerSpec:
    """Capture the picklable serving spec of a fitted tuner."""
    tuner._require_fitted()
    return TunerSpec(
        system=tuner.system,
        objective=tuner.objective,
        include_counters=tuner.include_counters,
        seed=tuner.seed,
        machine_seed=tuner.database.machine.seed,
        noise_fraction=tuner.database.machine.noise_fraction,
        model_config=tuner.model_config,
        regions_by_app=tuner.builder.regions_by_app,
    )


def build_serving_tuner(
    spec: TunerSpec,
    state: Optional[Mapping[str, np.ndarray]] = None,
    weights_path: Optional[str] = None,
) -> PnPTuner:
    """Reconstruct a serving tuner from a spec plus its fitted weights.

    The weights come either from an in-memory ``state`` dictionary (the TCP
    registration path — see :func:`state_from_blob`) or from a
    ``weights_path`` ``.npz`` archive (the local worker-pool path); exactly
    one must be given.  The rebuilt tuner eagerly lowers the loaded weights
    into the compiled inference program, so the replica's first request pays
    no compile latency.
    """
    from repro.core.dataset import DatasetBuilder
    from repro.core.measurements import MeasurementDatabase
    from repro.core.search_space import SearchSpace
    from repro.hw.machine import Machine

    if (state is None) == (weights_path is None):
        raise ValueError("exactly one of state / weights_path is required")
    regions = [r for rs in spec.regions_by_app.values() for r in rs]
    machine = Machine.named(
        spec.system, seed=spec.machine_seed, noise_fraction=spec.noise_fraction
    )
    database = MeasurementDatabase(machine, SearchSpace(spec.system), regions)
    tuner = PnPTuner(
        system=spec.system,
        objective=spec.objective,
        include_counters=spec.include_counters,
        model_config=spec.model_config,
        database=database,
        seed=spec.seed,
    )
    tuner.builder = DatasetBuilder(
        database, regions_by_app=spec.regions_by_app, seed=spec.seed
    )
    if weights_path is not None:
        state = serialization.load_state_dict(weights_path)
    tuner.load_state_dict(dict(state))
    tuner.compile_inference()
    return tuner


def build_from_update(spec: TunerSpec, update: WeightsUpdate) -> PnPTuner:
    """Rebuild a serving tuner from a spec plus a versioned weight payload.

    The one decode-and-rebuild path shared by the node's ``register``
    handler and the gateway's dead-fleet in-process fallback, so both
    always serve byte-identical parameter arrays for a given
    :class:`WeightsUpdate`.
    """
    return build_serving_tuner(spec, state=state_from_blob(update.blob))


def build_predictor_from_update(spec: TunerSpec, update: WeightsUpdate):
    """Rebuild ``(tuner, predictor)`` from a spec plus a versioned payload.

    The canonical serving entry point for replicas: a
    :class:`~repro.serve.predictor.TieredPredictor` (micro tier routed over
    the GNN fallback) when the update carries a distilled micro-model blob,
    a plain :class:`~repro.serve.predictor.GNNPredictor` otherwise.  The
    tuner is returned too because cache control ("clear", "stats") still
    addresses it directly.
    """
    from repro.distill.student import DistilledModel
    from repro.serve.predictor import GNNPredictor, tiered_predictor

    tuner = build_from_update(spec, update)
    if update.distilled is None:
        return tuner, GNNPredictor(tuner)
    return tuner, tiered_predictor(tuner, DistilledModel.from_blob(update.distilled))


def weights_blob(state: Mapping[str, np.ndarray]) -> bytes:
    """A state dictionary as dtype-faithful ``.npz`` bytes (shipped once)."""
    buffer = io.BytesIO()
    np.savez(buffer, **dict(state))
    return buffer.getvalue()


def state_from_blob(blob: bytes) -> Dict[str, np.ndarray]:
    """Decode :func:`weights_blob` bytes back into a state dictionary."""
    with np.load(io.BytesIO(blob)) as archive:
        return {key: np.array(archive[key]) for key in archive.files}
