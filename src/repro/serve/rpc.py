"""Length-prefixed message framing for the fleet's TCP RPC.

The wire format is deliberately thin — one message is an 8-byte big-endian
length prefix followed by a pickled Python object — because the protocol on
top of it is the same four-verb request/reply scheme the local
:class:`~repro.serve.server.SweepServer` pipes already speak (``register`` /
``sweep`` / ``clear`` / ``stats`` / ``stop``).  Replies are ``("ok",
payload)`` or ``("error", frame)`` where the error frame (built by
:func:`error_frame`) carries both a one-line exception summary and the full
formatted node-side traceback; :func:`request` sends one message, waits for
the reply and raises :class:`RemoteError` exposing both on an error reply.

Like ``multiprocessing``'s pipes, the transport trusts its peers: messages
are **pickle**, so a node must only ever be exposed to the cluster-internal
network that also ships the model weights (bind to localhost or a private
interface, never the open internet).

:exc:`ConnectionClosed` is the one failure mode callers are expected to
handle: it means the peer went away (process killed, machine lost), and the
:class:`~repro.serve.fleet.FleetClient` reacts by marking the node dead and
rebalancing its regions onto the surviving nodes.  :func:`connect` is the
client-side complement for the *opposite* transient: a node that is still
booting refuses connections for a moment, so connection establishment
retries with bounded, jittered exponential backoff instead of misreporting
the node as a configuration error.

:func:`request` additionally accepts a per-call ``timeout`` — a real socket
deadline spanning the whole send + receive round trip — raising the distinct
:exc:`RpcTimeout` when the peer is connected but not answering (a hung or
overloaded node).  A timed-out conversation is *poisoned*: the reply may
still arrive later and would be mis-framed as the answer to the next
request, so callers must discard the socket after an :exc:`RpcTimeout`
(the fleet client does — it marks the node DEAD, which tears the socket
down, and lets the heartbeat re-admit the node on a fresh connection).
"""

from __future__ import annotations

import pickle
import random
import socket
import struct
import time
import traceback
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "ConnectionClosed",
    "RemoteError",
    "RpcTimeout",
    "connect",
    "error_frame",
    "send_message",
    "recv_message",
    "request",
]

#: 8-byte big-endian payload length prefix.
_HEADER = struct.Struct(">Q")

#: Upper bound on a single message (1 GiB) — a corrupt or misaligned stream
#: fails fast instead of attempting an absurd allocation.
MAX_MESSAGE_BYTES = 1 << 30

#: Transient connection-establishment failures :func:`connect` retries: the
#: peer's port is not (yet) listening or the handshake was torn down while
#: the peer (re)starts.  Anything else — unreachable host, bad address — is
#: a real configuration error and surfaces immediately.
_TRANSIENT_CONNECT_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
    TimeoutError,
)


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (or died) mid-conversation."""


class RpcTimeout(TimeoutError):
    """A per-call deadline elapsed before the peer answered.

    Distinct from :class:`ConnectionClosed`: the peer is still *connected*
    (the kernel accepts our bytes) but not answering — a hung, paused or
    overloaded node.  The conversation is poisoned after this (a late reply
    would be mis-framed as the answer to the next request), so the socket
    must be discarded and re-established before further use.
    """


class RemoteError(RuntimeError):
    """The peer answered with an error reply.

    ``remote_exception`` is the node-side one-line summary (``"ValueError:
    ..."``) and ``remote_traceback`` the full formatted node-side traceback
    — both also appear in the exception message, so a fleet client failure
    reads like the stack trace of the node that actually raised.
    """

    def __init__(
        self,
        message: str,
        remote_exception: Optional[str] = None,
        remote_traceback: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.remote_exception = remote_exception
        self.remote_traceback = remote_traceback


def error_frame(error: BaseException) -> Dict[str, str]:
    """The wire form of a node-side failure: summary + formatted traceback."""
    return {
        "exception": f"{type(error).__name__}: {error}",
        "traceback": "".join(traceback.format_exception(error)),
    }


def connect(
    address: Tuple[str, int],
    timeout: Optional[float] = None,
    attempts: int = 5,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
) -> socket.socket:
    """Connect to a peer, retrying transient refusals with jittered backoff.

    A node that is still booting (socket not yet bound, accept loop not yet
    running) refuses connections for a moment; a bounded retry keeps that
    from being misclassified as a configuration error during registration.
    Delays double from ``base_delay`` up to ``max_delay`` with ±50 % jitter
    so a whole fleet reconnecting does not stampede one node.  After
    ``attempts`` failures the last error propagates unchanged.
    """
    attempts = max(1, int(attempts))
    delay = base_delay
    for attempt in range(attempts):
        try:
            return socket.create_connection(tuple(address), timeout=timeout)
        except _TRANSIENT_CONNECT_ERRORS:
            if attempt == attempts - 1:
                raise
            time.sleep(min(delay, max_delay) * (0.5 + random.random() / 2.0))
            delay *= 2
    raise ConnectionError("unreachable")  # pragma: no cover - loop always exits


def send_message(sock: socket.socket, payload: Any) -> None:
    """Pickle ``payload`` and send it with a length prefix (blocking)."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        sock.sendall(_HEADER.pack(len(data)) + data)
    except TimeoutError:
        raise  # slow peer, not a dead one — see _recv_exact
    except (BrokenPipeError, ConnectionResetError, OSError) as error:
        raise ConnectionClosed(f"peer closed while sending: {error}") from error


def _recv_exact(
    sock: socket.socket, count: int, deadline: Optional[float] = None
) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise RpcTimeout(
                    f"deadline elapsed with {remaining} of {count} bytes outstanding"
                )
            # Re-armed before every chunk, so a peer trickling bytes cannot
            # stretch the overall deadline chunk by chunk.
            sock.settimeout(budget)
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except TimeoutError:
            if deadline is not None:
                raise RpcTimeout(
                    f"deadline elapsed with {remaining} of {count} bytes outstanding"
                ) from None
            # A timeout on a caller-configured socket means "slow", never
            # "dead" — surface it as-is so it is not mistaken for peer loss.
            raise
        except (ConnectionResetError, OSError) as error:
            raise ConnectionClosed(f"peer closed while receiving: {error}") from error
        if not chunk:
            raise ConnectionClosed(
                f"peer closed with {remaining} of {count} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket, deadline: Optional[float] = None) -> Any:
    """Receive one length-prefixed pickled message (blocking).

    ``deadline`` is an absolute ``time.monotonic()`` instant; when given,
    the receive raises :class:`RpcTimeout` instead of blocking past it.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size, deadline))
    if length > MAX_MESSAGE_BYTES:
        raise ConnectionClosed(
            f"refusing a {length}-byte message (corrupt stream? limit is "
            f"{MAX_MESSAGE_BYTES})"
        )
    return pickle.loads(_recv_exact(sock, length, deadline))


def request(
    sock: socket.socket, payload: Tuple, timeout: Optional[float] = None
) -> Any:
    """One request/reply round trip; unwraps ``("ok", ...)`` replies.

    Raises :class:`RemoteError` (carrying the node-side exception summary
    and formatted traceback) on an ``("error", ...)`` reply and
    :class:`ConnectionClosed` when the peer vanished before answering.

    ``timeout`` is a per-call deadline in seconds spanning the whole send +
    receive round trip; when it elapses the call raises :class:`RpcTimeout`
    and the socket must be discarded (the late reply would desynchronise
    the framing of the next request).  ``timeout=None`` preserves the
    previous blocking behaviour and the socket's configured timeout.
    """
    if timeout is not None:
        deadline = time.monotonic() + float(timeout)
        previous = sock.gettimeout()
        try:
            sock.settimeout(max(deadline - time.monotonic(), 1e-6))
            try:
                send_message(sock, payload)
            except TimeoutError as error:
                raise RpcTimeout(
                    f"{payload[0]!r} request not sent within {timeout:.3f}s"
                ) from error
            reply = recv_message(sock, deadline=deadline)
        finally:
            try:
                sock.settimeout(previous)
            except OSError:  # pragma: no cover - socket torn down mid-call
                pass
        return _unwrap(payload, reply)
    send_message(sock, payload)
    reply = recv_message(sock)
    return _unwrap(payload, reply)


def _unwrap(payload: Tuple, reply: Any) -> Any:
    if not (isinstance(reply, tuple) and len(reply) == 2):
        raise RemoteError(f"malformed reply: {reply!r}")
    status, body = reply
    if status != "ok":
        if isinstance(body, dict):
            summary = body.get("exception", "remote failure")
            remote_traceback = body.get("traceback", "")
            raise RemoteError(
                f"remote {payload[0]!r} request failed: {summary}\n"
                f"--- node-side traceback ---\n{remote_traceback}",
                remote_exception=summary,
                remote_traceback=remote_traceback,
            )
        # Pre-structured peers shipped the bare traceback text.
        raise RemoteError(
            f"remote {payload[0]!r} request failed:\n{body}",
            remote_traceback=str(body),
        )
    return body
