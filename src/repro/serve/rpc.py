"""Length-prefixed message framing for the fleet's TCP RPC.

The wire format is deliberately thin — one message is an 8-byte big-endian
length prefix followed by a pickled Python object — because the protocol on
top of it is the same four-verb request/reply scheme the local
:class:`~repro.serve.server.SweepServer` pipes already speak (``register`` /
``sweep`` / ``clear`` / ``stats`` / ``stop``).  Replies are ``("ok",
payload)`` or ``("error", traceback_text)``; :func:`request` sends one
message, waits for the reply and raises :class:`RemoteError` carrying the
remote traceback on an error reply.

Like ``multiprocessing``'s pipes, the transport trusts its peers: messages
are **pickle**, so a node must only ever be exposed to the cluster-internal
network that also ships the model weights (bind to localhost or a private
interface, never the open internet).

:exc:`ConnectionClosed` is the one failure mode callers are expected to
handle: it means the peer went away (process killed, machine lost), and the
:class:`~repro.serve.fleet.FleetClient` reacts by rebalancing the dead
node's regions onto the surviving nodes.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

__all__ = [
    "ConnectionClosed",
    "RemoteError",
    "send_message",
    "recv_message",
    "request",
]

#: 8-byte big-endian payload length prefix.
_HEADER = struct.Struct(">Q")

#: Upper bound on a single message (1 GiB) — a corrupt or misaligned stream
#: fails fast instead of attempting an absurd allocation.
MAX_MESSAGE_BYTES = 1 << 30


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (or died) mid-conversation."""


class RemoteError(RuntimeError):
    """The peer answered with an error reply; carries the remote traceback."""


def send_message(sock: socket.socket, payload: Any) -> None:
    """Pickle ``payload`` and send it with a length prefix (blocking)."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        sock.sendall(_HEADER.pack(len(data)) + data)
    except TimeoutError:
        raise  # slow peer, not a dead one — see _recv_exact
    except (BrokenPipeError, ConnectionResetError, OSError) as error:
        raise ConnectionClosed(f"peer closed while sending: {error}") from error


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except TimeoutError:
            # A timeout on a caller-configured socket means "slow", never
            # "dead" — surface it as-is so it is not mistaken for peer loss.
            raise
        except (ConnectionResetError, OSError) as error:
            raise ConnectionClosed(f"peer closed while receiving: {error}") from error
        if not chunk:
            raise ConnectionClosed(
                f"peer closed with {remaining} of {count} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Any:
    """Receive one length-prefixed pickled message (blocking)."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_MESSAGE_BYTES:
        raise ConnectionClosed(
            f"refusing a {length}-byte message (corrupt stream? limit is "
            f"{MAX_MESSAGE_BYTES})"
        )
    return pickle.loads(_recv_exact(sock, length))


def request(sock: socket.socket, payload: Tuple) -> Any:
    """One request/reply round trip; unwraps ``("ok", ...)`` replies.

    Raises :class:`RemoteError` (with the remote traceback) on an
    ``("error", ...)`` reply and :class:`ConnectionClosed` when the peer
    vanished before answering.
    """
    send_message(sock, payload)
    reply = recv_message(sock)
    if not (isinstance(reply, tuple) and len(reply) == 2):
        raise RemoteError(f"malformed reply: {reply!r}")
    status, body = reply
    if status != "ok":
        raise RemoteError(f"remote {payload[0]!r} request failed:\n{body}")
    return body
